"""In-process transport with structural enforcement of Prism's topology.

The transport does not buffer: a transfer returns the payload to the
orchestrator, which hands it to the receiving entity.  What it *does* do:

* refuse server→server transfers — Prism's non-communicating-servers
  assumption is a property of the code, not a comment;
* record every transfer (sender, receiver, kind, bytes) for the
  communication accounting reported by the benchmarks;
* count protocol rounds via :meth:`begin_round`.
"""

from __future__ import annotations

import collections
import threading

from repro.exceptions import ProtocolError
from repro.network.message import Endpoint, Message, Role, payload_nbytes


class TrafficStats:
    """Aggregated traffic counters, grouped by (sender role, receiver role).

    Every aggregate (:attr:`total_messages`, :attr:`total_bytes`, the
    per-pair and per-kind maps) is maintained incrementally, so
    :meth:`summary` stays O(1) and — crucially for a long-lived serving
    deployment — recording a transfer allocates nothing that grows with
    the transcript.  The *full* message log is an opt-in bounded ring
    buffer: pass ``retain_messages=N`` to keep the most recent ``N``
    :class:`~repro.network.message.Message` records for inspection
    (topology tests, debugging).  The default retains none; counters —
    including :attr:`total_messages`, which counts every transfer ever
    recorded regardless of retention — are unaffected either way.

    Args:
        retain_messages: ring-buffer capacity for the message log
            (``0`` = keep no per-message records, the default).
    """

    def __init__(self, retain_messages: int = 0):
        self.retain_messages = max(0, int(retain_messages))
        self._recent: collections.deque[Message] | None = (
            collections.deque(maxlen=self.retain_messages)
            if self.retain_messages else None)
        self.rounds = 0
        self._total_messages = 0
        self._total_bytes = 0
        self._bytes_by_pair: dict[tuple[Role, Role], int] = {}
        self._messages_by_kind: dict[str, int] = {}
        self._events: dict[str, int] = {}
        self._lock = threading.Lock()

    def count_event(self, kind: str, n: int = 1) -> None:
        """Fold a transport-level lifecycle event into the counters.

        The dispatch layer reports pool health transitions here
        (``pool-eject`` / ``pool-failover`` / ``pool-rejoin`` /
        ``pool-respawn``), so degraded operation shows up in the same
        stats object that models protocol traffic.
        """
        with self._lock:
            self._events[kind] = self._events.get(kind, 0) + int(n)

    @property
    def events(self) -> dict[str, int]:
        with self._lock:
            return dict(self._events)

    def record(self, message: Message) -> None:
        """Fold one transfer into the running counters (and the ring).

        Locked: the read-add-store counter updates would otherwise lose
        increments under concurrent queries (scheduler thread + direct
        callers share one transport).
        """
        with self._lock:
            if self._recent is not None:
                self._recent.append(message)
            self._total_messages += 1
            self._total_bytes += message.nbytes
            pair = (message.sender.role, message.receiver.role)
            self._bytes_by_pair[pair] = (
                self._bytes_by_pair.get(pair, 0) + message.nbytes)
            self._messages_by_kind[message.kind] = (
                self._messages_by_kind.get(message.kind, 0) + 1)

    @property
    def messages(self) -> list[Message]:
        """The retained message records, oldest first.

        Empty unless the stats were created with ``retain_messages > 0``
        (retention is opt-in; an unbounded log would grow forever in a
        serving deployment).  At most the most recent ``retain_messages``
        transfers are kept; :attr:`total_messages` always counts all.
        """
        return list(self._recent) if self._recent is not None else []

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    @property
    def total_messages(self) -> int:
        """Transfers recorded since construction (independent of the ring)."""
        return self._total_messages

    def bytes_between(self, sender_role: Role, receiver_role: Role) -> int:
        return self._bytes_by_pair.get((sender_role, receiver_role), 0)

    @property
    def messages_by_kind(self) -> dict[str, int]:
        """Message counts per wire ``kind`` label, maintained O(1).

        Batched streams are labelled ``batch:<stream>[Q]``
        (:func:`repro.network.message.batch_kind`), so these counters
        attribute traffic to the execution path that produced it — e.g.
        asserting that a single query really ran through the fused
        batch kernels.
        """
        return dict(self._messages_by_kind)

    def messages_of_kind(self, kind: str) -> int:
        """Count of recorded messages carrying exactly this kind label."""
        return self._messages_by_kind.get(kind, 0)

    def summary(self) -> dict[str, int]:
        """Compact dict for experiment reports."""
        report = {
            "rounds": self.rounds,
            "messages": self.total_messages,
            "bytes": self.total_bytes,
            "owner_to_server_bytes": self.bytes_between(Role.OWNER, Role.SERVER),
            "server_to_owner_bytes": self.bytes_between(Role.SERVER, Role.OWNER),
            "server_to_announcer_bytes": self.bytes_between(
                Role.SERVER, Role.ANNOUNCER),
            "server_to_server_bytes": self.bytes_between(Role.SERVER, Role.SERVER),
        }
        events = self.events
        if events:
            # Only when something happened: healthy-run summaries stay
            # byte-identical to pre-failover reports.
            report["events"] = events
        return report


class LocalTransport:
    """Simulated network joining all Prism entities in one process.

    Args:
        serialize: round-trip every payload through the binary wire codec
            (:mod:`repro.network.codec`).  Slower, but byte counts become
            true wire sizes and any non-serialisable payload fails fast —
            useful for conformance tests and for splitting entities across
            processes later.
        retain_messages: keep the most recent N per-message records in
            :attr:`TrafficStats.messages` (default 0: counters only).
    """

    def __init__(self, serialize: bool = False, retain_messages: int = 0):
        self.retain_messages = retain_messages
        self.stats = TrafficStats(retain_messages=retain_messages)
        self.serialize = serialize

    def begin_round(self, label: str = "") -> None:
        """Mark the start of a communication round (for round counting)."""
        del label  # retained for future tracing; rounds are just counted
        self.stats.rounds += 1

    def transfer(self, sender: Endpoint, receiver: Endpoint, kind: str, payload):
        """Move ``payload`` from ``sender`` to ``receiver``.

        Raises:
            ProtocolError: on a server→server transfer, which Prism forbids.
        """
        if sender.role is Role.SERVER and receiver.role is Role.SERVER:
            raise ProtocolError(
                f"servers must not communicate: {sender} -> {receiver} "
                f"(kind={kind!r})"
            )
        if self.serialize:
            from repro.network.codec import decode, encode
            blob = encode(payload)
            self.stats.record(Message(sender, receiver, kind, len(blob)))
            return decode(blob)
        self.stats.record(
            Message(sender, receiver, kind, payload_nbytes(payload))
        )
        return payload

    def broadcast(self, sender: Endpoint, receivers: list[Endpoint], kind: str,
                  payload):
        """Record one transfer per receiver; returns the payload unchanged."""
        for receiver in receivers:
            self.transfer(sender, receiver, kind, payload)
        return payload

    def reset(self, retain_messages: int | None = None) -> None:
        """Clear all counters (used between benchmark iterations).

        ``retain_messages`` re-arms the per-message ring buffer at a new
        capacity for the fresh stats (``None`` keeps the transport's
        configured retention).
        """
        if retain_messages is not None:
            self.retain_messages = retain_messages
        self.stats = TrafficStats(retain_messages=self.retain_messages)
