"""In-process transport with structural enforcement of Prism's topology.

The transport does not buffer: a transfer returns the payload to the
orchestrator, which hands it to the receiving entity.  What it *does* do:

* refuse server→server transfers — Prism's non-communicating-servers
  assumption is a property of the code, not a comment;
* record every transfer (sender, receiver, kind, bytes) for the
  communication accounting reported by the benchmarks;
* count protocol rounds via :meth:`begin_round`.
"""

from __future__ import annotations

import threading

from repro.exceptions import ProtocolError
from repro.network.message import Endpoint, Message, Role, payload_nbytes


class TrafficStats:
    """Aggregated traffic counters, grouped by (sender role, receiver role).

    The full message log is retained for inspection, but the aggregate
    counters are maintained incrementally so :meth:`summary` stays O(1) —
    the per-query result objects snapshot it, and a long-lived serving
    deployment must not slow down as its transcript grows.
    """

    def __init__(self):
        self.messages: list[Message] = []
        self.rounds = 0
        self._total_bytes = 0
        self._bytes_by_pair: dict[tuple[Role, Role], int] = {}
        self._messages_by_kind: dict[str, int] = {}
        self._lock = threading.Lock()

    def record(self, message: Message) -> None:
        """Append one transfer to the log and the running counters.

        Locked: the read-add-store counter updates would otherwise lose
        increments under concurrent queries (scheduler thread + direct
        callers share one transport).
        """
        with self._lock:
            self.messages.append(message)
            self._total_bytes += message.nbytes
            pair = (message.sender.role, message.receiver.role)
            self._bytes_by_pair[pair] = (
                self._bytes_by_pair.get(pair, 0) + message.nbytes)
            self._messages_by_kind[message.kind] = (
                self._messages_by_kind.get(message.kind, 0) + 1)

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    @property
    def total_messages(self) -> int:
        return len(self.messages)

    def bytes_between(self, sender_role: Role, receiver_role: Role) -> int:
        return self._bytes_by_pair.get((sender_role, receiver_role), 0)

    @property
    def messages_by_kind(self) -> dict[str, int]:
        """Message counts per wire ``kind`` label, maintained O(1).

        Batched streams are labelled ``batch:<stream>[Q]``
        (:func:`repro.network.message.batch_kind`), so these counters
        attribute traffic to the execution path that produced it — e.g.
        asserting that a single query really ran through the fused
        batch kernels.
        """
        return dict(self._messages_by_kind)

    def messages_of_kind(self, kind: str) -> int:
        """Count of recorded messages carrying exactly this kind label."""
        return self._messages_by_kind.get(kind, 0)

    def summary(self) -> dict[str, int]:
        """Compact dict for experiment reports."""
        return {
            "rounds": self.rounds,
            "messages": self.total_messages,
            "bytes": self.total_bytes,
            "owner_to_server_bytes": self.bytes_between(Role.OWNER, Role.SERVER),
            "server_to_owner_bytes": self.bytes_between(Role.SERVER, Role.OWNER),
            "server_to_announcer_bytes": self.bytes_between(
                Role.SERVER, Role.ANNOUNCER),
            "server_to_server_bytes": self.bytes_between(Role.SERVER, Role.SERVER),
        }


class LocalTransport:
    """Simulated network joining all Prism entities in one process.

    Args:
        serialize: round-trip every payload through the binary wire codec
            (:mod:`repro.network.codec`).  Slower, but byte counts become
            true wire sizes and any non-serialisable payload fails fast —
            useful for conformance tests and for splitting entities across
            processes later.
    """

    def __init__(self, serialize: bool = False):
        self.stats = TrafficStats()
        self.serialize = serialize

    def begin_round(self, label: str = "") -> None:
        """Mark the start of a communication round (for round counting)."""
        del label  # retained for future tracing; rounds are just counted
        self.stats.rounds += 1

    def transfer(self, sender: Endpoint, receiver: Endpoint, kind: str, payload):
        """Move ``payload`` from ``sender`` to ``receiver``.

        Raises:
            ProtocolError: on a server→server transfer, which Prism forbids.
        """
        if sender.role is Role.SERVER and receiver.role is Role.SERVER:
            raise ProtocolError(
                f"servers must not communicate: {sender} -> {receiver} "
                f"(kind={kind!r})"
            )
        if self.serialize:
            from repro.network.codec import decode, encode
            blob = encode(payload)
            self.stats.record(Message(sender, receiver, kind, len(blob)))
            return decode(blob)
        self.stats.record(
            Message(sender, receiver, kind, payload_nbytes(payload))
        )
        return payload

    def broadcast(self, sender: Endpoint, receivers: list[Endpoint], kind: str,
                  payload):
        """Record one transfer per receiver; returns the payload unchanged."""
        for receiver in receivers:
            self.transfer(sender, receiver, kind, payload)
        return payload

    def reset(self) -> None:
        """Clear all counters (used between benchmark iterations)."""
        self.stats = TrafficStats()
