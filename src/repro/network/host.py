"""The standalone entity host: one Prism entity behind the wire codec.

``repro-entity-host`` (also ``python -m repro.network.host``) runs an
entity — today: a :class:`~repro.entities.server.PrismServer` or any
registered subclass, including the malicious ones — in its own OS
process, speaking the framed RPC protocol of :mod:`repro.network.rpc`
over TCP.  A :class:`~repro.core.system.PrismSystem` built with
``deployment="tcp://..."`` bootstraps each host with a
``__construct__`` request carrying the server index, the wire-encoded
§4 parameter view, and (optionally) the dotted path of a server
subclass to instantiate — which is how malicious-server fault injection
works across a real socket.

The same dispatch adapter backs all three channels: the
``SubprocessChannel`` serves it from a forked child over a pipe, and
the ``InProcessChannel`` calls it directly, so behaviour is identical
from zero-copy to real sockets.

Span-scoped requests: a kernel request whose frame envelope names a
shard span ``(lo, hi)`` computes only that contiguous χ span of the
fused sweep (via :func:`repro.core.sharding.compute_sweep_span`, the
same code path the forked shard workers run), which is the hook a
multi-connection distributed dispatcher shards sweeps across hosts
with.  Whole-sweep requests may instead carry a ``num_shards`` keyword,
which the host honours with its local shard plan.
"""

from __future__ import annotations

import argparse
import importlib
import signal
import socket
import sys
import threading

from repro.core.sharding import ShardPlan, compute_sweep_span
from repro.data.storage import ShareKind
from repro.entities.server import PrismServer
from repro.exceptions import ProtocolError
from repro.network.codec import FULL_SPAN, decode_frame, encode_frame
from repro.network.rpc import (
    CONSTRUCT,
    ERROR,
    PING,
    RESULT,
    SHUTDOWN,
    RpcMessage,
    recv_frame,
    send_frame,
    server_params_from_wire,
)

#: PrismServer methods callable over a channel.  An explicit allowlist:
#: a frame from the network must never reach private helpers or the
#: store directly.
SERVER_METHODS = frozenset({
    "receive_shares",
    "owners_with",
    "fetch_additive",
    "fetch_shamir",
    "psi_round",
    "verification_round",
    "psu_round",
    "count_round",
    "count_verification_round",
    "aggregate_round",
    "psi_round_batch",
    "psi_cells_round_batch",
    "count_round_batch",
    "psu_round_batch",
    "aggregate_round_batch",
    "extrema_collect",
    "fpos_round",
    "forward",
    "close",
})

#: Kernels that accept a per-call shard plan (shipped as ``num_shards``).
_SHARDED_KERNELS = frozenset({
    "psi_round_batch", "psi_cells_round_batch", "count_round_batch",
    "psu_round_batch", "aggregate_round_batch",
})

#: Kernels servable span-scoped (the frame envelope names the span),
#: with the 1-D kernels whose override disqualifies span service — the
#: span path reads the store directly and must never silently bypass a
#: malicious / instrumented subclass.
_SPAN_KERNELS = {
    "psi_round_batch": ("psi_round", "verification_round"),
    "psi_cells_round_batch": ("psi_round", "verification_round"),
    "psu_round_batch": ("psu_round",),
    "aggregate_round_batch": ("aggregate_round",),
}


class ServerAdapter:
    """Dispatches channel messages onto one hosted server entity."""

    def __init__(self, server: PrismServer):
        self.server = server

    def dispatch(self, message: RpcMessage) -> RpcMessage:
        """Execute one request; errors become ``__error__`` replies."""
        try:
            payload = self._dispatch(message)
        except Exception as exc:  # every failure must travel back
            return RpcMessage(ERROR,
                              {"type": type(exc).__name__,
                               "message": str(exc)},
                              message.correlation_id, message.span)
        return RpcMessage(RESULT, payload, message.correlation_id,
                          message.span)

    def _dispatch(self, message: RpcMessage):
        kind = message.kind
        if kind == PING:
            return {"entity": "server", "index": self.server.index,
                    "columns": len(self.server.store)}
        body = message.payload if isinstance(message.payload, dict) else {}
        args = list(body.get("a", ()))
        kwargs = dict(body.get("k", {}))
        if kind not in SERVER_METHODS:
            raise ProtocolError(f"unknown server RPC {kind!r}")
        if kind == "receive_shares":
            # The wire carries the ShareKind as its string value.
            args[3] = ShareKind(args[3])
        if kind in _SHARDED_KERNELS:
            num_shards = kwargs.pop("num_shards", None)
            if num_shards is not None and int(num_shards) > 1:
                # The host shards with its own local plan (thread sweep
                # with num_shards chunks, or its per-host worker pool if
                # one was attached); outputs are bit-identical either way.
                kwargs["shard_plan"] = ShardPlan(int(num_shards),
                                                 self._local_runtime())
        if message.span != FULL_SPAN:
            # Every span-scoped request goes through the span path,
            # which loudly rejects unsupported kinds — silently
            # returning a full sweep labeled with a span would corrupt
            # a concatenating dispatcher.
            return self._span_request(kind, args, kwargs, message.span)
        return getattr(self.server, kind)(*args, **kwargs)

    def _local_runtime(self):
        plan = self.server.shard_plan
        return plan.runtime if plan is not None else None

    def _span_request(self, kind, args, kwargs, span):
        """One contiguous span of a fused sweep (see module docstring).

        Supported for every batchable sweep family: whole-χ Eq. 3 /
        Eq. 7 (``psi_round_batch``), cell-restricted
        (``psi_cells_round_batch``, span over the cells array), Eq. 18
        (``psu_round_batch``, serving the *unpermuted* masked sweep —
        the dispatcher applies the post-sweep ``PF_s1`` after
        concatenation, with the very parameters the initiator dealt
        it), and Eq. 11 (``aggregate_round_batch``, the frame carrying
        this span's slice of the z matrix).  The span kernel reads the
        store directly (exactly like a forked shard worker), so it
        refuses servers whose kernels are overridden — a malicious or
        instrumented subclass must keep misbehaving per call, never be
        silently bypassed by span dispatch.
        """
        if kind not in _SPAN_KERNELS:
            raise ProtocolError(
                f"span-scoped execution is not supported for {kind!r}; "
                f"send a whole-sweep request with num_shards instead"
            )
        server = self.server
        if (type(server) is not PrismServer
                or server._kernel_overridden(*_SPAN_KERNELS[kind])):
            raise ProtocolError(
                "span-scoped execution requires an unmodified server"
            )
        columns = list(args[0]) if args else list(kwargs.get("columns", ()))
        if not columns:
            raise ProtocolError("malformed span request")
        lo, hi = span
        if kind == "psu_round_batch":
            return self._psu_span(server, columns, args, kwargs, lo, hi)
        if kind == "aggregate_round_batch":
            return self._agg_span(server, columns, args, kwargs, lo, hi)
        cells = None
        if kind == "psi_cells_round_batch":
            # (columns, cells, num_threads, owner_ids) positionally.
            cells = args[1] if len(args) > 1 else kwargs.get("cells")
            if cells is None:
                raise ProtocolError("malformed span request: no cells")
            cells = [int(c) for c in cells]
            owner_slot, flag_slot = 3, 4
        else:
            owner_slot, flag_slot = 2, 3
        owner_ids = kwargs.get("owner_ids")
        if owner_ids is None and len(args) > owner_slot:
            owner_ids = args[owner_slot]
        subtract_m = kwargs.get("subtract_m")
        if subtract_m is None and len(args) > flag_slot:
            subtract_m = args[flag_slot]
        if subtract_m is None:
            subtract_m = [True] * len(columns)
        if len(subtract_m) != len(columns):
            raise ProtocolError("malformed span request")
        owners, b = self._span_owners(server, columns, owner_ids)
        n = b if cells is None else len(cells)
        if hi > n:
            raise ProtocolError(f"span ({lo}, {hi}) exceeds sweep length {n}")
        m_rows = server._batch_m_shares(list(subtract_m), len(owners[0]),
                                        owner_ids)
        spec = {
            "columns": columns,
            "owners": owners,
            "m_rows": [int(v) for v in m_rows.ravel()],
            "rows": len(columns),
        }
        if cells is None:
            return compute_sweep_span(server, "psi", spec, lo, hi)
        if cells and not all(0 <= c < b for c in cells):
            raise ProtocolError(f"cell indices out of range for χ length {b}")
        spec["cells"] = cells
        return compute_sweep_span(server, "psi_cells", spec, lo, hi)

    @staticmethod
    def _span_owners(server, columns, owner_ids):
        """Per-column owner lists + the uniform χ length for a span.

        Mirrors the kernels' ``_check_uniform``: a fused span sums a
        fixed set of share vectors per row, so mixed owner sets or
        lengths must fail loudly — never corrupt a concatenating
        dispatcher.
        """
        owners = [list(owner_ids) if owner_ids is not None
                  else server.store.owners_with(column)
                  for column in columns]
        counts = {len(col_owners) for col_owners in owners}
        if len(counts) != 1:
            raise ProtocolError(
                "span request needs a uniform owner set across columns")
        lengths = {server.store.get(col_owners[0], column).values.shape[0]
                   for column, col_owners in zip(columns, owners)}
        if len(lengths) != 1:
            raise ProtocolError(
                "span request needs equal-length columns")
        return owners, lengths.pop()

    def _psu_span(self, server, columns, args, kwargs, lo, hi):
        """One span of the *unpermuted* fused Eq. 18 sweep.

        ``(columns, query_nonces, num_threads, owner_ids)``
        positionally.  Mirrors ``psu_round_batch``'s dedup: share sums
        are computed once per distinct column and broadcast by row_map;
        each row's mask span is derived by seeking the counter-mode PRG
        (bit-identical to slicing the full stream).  The post-sweep
        ``PF_s1`` of permute-flagged rows is *not* span-local, so span
        requests must not ask for it — the dispatcher permutes after
        concatenation.
        """
        if len(args) < 2:
            raise ProtocolError("malformed span request: no query nonces")
        nonces = [int(nonce) for nonce in args[1]]
        if len(nonces) != len(columns):
            raise ProtocolError("query_nonces must match the column count")
        permute = kwargs.get("permute")
        if permute is None and len(args) > 4:
            permute = args[4]
        if permute is not None and any(permute):
            raise ProtocolError(
                "span-scoped PSU serves the unpermuted sweep; the "
                "dispatcher applies PF_s1 after concatenation")
        owner_ids = kwargs.get("owner_ids")
        if owner_ids is None and len(args) > 3:
            owner_ids = args[3]
        uniq = list(dict.fromkeys(columns))
        row_map = [uniq.index(column) for column in columns]
        owners, b = self._span_owners(server, uniq, owner_ids)
        if hi > b:
            raise ProtocolError(f"span ({lo}, {hi}) exceeds sweep length {b}")
        spec = {
            "columns": uniq,
            "owners": owners,
            "row_map": row_map,
            "nonces": nonces,
            "rows": len(columns),
        }
        return compute_sweep_span(server, "psu", spec, lo, hi)

    def _agg_span(self, server, columns, args, kwargs, lo, hi):
        """One span of the fused Eq. 11 sweep.

        ``(columns, z_block, num_threads, owner_ids)`` positionally —
        the frame ships only *this span's* slice of the querier-dealt
        indicator-share matrix, so the z traffic shards with the sweep.
        """
        import numpy as np
        if len(args) < 2:
            raise ProtocolError("malformed span request: no z matrix")
        z_block = np.asarray(args[1], dtype=np.int64)
        if z_block.ndim != 2 or z_block.shape != (len(columns), hi - lo):
            raise ProtocolError(
                f"z block of shape {z_block.shape} does not cover span "
                f"({lo}, {hi}) for {len(columns)} rows")
        owner_ids = kwargs.get("owner_ids")
        if owner_ids is None and len(args) > 3:
            owner_ids = args[3]
        owners, b = self._span_owners(server, columns, owner_ids)
        if hi > b:
            raise ProtocolError(f"span ({lo}, {hi}) exceeds sweep length {b}")
        spec = {
            "columns": columns,
            "owners": owners,
            "rows": len(columns),
        }
        return compute_sweep_span(server, "agg", spec, lo, hi,
                                  z_span=z_block)


def adapter_for(entity) -> ServerAdapter:
    """The dispatch adapter for a hosted entity (servers, today)."""
    if isinstance(entity, ServerAdapter):
        return entity
    if isinstance(entity, PrismServer):
        return ServerAdapter(entity)
    raise ProtocolError(
        f"no host adapter for entity type {type(entity).__name__}"
    )


def _resolve_server_class(path) -> type:
    """Import a server class by dotted path, restricted to this package.

    The host only instantiates :class:`PrismServer` subclasses from the
    ``repro.`` namespace — enough for the adversary classes used by
    fault-injection tests, without turning the bootstrap into an
    arbitrary-import primitive.
    """
    if path is None:
        return PrismServer
    path = str(path)
    if not path.startswith("repro."):
        raise ProtocolError(
            f"server class {path!r} is outside the repro package")
    module_name, _, class_name = path.rpartition(".")
    try:
        cls = getattr(importlib.import_module(module_name), class_name)
    except (ImportError, AttributeError) as exc:
        raise ProtocolError(f"cannot import server class {path!r}: {exc}"
                            ) from exc
    if not (isinstance(cls, type) and issubclass(cls, PrismServer)):
        raise ProtocolError(f"{path!r} is not a PrismServer subclass")
    return cls


def build_adapter(payload) -> ServerAdapter:
    """Construct the hosted entity from a ``__construct__`` payload."""
    if not isinstance(payload, dict):
        raise ProtocolError("construct payload must be a dict")
    entity = payload.get("entity", "server")
    if entity != "server":
        raise ProtocolError(f"cannot host entity kind {entity!r}")
    cls = _resolve_server_class(payload.get("server_class"))
    kwargs = payload.get("kwargs") or {}
    params = server_params_from_wire(payload["params"])
    return ServerAdapter(cls(int(payload["index"]), params, **kwargs))


class EntityHost:
    """Serves framed requests from a stream onto one entity adapter.

    ``recv_arena``/``send_arena`` attach the shared-memory fast path of
    a same-host (``"shm"``) deployment: requests decode array payloads
    out of ``recv_arena`` and replies encode theirs into ``send_arena``
    (reset per reply — the serial protocol guarantees the previous
    reply was consumed).  Both default to ``None`` for TCP hosts, where
    frames stay fully inline.
    """

    def __init__(self, adapter: ServerAdapter | None = None,
                 recv_arena=None, send_arena=None):
        self.adapter = adapter
        self.recv_arena = recv_arena
        self.send_arena = send_arena

    def serve_stream(self, sock: socket.socket) -> bool:
        """Serve one connection until EOF or shutdown.

        Returns ``True`` when the peer simply disconnected (the host
        should keep accepting) and ``False`` after a ``__shutdown__``
        request (the host process should exit).
        """
        while True:
            blob = recv_frame(sock)
            if blob is None:
                return True
            try:
                frame = decode_frame(blob, arena=self.recv_arena)
            except ProtocolError as exc:
                self._reply(sock, RpcMessage(
                    ERROR, {"type": "ProtocolError", "message": str(exc)}))
                continue
            message = RpcMessage(frame.kind, frame.payload,
                                 frame.correlation_id, frame.span)
            if message.kind == SHUTDOWN:
                self._reply(sock, RpcMessage(RESULT, None,
                                             message.correlation_id))
                return False
            if message.kind == CONSTRUCT:
                try:
                    self.adapter = build_adapter(message.payload)
                    reply = RpcMessage(RESULT,
                                       {"entity": "server",
                                        "index": self.adapter.server.index},
                                       message.correlation_id)
                except Exception as exc:
                    reply = RpcMessage(ERROR,
                                       {"type": type(exc).__name__,
                                        "message": str(exc)},
                                       message.correlation_id)
                self._reply(sock, reply)
                continue
            if self.adapter is None:
                self._reply(sock, RpcMessage(
                    ERROR,
                    {"type": "ProtocolError",
                     "message": "no entity constructed on this host yet"},
                    message.correlation_id))
                continue
            self._reply(sock, self.adapter.dispatch(message))

    def _reply(self, sock: socket.socket, reply: RpcMessage) -> None:
        arena = self.send_arena
        if arena is not None:
            arena.reset()
        send_frame(sock, encode_frame(reply.kind, reply.correlation_id,
                                      reply.span, reply.payload,
                                      arena=arena))


def child_serve(sock: socket.socket, entity_factory,
                recv_arena=None, send_arena=None) -> None:
    """Entry point of a :class:`SubprocessChannel` child (post-fork).

    The arenas (mapped by the parent *before* the fork, so the pages
    are shared) carry the ``"shm"`` deployment's array payloads:
    ``recv_arena`` is where the parent encodes request vectors,
    ``send_arena`` where this child encodes reply vectors.
    """
    adapter = None
    if entity_factory is not None:
        adapter = adapter_for(entity_factory())
    try:
        EntityHost(adapter, recv_arena=recv_arena,
                   send_arena=send_arena).serve_stream(sock)
    finally:
        try:
            sock.close()
        except OSError:
            pass


class GracefulShutdown:
    """Signal-driven drain for a serving loop: finish, reply, exit.

    SIGTERM/SIGINT must not abort an in-flight request mid-compute or
    orphan a reply.  The handler never raises into the serving code;
    it sets a flag and *shuts the read side* of every tracked socket —
    a blocked ``accept``/``recv`` wakes with EOF, the request already
    being served finishes and its reply still sends (the write side
    stays open), and the loop then sees :attr:`requested` and returns.
    """

    def __init__(self):
        self.requested = threading.Event()
        self._lock = threading.Lock()
        self._sockets: list[tuple[socket.socket, bool]] = []

    def install(self) -> "GracefulShutdown":
        """Hook SIGTERM/SIGINT (no-op off the main thread)."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(signum, self._handle)
            except ValueError:
                break  # not the main thread: caller keeps its handlers
        return self

    def track(self, sock: socket.socket, listener: bool = False) -> None:
        with self._lock:
            self._sockets.append((sock, listener))

    def untrack(self, sock: socket.socket) -> None:
        with self._lock:
            self._sockets = [(s, l) for s, l in self._sockets if s is not sock]

    def _handle(self, signum, _frame) -> None:
        self.requested.set()
        with self._lock:
            sockets = list(self._sockets)
        for sock, listener in sockets:
            try:
                if listener:
                    # SHUT_RD is ENOTCONN on a listening socket; close it
                    # so the EINTR-retried accept raises instead of
                    # re-blocking (PEP 475).
                    sock.close()
                else:
                    sock.shutdown(socket.SHUT_RD)
            except OSError:
                pass


def serve_listener(listener: socket.socket,
                   graceful: GracefulShutdown | None = None) -> None:
    """Accept connections until a client or a signal requests shutdown.

    A misbehaving or killed *client* (mid-frame EOF, broken pipe) must
    not take the host down — the host keeps serving the next
    connection; only an explicit ``__shutdown__`` (or SIGTERM/SIGINT
    via ``graceful``, which drains the in-flight request first) ends
    the process.
    """
    host = EntityHost()
    if graceful is not None:
        graceful.track(listener, listener=True)
    while True:
        if graceful is not None and graceful.requested.is_set():
            return
        try:
            conn, _ = listener.accept()
        except OSError:
            if graceful is not None and graceful.requested.is_set():
                return
            raise
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if graceful is not None:
                graceful.track(conn)
            try:
                if not host.serve_stream(conn):
                    return
            except (ProtocolError, OSError) as exc:
                print(f"entity host: dropping connection: {exc}",
                      file=sys.stderr, flush=True)
            finally:
                if graceful is not None:
                    graceful.untrack(conn)


def serve_tcp(port: int, host: str = "127.0.0.1", announce=print,
              graceful: bool = True) -> None:
    """Bind, announce ``LISTENING <port>``, and serve until shutdown.

    ``port=0`` picks an ephemeral port — the announcement line is how
    launchers (the CI smoke, ``examples/distributed_serving.py``)
    discover it.  With ``graceful`` (and on the main thread) SIGTERM /
    SIGINT drain the in-flight request and exit cleanly instead of
    killing the process mid-reply.
    """
    shutdown = GracefulShutdown().install() if graceful else None
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as listener:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen()
        if announce is not None:
            announce(f"LISTENING {listener.getsockname()[1]}", flush=True)
        serve_listener(listener, shutdown)


def launch_forked_hosts(count: int = 3, host: str = "127.0.0.1"):
    """Fork ``count`` entity-host processes on ephemeral ports.

    Each child binds port 0 itself and reports the kernel-assigned port
    back through the bootstrap handshake (a pipe), so no port is ever
    picked before its bind — nothing to race, nothing to leak between
    siblings.  Returns ``(deployment_spec, processes)`` where the spec
    is a ready-to-use ``"tcp://host:port,..."`` string; terminate the
    processes when done.
    """
    pools, processes = launch_forked_pools([1] * count, host)
    spec = "tcp://" + ",".join(
        f"{h}:{p}" for pool in pools for h, p in pool)
    return spec, processes


def launch_forked_pools(pool_sizes, host: str = "127.0.0.1"):
    """Fork one entity-host process per member of each role's pool.

    ``pool_sizes`` gives the pool size per server role, e.g.
    ``[2, 2, 2]`` for two hosts behind each of the three roles.
    Returns ``(pools, processes)`` where ``pools`` is one
    ``[(host, port), ...]`` list per role (ports reported back by the
    children through the bootstrap handshake); format a deployment
    string with :func:`pools_spec`.
    """
    import multiprocessing
    context = multiprocessing.get_context("fork")
    processes: list = []
    pools: list[list[tuple[str, int]]] = []
    try:
        for size in pool_sizes:
            members = []
            for _ in range(int(size)):
                receiver, sender = context.Pipe(duplex=False)
                process = context.Process(
                    target=_serve_announced, args=(host, sender),
                    name="repro-entity-host", daemon=True)
                process.start()
                processes.append(process)
                sender.close()  # the child holds the write end now
                try:
                    port = int(receiver.recv())
                finally:
                    receiver.close()
                members.append((host, port))
            pools.append(members)
    except (EOFError, OSError) as exc:
        for process in processes:
            process.terminate()
        raise ProtocolError(
            f"entity host died before announcing its port: {exc}") from exc
    return pools, processes


def launch_forked_member(host: str = "127.0.0.1"):
    """Fork one replacement entity host; ``((host, port), process)``.

    The supervisor's respawn primitive: one fresh process on an
    ephemeral port, ready for a channel ``rejoin`` to replay the
    journal into it.
    """
    pools, processes = launch_forked_pools([1], host)
    return pools[0][0], processes[0]


def pools_spec(pools) -> str:
    """The ``tcp://`` deployment string for :func:`launch_forked_pools`."""
    return "tcp://" + "/".join(
        ",".join(f"{h}:{p}" for h, p in pool) for pool in pools)


def _serve_announced(host: str, sender) -> None:
    """Child entry: bind port 0, report the assigned port, then serve.

    The child installs its own drain handlers, so a launcher's
    ``terminate()`` (SIGTERM) lets an in-flight request finish and
    reply before the process exits — never a mid-frame corpse.
    """
    shutdown = GracefulShutdown().install()
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as listener:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, 0))
        listener.listen()
        sender.send(listener.getsockname()[1])
        sender.close()
        serve_listener(listener, shutdown)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Host one Prism entity behind the wire codec over TCP.")
    parser.add_argument("--port", type=int, default=9041,
                        help="TCP port (0 = ephemeral; announced on stdout)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: loopback)")
    args = parser.parse_args(argv)
    serve_tcp(args.port, args.host)
    return 0


if __name__ == "__main__":
    sys.exit(main())
