"""Simulated network: endpoints, transfers, traffic accounting, wire codec."""

from repro.network.codec import decode, encode
from repro.network.message import Endpoint, Message, Role, payload_nbytes
from repro.network.transport import LocalTransport, TrafficStats

__all__ = [
    "Endpoint",
    "LocalTransport",
    "Message",
    "Role",
    "TrafficStats",
    "decode",
    "encode",
    "payload_nbytes",
]
