"""The network layer: endpoints, traffic accounting, wire codec, channels.

Beyond the in-process transport simulation, this package carries the
deployment surface: the framed RPC envelope
(:func:`repro.network.codec.encode_frame`), the pluggable
:class:`~repro.network.rpc.Channel` implementations (in-process,
forked subprocess, TCP sockets), and the standalone entity host
(:mod:`repro.network.host`, the ``repro-entity-host`` executable).
"""

from repro.network.codec import Frame, decode, decode_frame, encode, encode_frame
from repro.network.dispatch import (
    ConnectionLost,
    DispatchLoop,
    PooledChannel,
    SocketChannel,
)
from repro.network.message import Endpoint, Message, Role, payload_nbytes
from repro.network.rpc import (
    Channel,
    Deployment,
    InProcessChannel,
    RpcMessage,
    SubprocessChannel,
)
from repro.network.transport import LocalTransport, TrafficStats

__all__ = [
    "Channel",
    "ConnectionLost",
    "Deployment",
    "DispatchLoop",
    "Endpoint",
    "Frame",
    "InProcessChannel",
    "LocalTransport",
    "Message",
    "PooledChannel",
    "RpcMessage",
    "Role",
    "SocketChannel",
    "SubprocessChannel",
    "TrafficStats",
    "decode",
    "decode_frame",
    "encode",
    "encode_frame",
    "payload_nbytes",
]
