"""Pluggable deployment channels: one RPC surface from in-process to TCP.

The orchestration layer used to reach entities through direct Python
method calls; that implicit calling convention is made explicit here as
a request/response surface small enough to fit in one sentence: a
:class:`Channel` moves one :class:`RpcMessage` to an entity and returns
the entity's reply.  Three implementations cover the deployment ladder:

* :class:`InProcessChannel` — today's behaviour: the entity lives in
  this process and the message is dispatched zero-copy (optionally
  round-tripped through the codec for conformance testing).
* :class:`SubprocessChannel` — the entity is hosted in a forked worker
  process; frames travel over a socketpair.
* :class:`SocketChannel` — the entity is hosted by a standalone
  ``repro-entity-host`` process (:mod:`repro.network.host`) and frames
  travel length-prefixed over TCP, multiplexed on the shared dispatch
  loop of :mod:`repro.network.dispatch` (which also provides
  :class:`~repro.network.dispatch.PooledChannel` for host *pools*).

Every message is wrapped in the codec's framed envelope
(:func:`repro.network.codec.encode_frame`): kind, correlation id, shard
span, payload.  Correlation ids pair responses to requests (the
coalescing scheduler and direct callers multiplex one connection);
shard spans let span-scoped sharded sweeps run against a remote host.

The :class:`Deployment` spec is the single declaration of topology —
``"local"``, ``"subprocess"``, or ``"tcp://..."`` with one address
list per server role (``,`` separates a role's pool members, ``/``
separates roles) — parsed once by
:class:`~repro.core.system.PrismSystem` and plumbed through the
client/executor layers.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import socket
import struct
import threading

from repro import exceptions as _exceptions
from repro.core.params import ServerGroupView, ServerParams
from repro.crypto.permutation import Permutation
from repro.exceptions import ParameterError, ProtocolError
from repro.network.codec import FULL_SPAN, decode_frame, encode_frame

#: Reserved message kinds; every other kind names an entity method.
CONSTRUCT = "__construct__"
PING = "__ping__"
SHUTDOWN = "__shutdown__"
RESULT = "__result__"
ERROR = "__error__"

_LENGTH = struct.Struct("<Q")

#: Hard cap on a single frame (16 GiB): a corrupted length prefix must
#: raise a ProtocolError, not drive the receiver into a huge allocation.
MAX_FRAME_BYTES = 1 << 34


@dataclasses.dataclass(frozen=True)
class RpcMessage:
    """One request or response on a channel.

    Attributes:
        kind: entity method name, or a reserved control kind.
        payload: codec-encodable body.  Method calls carry
            ``{"a": [args...], "k": {kwargs...}}``.
        correlation_id: assigned by the channel on send; responses echo
            it (a mismatch is a protocol violation).
        span: contiguous χ shard span the message covers
            (:data:`~repro.network.codec.FULL_SPAN` = whole sweep).
    """

    kind: str
    payload: object = None
    correlation_id: int = 0
    span: tuple[int, int] = FULL_SPAN


# -- stream framing -----------------------------------------------------------


def send_frame(sock: socket.socket, blob: bytes) -> int:
    """Write one length-prefixed frame; returns bytes on the wire."""
    data = _LENGTH.pack(len(blob)) + blob
    sock.sendall(data)
    return len(data)


def recv_frame(sock: socket.socket) -> bytes | None:
    """Read one length-prefixed frame; ``None`` on a clean EOF.

    Raises:
        ProtocolError: on a mid-frame EOF or an absurd length prefix.
    """
    header = _recv_exact(sock, _LENGTH.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the wire cap")
    return _recv_exact(sock, length, allow_eof=False)


def _recv_exact(sock: socket.socket, n: int, allow_eof: bool) -> bytes | None:
    # One preallocated frame-sized buffer filled in place (no per-recv
    # chunk allocations, no join); the single ``bytes()`` at the end
    # buys the immutability the zero-copy decoders key on.
    buf = bytearray(n)
    view = memoryview(buf)
    received = 0
    while received < n:
        got = sock.recv_into(view[received:received + (1 << 20)])
        if not got:
            if allow_eof and received == 0:
                return None
            raise ProtocolError("connection closed mid-frame")
        received += got
    return bytes(buf)


# -- the deployment spec ------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Deployment:
    """Where a system's server entities live, declared once.

    Attributes:
        mode: ``"local"`` (in-process, zero-copy), ``"subprocess"``
            (forked entity hosts, frames over pipes), ``"shm"``
            (forked hosts whose share vectors travel through pre-fork
            shared-memory arenas instead of the socket — see
            :mod:`repro.network.shm`), or ``"tcp"`` (standalone
            ``repro-entity-host`` processes).
        pools: for ``tcp``, one host *pool* per server role — a tuple
            of ``(host, port)`` replicas all holding the same role's
            state.  A pool of one is the classic single-host role.
    """

    mode: str
    pools: tuple[tuple[tuple[str, int], ...], ...] = ()

    @property
    def is_local(self) -> bool:
        return self.mode == "local"

    @property
    def addresses(self) -> tuple[tuple[str, int], ...]:
        """One ``(host, port)`` per role: each pool's first member.

        The pre-pool shape — everything that only needs *a* host per
        role (and every caller written before pools) keeps working.
        """
        return tuple(pool[0] for pool in self.pools)

    @property
    def pool_sizes(self) -> tuple[int, ...]:
        return tuple(len(pool) for pool in self.pools)

    @classmethod
    def parse(cls, spec, num_servers: int = 3) -> "Deployment":
        """Parse a deployment declaration.

        Accepts a :class:`Deployment` (returned as-is), ``"local"``,
        ``"subprocess"``, ``"shm"``, or a ``tcp://`` spec with one
        address list per server role.  Two tcp shapes:

        * ``"tcp://h1:p1,h2:p2,h3:p3"`` — the historical form: exactly
          ``num_servers`` comma-separated addresses, one host per role.
        * ``"tcp://h1:p1,h1:p2/h2:p3/h3:p4"`` — host pools: ``/``
          separates the roles, ``,`` the pool members within a role.
        """
        if isinstance(spec, cls):
            if spec.mode == "tcp" and len(spec.pools) != num_servers:
                raise ParameterError(
                    f"tcp deployment needs {num_servers} address pools, got "
                    f"{len(spec.pools)}"
                )
            return spec
        if not isinstance(spec, str):
            raise ParameterError(
                f"deployment must be a string or Deployment, not "
                f"{type(spec).__name__}"
            )
        if spec in ("local", "subprocess", "shm"):
            return cls(mode=spec)
        if spec.startswith("tcp://"):
            body = spec[len("tcp://"):]
            # Without a "/" the commas separate the roles (the
            # historical one-host-per-role form); with one, they
            # separate a role's pool members.
            role_specs = body.split("/") if "/" in body else body.split(",")
            pools = []
            for role_spec in role_specs:
                members = []
                for part in role_spec.split(","):
                    host, sep, port = part.strip().rpartition(":")
                    if not sep or not host or not port.isdigit():
                        raise ParameterError(
                            f"bad tcp address {part.strip()!r}; expected "
                            f"host:port"
                        )
                    members.append((host, int(port)))
                pools.append(tuple(members))
            if len(pools) != num_servers:
                raise ParameterError(
                    f"tcp deployment needs {num_servers} address pools "
                    f"(one per server), got {len(pools)}"
                )
            return cls(mode="tcp", pools=tuple(pools))
        raise ParameterError(
            f"unknown deployment {spec!r}; expected 'local', 'subprocess', "
            f"'shm', or 'tcp://host:port,...'"
        )


# -- channels -----------------------------------------------------------------


def _remote_exception(payload) -> Exception:
    """Rebuild a remote error as the matching local exception type."""
    if not isinstance(payload, dict):
        return ProtocolError(f"malformed remote error: {payload!r}")
    name = str(payload.get("type", "Exception"))
    message = str(payload.get("message", ""))
    cls = getattr(_exceptions, name, None)
    if isinstance(cls, type) and issubclass(cls, _exceptions.PrismError):
        exc = cls(message)
        retry_after = payload.get("retry_after")
        if retry_after is not None and hasattr(exc, "retry_after"):
            exc.retry_after = float(retry_after)
        address = payload.get("address")
        if address is not None and hasattr(exc, "address"):
            exc.address = str(address)
        return exc
    return ProtocolError(f"remote {name}: {message}")


class Channel:
    """Abstract request/response channel to one hosted entity."""

    def send(self, message: RpcMessage) -> RpcMessage:
        """Deliver one message; returns the entity's reply.

        Raises the reconstructed remote exception when the reply is an
        error frame.
        """
        raise NotImplementedError

    def call(self, method: str, *args, **kwargs):
        """Convenience: invoke an entity method and return its result."""
        reply = self.send(RpcMessage(kind=method,
                                     payload={"a": list(args), "k": kwargs}))
        return reply.payload

    @property
    def fan_out(self) -> int:
        """How many hosts serve this channel concurrently (pool size)."""
        return 1

    def scatter(self, messages) -> list["RpcMessage"]:
        """Deliver a batch of requests; replies in request order.

        The base channel sends them one by one; multiplexed channels
        (:mod:`repro.network.dispatch`) override this with pipelined /
        pooled fan-out, which is what makes span-decomposed sweeps
        travel concurrently.
        """
        return [self.send(message) for message in messages]

    def close(self) -> None:
        """Release the channel (idempotent)."""

    @property
    def stats(self) -> dict:
        """Counters: requests served, bytes sent/received on the wire."""
        return {"requests": 0, "bytes_sent": 0, "bytes_received": 0}


class InProcessChannel(Channel):
    """Zero-copy channel to an entity living in this process.

    Args:
        entity: the hosted entity (e.g. a
            :class:`~repro.entities.server.PrismServer`).
        serialize: round-trip every message through the framed codec —
            conformance mode: byte-exact wire behaviour without a
            process boundary.
    """

    def __init__(self, entity, serialize: bool = False):
        from repro.network.host import adapter_for
        self._adapter = adapter_for(entity)
        self.serialize = serialize
        self._requests = 0
        self._bytes_sent = 0
        self._bytes_received = 0
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def send(self, message: RpcMessage) -> RpcMessage:
        with self._lock:
            correlation_id = next(self._ids)
            self._requests += 1
        message = dataclasses.replace(message, correlation_id=correlation_id)
        if self.serialize:
            blob = encode_frame(message.kind, message.correlation_id,
                                message.span, message.payload)
            self._bytes_sent += len(blob)
            frame = decode_frame(blob)
            message = RpcMessage(frame.kind, frame.payload,
                                 frame.correlation_id, frame.span)
        reply = self._adapter.dispatch(message)
        if self.serialize:
            blob = encode_frame(reply.kind, reply.correlation_id, reply.span,
                                reply.payload)
            self._bytes_received += len(blob)
            frame = decode_frame(blob)
            reply = RpcMessage(frame.kind, frame.payload,
                               frame.correlation_id, frame.span)
        if reply.kind == ERROR:
            raise _remote_exception(reply.payload)
        if reply.correlation_id != correlation_id:
            raise ProtocolError(
                f"correlation mismatch: sent {correlation_id}, got "
                f"{reply.correlation_id}"
            )
        return reply

    @property
    def stats(self) -> dict:
        return {"requests": self._requests, "bytes_sent": self._bytes_sent,
                "bytes_received": self._bytes_received}


class _StreamChannel(Channel):
    """Shared machinery for channels framing messages over a socket."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._requests = 0
        self._bytes_sent = 0
        self._bytes_received = 0
        self._closed = False
        # Shared-memory arenas of a same-host channel (request payloads
        # outbound, reply payloads inbound); ``None`` keeps the classic
        # all-inline wire shape.  See repro.network.shm.
        self._tx_arena = None
        self._rx_arena = None

    def send(self, message: RpcMessage) -> RpcMessage:
        # One in-flight request per channel: the lock serialises
        # concurrent callers (scheduler thread + direct queries), and
        # correlation ids verify the pairing on top.
        with self._lock:
            if self._closed:
                raise ProtocolError("channel is closed")
            correlation_id = next(self._ids)
            if self._tx_arena is not None:
                # Strictly serial protocol: the previous reply proved
                # the previous request frame was fully decoded, so its
                # arena allocations are reclaimable.
                self._tx_arena.reset()
            blob = encode_frame(message.kind, correlation_id, message.span,
                                message.payload, arena=self._tx_arena)
            self._bytes_sent += send_frame(self._sock, blob)
            reply_blob = recv_frame(self._sock)
            if reply_blob is None:
                raise ProtocolError(
                    f"entity host closed the connection during "
                    f"{message.kind!r}"
                )
            self._bytes_received += len(reply_blob) + _LENGTH.size
            self._requests += 1
            if self._rx_arena is not None:
                # Copy-out must finish before the lock releases: the
                # *next* request is what triggers the host's
                # reply-arena reset, and the lock is what orders it
                # after this decode.
                frame = decode_frame(reply_blob, arena=self._rx_arena)
            else:
                frame = None
        if frame is None:
            frame = decode_frame(reply_blob)
        # Error replies surface first: a host that could not decode the
        # request replies with correlation id 0 (it never learned ours),
        # and the real diagnostic beats a correlation-mismatch report.
        if frame.kind == ERROR:
            raise _remote_exception(frame.payload)
        if frame.correlation_id != correlation_id:
            raise ProtocolError(
                f"correlation mismatch: sent {correlation_id}, got "
                f"{frame.correlation_id}"
            )
        if frame.kind != RESULT:
            raise ProtocolError(f"unexpected reply kind {frame.kind!r}")
        return RpcMessage(frame.kind, frame.payload, frame.correlation_id,
                          frame.span)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    @property
    def stats(self) -> dict:
        return {"requests": self._requests, "bytes_sent": self._bytes_sent,
                "bytes_received": self._bytes_received}


class SubprocessChannel(_StreamChannel):
    """Channel to an entity hosted in a forked worker process.

    Use :meth:`spawn`: the factory runs *in the child after the fork*
    (inherited by reference — nothing is pickled), so heavyweight
    parameters travel copy-on-write and arbitrary factory callables
    (including malicious-server lambdas) work unchanged.
    """

    def __init__(self, sock: socket.socket, process):
        super().__init__(sock)
        self.process = process

    @classmethod
    def spawn(cls, entity_factory,
              shm_bytes: int | None = None) -> "SubprocessChannel":
        """Fork a child hosting ``entity_factory()``; frames over a pipe.

        With ``shm_bytes``, a pair of shared-memory arenas (request and
        reply payloads) is mapped *before* the fork so both processes
        share the pages: large share vectors stop riding the socket and
        travel as 24-byte arena references instead (the ``"shm"``
        deployment mode).  ``None`` keeps the classic all-inline frames.

        Raises:
            ParameterError: on platforms without ``fork`` (use
                ``deployment="local"`` or real TCP hosts there).
        """
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ParameterError(
                "subprocess deployment needs fork-based worker processes; "
                "use deployment='local' or 'tcp://...' on this platform"
            )
        from repro.network.host import child_serve
        tx_arena = rx_arena = None
        if shm_bytes is not None:
            from repro.network.shm import ShmArena
            tx_arena = ShmArena(shm_bytes)
            rx_arena = ShmArena(shm_bytes)
        parent_sock, child_sock = socket.socketpair()
        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=child_serve,
            args=(child_sock, entity_factory, tx_arena, rx_arena),
            name="repro-entity-host", daemon=True)
        process.start()
        child_sock.close()
        channel = cls(parent_sock, process)
        channel._tx_arena = tx_arena
        channel._rx_arena = rx_arena
        return channel

    def close(self) -> None:
        if self._closed:
            return
        try:
            self.send(RpcMessage(SHUTDOWN))
        except (ProtocolError, OSError):
            pass  # the child may already be gone
        super().close()
        if self.process is not None:
            self.process.join(timeout=10)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=10)
        for arena in (self._tx_arena, self._rx_arena):
            if arena is not None:
                arena.close()


def __getattr__(name: str):
    # TCP channels live on the shared dispatch loop
    # (:mod:`repro.network.dispatch`), which imports this module for
    # the wire primitives; re-export them lazily to avoid the cycle.
    if name in ("SocketChannel", "PooledChannel", "ConnectionLost",
                "DispatchLoop"):
        from repro.network import dispatch
        return getattr(dispatch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# -- parameter views over the wire -------------------------------------------


def server_params_to_wire(params: ServerParams) -> dict:
    """Codec-encodable form of a server's knowledge view (§4).

    Ships exactly what the initiator deals to a server — permutation
    mappings, the group view with its power table, the common PRG seed
    — so a remote entity host can reconstruct an identical
    :class:`~repro.core.params.ServerParams` without ever seeing the
    initiator (or anything the §4 view withholds, such as ``eta``).
    """
    return {
        "num_owners": params.num_owners,
        "delta": params.delta,
        "field_prime": params.field_prime,
        "group": {
            "delta": params.group.delta,
            "eta_prime": params.group.eta_prime,
            "g": params.group.g,
            "power_table": params.group.power_table,
        },
        "pf": params.pf.mapping,
        "pf_owners": params.pf_owners.mapping,
        "pf_s1": params.pf_s1.mapping,
        "pf_s2": params.pf_s2.mapping,
        "prg_seed": params.prg_seed,
        "extrema_modulus": params.extrema_modulus,
        "m_share": params.m_share,
    }


def server_params_from_wire(data: dict) -> ServerParams:
    """Inverse of :func:`server_params_to_wire`.

    Raises:
        ProtocolError: when required fields are missing or malformed.
    """
    try:
        group = data["group"]
        return ServerParams(
            num_owners=int(data["num_owners"]),
            delta=int(data["delta"]),
            group=ServerGroupView(
                delta=int(group["delta"]),
                eta_prime=int(group["eta_prime"]),
                g=int(group["g"]),
                power_table=group["power_table"],
            ),
            field_prime=int(data["field_prime"]),
            pf=Permutation(data["pf"]),
            pf_owners=Permutation(data["pf_owners"]),
            pf_s1=Permutation(data["pf_s1"]),
            pf_s2=Permutation(data["pf_s2"]),
            prg_seed=int(data["prg_seed"]),
            extrema_modulus=int(data["extrema_modulus"]),
            m_share=int(data["m_share"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed server parameter view: {exc}") from exc
