"""Message and traffic-accounting primitives for the simulated network.

Prism's headline property is *no communication among servers*; the
transport enforces that structurally (§3.2).  Every transfer is also
measured, so experiments can report communication volume alongside time
(the paper's comparison points — e.g. the ``(nm)^2`` blow-up of two-party
PSI generalisations — are communication arguments).
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np


class Role(enum.Enum):
    """Entity roles in the Prism architecture (§3.2)."""

    OWNER = "owner"
    SERVER = "server"
    INITIATOR = "initiator"
    ANNOUNCER = "announcer"


@dataclasses.dataclass(frozen=True)
class Endpoint:
    """A network endpoint: a role plus an index within that role."""

    role: Role
    index: int

    def __str__(self) -> str:
        return f"{self.role.value}{self.index}"


#: Prefix of the ``kind`` label carried by fused multi-query streams.
BATCH_KIND_PREFIX = "batch"


def batch_kind(stream: str, num_queries: int) -> str:
    """Wire ``kind`` label for a fused multi-query stream.

    Batched rounds ship one 2-D matrix where the sequential protocol ships
    ``num_queries`` vectors; labelling the stream (e.g.
    ``"batch:psi-output[8]"``) keeps the traffic accounting attributable —
    experiments can still split batched from sequential traffic.
    """
    return f"{BATCH_KIND_PREFIX}:{stream}[{num_queries}]"


def is_batch_kind(kind: str) -> bool:
    """Whether a recorded message kind names a fused multi-query stream."""
    return kind.startswith(BATCH_KIND_PREFIX + ":")


def payload_nbytes(payload) -> int:
    """Approximate wire size of a message payload in bytes.

    numpy arrays count their buffer; Python ints count 8 bytes (the paper's
    values are machine words); containers are summed recursively.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bool, float)):
        return 8
    if isinstance(payload, int):
        return max(8, (payload.bit_length() + 7) // 8)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, dict):
        return sum(payload_nbytes(v) for v in payload.values())
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(v) for v in payload)
    return 8  # conservative default for opaque objects


@dataclasses.dataclass(frozen=True)
class Message:
    """One recorded transfer between two endpoints."""

    sender: Endpoint
    receiver: Endpoint
    kind: str
    nbytes: int
