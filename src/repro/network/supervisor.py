"""Host supervision: respawn dead pool members and re-seed them warm.

:class:`PooledChannel` already survives a member death *query-side*
(failover + eject + half-open probing), but an ejected seat only
rejoins if something restarts a host on its port.  For deployments the
process itself forked (:func:`~repro.network.host.launch_forked_pools`)
this module closes the loop: a :class:`HostSupervisor` watches every
forked member process, respawns a dead one with exponential backoff on
a fresh ephemeral port, and hands the new address to the role channel's
``rejoin`` — which replays the journaled state broadcasts
(``__construct__``, ``receive_shares``) so the replacement joins
*warm*, holding the exact replica state of its siblings, and re-enters
rotation.

The supervisor heals both channel shapes through one interface:
:meth:`PooledChannel.rejoin` re-binds one seat of a pool,
:meth:`SocketChannel.rejoin` replaces a pool-of-one role's only
connection.
"""

from __future__ import annotations

import threading
import time

from repro.exceptions import ProtocolError, QueryError
from repro.network.dispatch import _swallow
from repro.network.host import launch_forked_member

#: Respawn backoff: first retry after the base delay, doubling per
#: consecutive failure up to the cap.
RESPAWN_BACKOFF_BASE = 0.25
RESPAWN_BACKOFF_CAP = 5.0


def _reap(processes) -> None:
    """Terminate, join, and (if stubborn) kill forked host processes."""
    for process in processes:
        try:
            if process.is_alive():
                process.terminate()
        except (OSError, ValueError, AssertionError):
            pass  # never started, already closed, or already reaped
    for process in processes:
        try:
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        except (OSError, ValueError, AssertionError):
            pass


class _Seat:
    """One supervised pool member: role, slot, process, channel."""

    def __init__(self, role: int, slot: int, address, process, channel):
        self.role = role
        self.slot = slot
        self.address = tuple(address)
        self.process = process
        self.channel = channel
        self.down_since: float | None = None
        self.next_attempt = 0.0
        self.backoff = RESPAWN_BACKOFF_BASE

    @property
    def label(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"


class HostSupervisor:
    """Watch forked pool members; respawn + warm-rejoin the dead ones.

    Built from the same ``(pools, processes)`` pair
    :func:`~repro.network.host.launch_forked_pools` returned (processes
    are flat in pool order) and the :class:`~repro.core.system.PrismSystem`
    whose role channels serve those pools.  ``start()`` runs the watch
    loop on a daemon thread; ``poll()`` is public so tests can drive
    recovery deterministically.  ``close()`` reaps every process it
    ever owned — current and replaced — so ``system.close()`` leaves no
    orphans.
    """

    def __init__(self, system, pools, processes, host: str = "127.0.0.1",
                 poll_interval: float = 0.1,
                 respawn_backoff: float = RESPAWN_BACKOFF_BASE,
                 backoff_cap: float = RESPAWN_BACKOFF_CAP):
        self.host = host
        self.poll_interval = poll_interval
        self.respawn_backoff = respawn_backoff
        self.backoff_cap = backoff_cap
        self._seats: list[_Seat] = []
        process_iter = iter(processes)
        for role, pool in enumerate(pools):
            channel = system._channels[role]
            for slot, address in enumerate(pool):
                seat = _Seat(role, slot, address, next(process_iter), channel)
                seat.backoff = respawn_backoff
                self._seats.append(seat)
        self._dead: list = []
        self._lock = threading.Lock()
        self._closing = threading.Event()
        self._paused = threading.Event()
        self._thread: threading.Thread | None = None
        self._respawns = 0
        self._respawn_failures = 0
        self._recovery_seconds: list[float] = []
        system.supervisor = self

    def start(self) -> "HostSupervisor":
        """Run the watch loop on a daemon thread (idempotent)."""
        with self._lock:
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run, name="repro-supervisor", daemon=True)
                self._thread.start()
        return self

    def _run(self) -> None:
        while not self._closing.wait(self.poll_interval):
            try:
                self.poll()
            except Exception as exc:  # noqa: BLE001 - loop must survive
                # The watch loop must survive anything a single respawn
                # attempt does (backoff state limits retry pressure),
                # but the cause lands in the traffic stats, not a void.
                _swallow("supervisor-poll", exc)

    def poll(self) -> None:
        """One supervision pass (public for deterministic tests)."""
        if self._closing.is_set() or self._paused.is_set():
            return
        now = time.monotonic()
        for seat in self._seats:
            if self._closing.is_set():
                return
            if seat.process.is_alive():
                seat.down_since = None
                seat.backoff = self.respawn_backoff
                continue
            if getattr(seat.channel, "closed", False):
                continue  # intentional teardown, not a crash
            if seat.down_since is None:
                seat.down_since = now
                seat.next_attempt = now
            if now >= seat.next_attempt:
                self._respawn(seat)

    def pause(self) -> None:
        """Suspend respawns (tests observe degraded mode undisturbed)."""
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    def _respawn(self, seat: _Seat) -> None:
        down_since = seat.down_since
        address, process = launch_forked_member(self.host)
        try:
            seat.channel.rejoin(seat.slot, address, warm_from=0,
                                connect_timeout=5.0)
        except (ProtocolError, QueryError, OSError) as exc:
            # Expected respawn failures retry with backoff — surfaced,
            # not silent.  Anything *typed but unexpected* (AuthError,
            # a decode bug) propagates to the watch-loop guard instead
            # of being mistaken for a flaky host.
            _swallow("supervisor-respawn", exc)
            _reap([process])
            with self._lock:
                self._respawn_failures += 1
            seat.next_attempt = time.monotonic() + seat.backoff
            seat.backoff = min(seat.backoff * 2, self.backoff_cap)
            return
        with self._lock:
            self._dead.append(seat.process)
            seat.process = process
            seat.address = tuple(address)
            seat.down_since = None
            seat.backoff = self.respawn_backoff
            self._respawns += 1
            if down_since is not None:
                self._recovery_seconds.append(time.monotonic() - down_since)
        hook = getattr(seat.channel, "on_event", None)
        if hook is not None:
            try:
                hook("respawn", seat.label)
            except Exception as exc:  # noqa: BLE001 - hook is user code
                _swallow("supervisor-hook", exc)

    def process_for(self, role: int, slot: int):
        """The live process currently seated at ``(role, slot)``."""
        for seat in self._seats:
            if seat.role == role and seat.slot == slot:
                return seat.process
        raise KeyError((role, slot))

    @property
    def processes(self) -> list:
        """Every process the supervisor owns: current seats + replaced."""
        with self._lock:
            return [seat.process for seat in self._seats] + list(self._dead)

    @property
    def stats(self) -> dict:
        with self._lock:
            recoveries = list(self._recovery_seconds)
            return {
                "supervised": len(self._seats),
                "respawns": self._respawns,
                "respawn_failures": self._respawn_failures,
                "recovery_seconds": recoveries,
                "last_recovery_seconds": (recoveries[-1] if recoveries
                                          else None),
            }

    def close(self) -> None:
        """Stop supervising and reap every owned process (idempotent)."""
        self._closing.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=10.0)
        _reap(self.processes)
