"""Wire format for Prism messages.

The in-process transport can hand numpy arrays around by reference, but a
deployable system ships bytes.  This codec defines a compact, versioned
binary encoding for every payload type the protocols send:

* int64 share vectors (the χ/aggregation streams),
* int64 share matrices (the fused multi-query batch streams, 2-D),
* arbitrary-precision integers (extrema shares),
* lists of big ints (announcer arrays, fpos vectors),
* share-pair tuples and string-keyed dicts of any of the above.

Layout: 1 magic byte ``0x5A``, 1 version byte, 1 type tag, then the
type-specific body.  All integers are little-endian.  The transport's
``serialize=True`` mode round-trips every transfer through this codec,
so the accounting becomes the true wire size and any non-serialisable
payload is caught immediately.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.exceptions import ProtocolError

MAGIC = 0x5A
VERSION = 1

_TAG_VECTOR = 1
_TAG_BIGINT = 2
_TAG_LIST = 3
_TAG_DICT = 4
_TAG_TUPLE = 5
_TAG_NONE = 6
_TAG_STR = 7
_TAG_MATRIX = 8


def encode(payload) -> bytes:
    """Encode a protocol payload to bytes.

    Raises:
        ProtocolError: for unsupported payload types.
    """
    return struct.pack("<BB", MAGIC, VERSION) + _encode_body(payload)


def _encode_body(payload) -> bytes:
    if payload is None:
        return struct.pack("<B", _TAG_NONE)
    if isinstance(payload, np.ndarray):
        if payload.ndim == 2:
            data = np.ascontiguousarray(payload, dtype=np.int64).tobytes()
            return struct.pack("<BQQ", _TAG_MATRIX, payload.shape[0],
                               payload.shape[1]) + data
        if payload.ndim != 1:
            raise ProtocolError(
                "only 1-D share vectors and 2-D batch matrices travel on "
                "the wire"
            )
        data = np.ascontiguousarray(payload, dtype=np.int64).tobytes()
        return struct.pack("<BQ", _TAG_VECTOR, payload.shape[0]) + data
    if isinstance(payload, bool):
        raise ProtocolError("booleans are not a wire type; send 0/1 ints")
    if isinstance(payload, int):
        raw = _int_to_bytes(payload)
        return struct.pack("<BBQ", _TAG_BIGINT, 1 if payload < 0 else 0,
                           len(raw)) + raw
    if isinstance(payload, str):
        raw = payload.encode("utf-8")
        return struct.pack("<BQ", _TAG_STR, len(raw)) + raw
    if isinstance(payload, tuple):
        parts = [_encode_body(item) for item in payload]
        return struct.pack("<BQ", _TAG_TUPLE, len(parts)) + b"".join(parts)
    if isinstance(payload, list):
        parts = [_encode_body(item) for item in payload]
        return struct.pack("<BQ", _TAG_LIST, len(parts)) + b"".join(parts)
    if isinstance(payload, dict):
        parts = []
        for key, value in payload.items():
            if not isinstance(key, str):
                raise ProtocolError("wire dicts use string keys")
            parts.append(_encode_body(key))
            parts.append(_encode_body(value))
        return struct.pack("<BQ", _TAG_DICT, len(payload)) + b"".join(parts)
    raise ProtocolError(
        f"cannot serialise payload of type {type(payload).__name__}"
    )


def _int_to_bytes(value: int) -> bytes:
    value = abs(value)
    length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "little")


def decode(blob: bytes):
    """Decode bytes produced by :func:`encode`.

    Raises:
        ProtocolError: on a bad magic byte, unknown version/tag, or a
            truncated body.
    """
    if len(blob) < 2:
        raise ProtocolError("wire message too short for its header")
    magic, version = struct.unpack_from("<BB", blob, 0)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic byte 0x{magic:02x}")
    if version != VERSION:
        raise ProtocolError(f"unsupported wire version {version}")
    payload, offset = _decode_body(blob, 2)
    if offset != len(blob):
        raise ProtocolError(f"{len(blob) - offset} trailing bytes on the wire")
    return payload


def _decode_body(blob: bytes, offset: int):
    try:
        (tag,) = struct.unpack_from("<B", blob, offset)
    except struct.error:
        raise ProtocolError("truncated wire message") from None
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_VECTOR:
        (length,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        end = offset + 8 * length
        if end > len(blob):
            raise ProtocolError("truncated share vector")
        vector = np.frombuffer(blob[offset:end], dtype="<i8").astype(np.int64)
        return vector, end
    if tag == _TAG_MATRIX:
        try:
            rows, cols = struct.unpack_from("<QQ", blob, offset)
        except struct.error:
            raise ProtocolError("truncated share matrix header") from None
        offset += 16
        end = offset + 8 * rows * cols
        if end > len(blob):
            raise ProtocolError("truncated share matrix")
        matrix = np.frombuffer(blob[offset:end], dtype="<i8").astype(np.int64)
        return matrix.reshape(rows, cols), end
    if tag == _TAG_BIGINT:
        negative, length = struct.unpack_from("<BQ", blob, offset)
        offset += 9
        end = offset + length
        if end > len(blob):
            raise ProtocolError("truncated integer")
        value = int.from_bytes(blob[offset:end], "little")
        return -value if negative else value, end
    if tag == _TAG_STR:
        (length,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        end = offset + length
        if end > len(blob):
            raise ProtocolError("truncated string")
        return blob[offset:end].decode("utf-8"), end
    if tag in (_TAG_LIST, _TAG_TUPLE):
        (count,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        items = []
        for _ in range(count):
            item, offset = _decode_body(blob, offset)
            items.append(item)
        return (tuple(items) if tag == _TAG_TUPLE else items), offset
    if tag == _TAG_DICT:
        (count,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        out = {}
        for _ in range(count):
            key, offset = _decode_body(blob, offset)
            value, offset = _decode_body(blob, offset)
            out[key] = value
        return out, offset
    raise ProtocolError(f"unknown wire tag {tag}")
