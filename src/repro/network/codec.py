"""Wire format for Prism messages.

The in-process transport can hand numpy arrays around by reference, but a
deployable system ships bytes.  This codec defines a compact, versioned
binary encoding for every payload type the protocols send:

* int64 share vectors (the χ/aggregation streams),
* int64 share matrices (the fused multi-query batch streams, 2-D),
* arbitrary-precision integers (extrema shares),
* lists of big ints (announcer arrays, fpos vectors),
* share-pair tuples and string-keyed dicts of any of the above,
* booleans, floats, raw byte strings, and maps with scalar keys (the
  RPC argument surface: kernel flag lists such as ``subtract_m``, and
  the owner-keyed share dicts of the extrema rounds).

Layout: 1 magic byte ``0x5A``, 1 version byte, 1 type tag, then the
type-specific body.  All integers are little-endian.  The transport's
``serialize=True`` mode round-trips every transfer through this codec,
so the accounting becomes the true wire size and any non-serialisable
payload is caught immediately.

Framed request envelope
-----------------------

Deployment channels (:mod:`repro.network.rpc`) do not ship bare
payloads: every request/response travels inside a *frame* — a second
magic byte (``0x5B``), the codec version, a **correlation id** (so a
channel multiplexing concurrent queries can pair responses to
requests), a **shard span** ``(lo, hi)`` (``(-1, -1)`` = the full χ
length; anything else scopes the request to one contiguous shard of
the sweep), then the message *kind* (an entity method name or a
reserved ``__construct__``/``__error__``-style control kind) and the
codec-encoded payload.  :func:`encode_frame` / :func:`decode_frame`
implement the envelope; stream-level length prefixes live in the
channel layer, which is what actually writes sockets.
"""

from __future__ import annotations

import dataclasses
import struct
import sys

import numpy as np

from repro.exceptions import ProtocolError

#: Zero-copy decode is only valid where the wire layout (little-endian
#: int64) *is* the host layout; big-endian hosts take the byteswapping
#: copy path.
_NATIVE_LE = sys.byteorder == "little"


def _decode_i64(blob, offset: int, count: int) -> np.ndarray:
    """``count`` int64s at ``offset`` — a zero-copy view when possible.

    On little-endian hosts an immutable ``bytes`` blob backs the
    returned (read-only) array directly: decoding a share vector costs
    no copy, and the view keeps the blob alive.  Mutable buffers
    (``bytearray`` receive windows) and big-endian hosts fall back to
    copying — a view into a reused receive buffer would be corrupted by
    the next read.  Consumers that *retain* decoded vectors copy at the
    retention point (:class:`repro.data.storage.StoredColumn`), not here
    on the hot path.
    """
    if _NATIVE_LE and isinstance(blob, bytes):
        return np.frombuffer(blob, dtype=np.int64, count=count, offset=offset)
    return np.frombuffer(
        blob[offset:offset + 8 * count], dtype="<i8").astype(np.int64)

MAGIC = 0x5A
VERSION = 1

#: Frame-envelope magic (distinct from the payload magic so a stray
#: payload blob can never be mistaken for a framed request).
FRAME_MAGIC = 0x5B

#: The shard span meaning "the whole sweep" (no span scoping).
FULL_SPAN = (-1, -1)

#: The session/gateway message namespace.  Frame kinds carrying this
#: prefix are reserved for the multi-tenant serving gateway's session
#: protocol (:mod:`repro.serving`) — hello/register/query/stats/...
#: travel in the same framed envelope as entity RPCs, but an entity
#: host must never dispatch them onto a hosted entity (and the gateway
#: must never forward an un-prefixed kind into its session surface).
GATEWAY_PREFIX = "gw:"


def gateway_kind(name: str) -> str:
    """The namespaced frame kind of one gateway session message."""
    return GATEWAY_PREFIX + name


def is_gateway_kind(kind: str) -> bool:
    """Whether a frame kind belongs to the gateway session namespace."""
    return kind.startswith(GATEWAY_PREFIX)

_TAG_VECTOR = 1
_TAG_BIGINT = 2
_TAG_LIST = 3
_TAG_DICT = 4
_TAG_TUPLE = 5
_TAG_NONE = 6
_TAG_STR = 7
_TAG_MATRIX = 8
_TAG_BOOL = 9
_TAG_FLOAT = 10
_TAG_BYTES = 11
_TAG_MAP = 12
#: Shared-memory references (same-host deployments only): the array
#: body lives in a :class:`repro.network.shm.ShmArena` both sides of
#: the channel mapped before forking; the frame carries ``(offset,
#: shape)``.  Decoding one without an arena is a protocol violation —
#: these tags must never cross a real network boundary.
_TAG_VECTOR_SHM = 13
_TAG_MATRIX_SHM = 14

#: Arrays below this byte size stay inline even with an arena attached:
#: the reference + copy-out machinery only beats the inline path once
#: the memcpy dominates the per-frame overhead.
_SHM_MIN_BYTES = 2048

#: Containers deeper than this are a malformed (or adversarial) message,
#: not a protocol payload; the cap keeps a fuzzed byte string from
#: driving the decoder into a RecursionError instead of a ProtocolError.
_MAX_DEPTH = 32

#: Key types a ``_TAG_MAP`` entry may use — hashable scalars only, so a
#: decoded map is always a legal Python dict.
_MAP_KEY_TYPES = (bool, int, str, bytes, float, type(None))


def encode(payload, arena=None) -> bytes:
    """Encode a protocol payload to bytes.

    With ``arena`` (a :class:`repro.network.shm.ShmArena`), large int64
    arrays land in the shared pages and the returned bytes carry only
    references — same-host channels skip shipping array bodies.

    Raises:
        ProtocolError: for unsupported payload types.
    """
    return struct.pack("<BB", MAGIC, VERSION) + _encode_body(
        payload, arena=arena)


def _encode_body(payload, depth: int = 0, arena=None) -> bytes:
    if depth > _MAX_DEPTH:
        raise ProtocolError(
            f"payload nesting exceeds the wire depth limit ({_MAX_DEPTH})"
        )
    if payload is None:
        return struct.pack("<B", _TAG_NONE)
    if isinstance(payload, np.ndarray):
        if payload.ndim == 2:
            contiguous = np.ascontiguousarray(payload, dtype=np.int64)
            if arena is not None and contiguous.nbytes >= _SHM_MIN_BYTES:
                shm_offset = arena.write_array(contiguous)
                if shm_offset is not None:
                    return struct.pack("<BQQQ", _TAG_MATRIX_SHM, shm_offset,
                                       payload.shape[0], payload.shape[1])
            return struct.pack("<BQQ", _TAG_MATRIX, payload.shape[0],
                               payload.shape[1]) + contiguous.tobytes()
        if payload.ndim != 1:
            raise ProtocolError(
                "only 1-D share vectors and 2-D batch matrices travel on "
                "the wire"
            )
        contiguous = np.ascontiguousarray(payload, dtype=np.int64)
        if arena is not None and contiguous.nbytes >= _SHM_MIN_BYTES:
            shm_offset = arena.write_array(contiguous)
            if shm_offset is not None:
                return struct.pack("<BQQ", _TAG_VECTOR_SHM, shm_offset,
                                   payload.shape[0])
        return struct.pack("<BQ", _TAG_VECTOR,
                           payload.shape[0]) + contiguous.tobytes()
    if isinstance(payload, (bool, np.bool_)):
        # A dedicated tag: booleans round-trip as booleans, never as
        # 0/1 ints (the kernel flag lists — subtract_m, use_pf_s2,
        # permute — are semantically boolean on the RPC surface).
        return struct.pack("<BB", _TAG_BOOL, 1 if payload else 0)
    if isinstance(payload, (int, np.integer)):
        payload = int(payload)
        raw = _int_to_bytes(payload)
        return struct.pack("<BBQ", _TAG_BIGINT, 1 if payload < 0 else 0,
                           len(raw)) + raw
    if isinstance(payload, (float, np.floating)):
        return struct.pack("<Bd", _TAG_FLOAT, float(payload))
    if isinstance(payload, str):
        raw = payload.encode("utf-8")
        return struct.pack("<BQ", _TAG_STR, len(raw)) + raw
    if isinstance(payload, (bytes, bytearray)):
        return struct.pack("<BQ", _TAG_BYTES, len(payload)) + bytes(payload)
    if isinstance(payload, tuple):
        parts = [_encode_body(item, depth + 1, arena) for item in payload]
        return struct.pack("<BQ", _TAG_TUPLE, len(parts)) + b"".join(parts)
    if isinstance(payload, list):
        parts = [_encode_body(item, depth + 1, arena) for item in payload]
        return struct.pack("<BQ", _TAG_LIST, len(parts)) + b"".join(parts)
    if isinstance(payload, dict):
        if all(isinstance(key, str) for key in payload):
            parts = []
            for key, value in payload.items():
                parts.append(_encode_body(key, depth + 1, arena))
                parts.append(_encode_body(value, depth + 1, arena))
            return struct.pack("<BQ", _TAG_DICT, len(payload)) + b"".join(parts)
        # Non-string keys (the extrema rounds key share dicts by owner
        # id): a generic map whose keys are restricted to hashable
        # scalars so decoding always yields a legal dict.
        parts = []
        for key, value in payload.items():
            if not isinstance(key, _MAP_KEY_TYPES) and not isinstance(
                    key, (int, np.integer)):
                raise ProtocolError(
                    f"wire maps need scalar keys, not "
                    f"{type(key).__name__}"
                )
            parts.append(_encode_body(key, depth + 1, arena))
            parts.append(_encode_body(value, depth + 1, arena))
        return struct.pack("<BQ", _TAG_MAP, len(payload)) + b"".join(parts)
    raise ProtocolError(
        f"cannot serialise payload of type {type(payload).__name__}"
    )


def _int_to_bytes(value: int) -> bytes:
    value = abs(value)
    length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "little")


def decode(blob: bytes, arena=None):
    """Decode bytes produced by :func:`encode`.

    Raises:
        ProtocolError: on a bad magic byte, unknown version/tag, a
            truncated body, or a shared-memory reference without (or
            outside) ``arena``.
    """
    if len(blob) < 2:
        raise ProtocolError("wire message too short for its header")
    magic, version = struct.unpack_from("<BB", blob, 0)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic byte 0x{magic:02x}")
    if version != VERSION:
        raise ProtocolError(f"unsupported wire version {version}")
    payload, offset = _decode_body(blob, 2, arena=arena)
    if offset != len(blob):
        raise ProtocolError(f"{len(blob) - offset} trailing bytes on the wire")
    return payload


def _decode_body(blob: bytes, offset: int, depth: int = 0, arena=None):
    if depth > _MAX_DEPTH:
        raise ProtocolError(
            f"payload nesting exceeds the wire depth limit ({_MAX_DEPTH})"
        )
    try:
        (tag,) = struct.unpack_from("<B", blob, offset)
    except struct.error:
        raise ProtocolError("truncated wire message") from None
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_BOOL:
        try:
            (flag,) = struct.unpack_from("<B", blob, offset)
        except struct.error:
            raise ProtocolError("truncated boolean") from None
        if flag not in (0, 1):
            raise ProtocolError(f"boolean byte must be 0/1, got {flag}")
        return bool(flag), offset + 1
    if tag == _TAG_FLOAT:
        try:
            (value,) = struct.unpack_from("<d", blob, offset)
        except struct.error:
            raise ProtocolError("truncated float") from None
        return value, offset + 8
    if tag == _TAG_VECTOR:
        try:
            (length,) = struct.unpack_from("<Q", blob, offset)
        except struct.error:
            raise ProtocolError("truncated share-vector header") from None
        offset += 8
        end = offset + 8 * length
        if end > len(blob):
            raise ProtocolError("truncated share vector")
        return _decode_i64(blob, offset, length), end
    if tag == _TAG_MATRIX:
        try:
            rows, cols = struct.unpack_from("<QQ", blob, offset)
        except struct.error:
            raise ProtocolError("truncated share matrix header") from None
        offset += 16
        end = offset + 8 * rows * cols
        if end > len(blob):
            raise ProtocolError("truncated share matrix")
        matrix = _decode_i64(blob, offset, rows * cols)
        return matrix.reshape(rows, cols), end
    if tag in (_TAG_VECTOR_SHM, _TAG_MATRIX_SHM):
        if arena is None:
            raise ProtocolError(
                "shared-memory frame decoded without an arena: shm "
                "references must never cross a host boundary")
        try:
            if tag == _TAG_VECTOR_SHM:
                shm_offset, length = struct.unpack_from("<QQ", blob, offset)
                offset += 16
                return arena.read_array(shm_offset, length), offset
            shm_offset, rows, cols = struct.unpack_from("<QQQ", blob, offset)
            offset += 24
            matrix = arena.read_array(shm_offset, rows * cols)
            return matrix.reshape(rows, cols), offset
        except struct.error:
            raise ProtocolError(
                "truncated shared-memory reference") from None
    if tag == _TAG_BIGINT:
        try:
            negative, length = struct.unpack_from("<BQ", blob, offset)
        except struct.error:
            raise ProtocolError("truncated integer header") from None
        offset += 9
        end = offset + length
        if end > len(blob):
            raise ProtocolError("truncated integer")
        value = int.from_bytes(blob[offset:end], "little")
        return -value if negative else value, end
    if tag in (_TAG_STR, _TAG_BYTES):
        try:
            (length,) = struct.unpack_from("<Q", blob, offset)
        except struct.error:
            raise ProtocolError("truncated string header") from None
        offset += 8
        end = offset + length
        if end > len(blob):
            raise ProtocolError("truncated string")
        if tag == _TAG_BYTES:
            return blob[offset:end], end
        try:
            return blob[offset:end].decode("utf-8"), end
        except UnicodeDecodeError:
            raise ProtocolError("string is not valid UTF-8") from None
    if tag in (_TAG_LIST, _TAG_TUPLE):
        try:
            (count,) = struct.unpack_from("<Q", blob, offset)
        except struct.error:
            raise ProtocolError("truncated container header") from None
        offset += 8
        items = []
        for _ in range(count):
            item, offset = _decode_body(blob, offset, depth + 1, arena)
            items.append(item)
        return (tuple(items) if tag == _TAG_TUPLE else items), offset
    if tag in (_TAG_DICT, _TAG_MAP):
        try:
            (count,) = struct.unpack_from("<Q", blob, offset)
        except struct.error:
            raise ProtocolError("truncated container header") from None
        offset += 8
        out = {}
        for _ in range(count):
            key, offset = _decode_body(blob, offset, depth + 1, arena)
            if tag == _TAG_DICT and not isinstance(key, str):
                raise ProtocolError("wire dicts use string keys")
            if tag == _TAG_MAP and not isinstance(key, _MAP_KEY_TYPES):
                raise ProtocolError(
                    f"wire maps need scalar keys, not "
                    f"{type(key).__name__}"
                )
            value, offset = _decode_body(blob, offset, depth + 1, arena)
            out[key] = value
        return out, offset
    raise ProtocolError(f"unknown wire tag {tag}")


# -- the framed request envelope ---------------------------------------------


@dataclasses.dataclass(frozen=True)
class Frame:
    """One decoded request/response envelope.

    Attributes:
        kind: the message kind — an entity method name (``"psi_round"``)
            or a reserved control kind (``"__construct__"``,
            ``"__result__"``, ``"__error__"``, ...).
        correlation_id: pairs a response to its request on a channel
            that multiplexes concurrent queries (the coalescing
            scheduler and direct callers share one connection).
        span: the contiguous χ shard span ``(lo, hi)`` this message
            covers; :data:`FULL_SPAN` means the whole sweep.
        payload: the codec-decoded message body.
    """

    kind: str
    correlation_id: int
    span: tuple[int, int]
    payload: object


_FRAME_HEADER = struct.Struct("<BBQqq")


def encode_frame(kind: str, correlation_id: int, span, payload,
                 arena=None) -> bytes:
    """Encode one framed message (envelope + codec-encoded payload).

    ``arena`` routes large arrays through shared memory — same-host
    channels only (see :mod:`repro.network.shm`).

    Raises:
        ProtocolError: for a non-string kind, a malformed span, or an
            unencodable payload.
    """
    if not isinstance(kind, str) or not kind:
        raise ProtocolError("frame kind must be a non-empty string")
    try:
        lo, hi = int(span[0]), int(span[1])
    except (TypeError, ValueError, IndexError):
        raise ProtocolError(f"frame span must be (lo, hi), got {span!r}"
                            ) from None
    if (lo, hi) != FULL_SPAN and not 0 <= lo < hi:
        raise ProtocolError(f"frame span ({lo}, {hi}) is not a χ span")
    header = _FRAME_HEADER.pack(FRAME_MAGIC, VERSION,
                                int(correlation_id), lo, hi)
    return header + _encode_body(kind) + _encode_body(payload, arena=arena)


def decode_frame(blob: bytes, arena=None) -> Frame:
    """Decode one framed message produced by :func:`encode_frame`.

    Raises:
        ProtocolError: on a bad frame magic, unknown version, malformed
            kind/span, truncated body, trailing bytes, or a
            shared-memory reference without ``arena``.
    """
    if len(blob) < _FRAME_HEADER.size:
        raise ProtocolError("wire frame too short for its envelope")
    magic, version, correlation_id, lo, hi = _FRAME_HEADER.unpack_from(blob, 0)
    if magic != FRAME_MAGIC:
        raise ProtocolError(f"bad frame magic byte 0x{magic:02x}")
    if version != VERSION:
        raise ProtocolError(f"unsupported frame version {version}")
    if (lo, hi) != FULL_SPAN and not 0 <= lo < hi:
        raise ProtocolError(f"frame span ({lo}, {hi}) is not a χ span")
    kind, offset = _decode_body(blob, _FRAME_HEADER.size)
    if not isinstance(kind, str) or not kind:
        raise ProtocolError("frame kind must be a non-empty string")
    payload, offset = _decode_body(blob, offset, arena=arena)
    if offset != len(blob):
        raise ProtocolError(
            f"{len(blob) - offset} trailing bytes after the frame")
    return Frame(kind=kind, correlation_id=int(correlation_id),
                 span=(lo, hi), payload=payload)
