"""Async multi-host dispatch: one selector loop, many multiplexed peers.

PR 5's :class:`~repro.network.rpc.SocketChannel` admitted one in-flight
request per connection: every RPC was a blocking round trip, so the
three server roles were swept strictly one after another and a span
decomposition serialised into span-count round trips.  This module
rebuilds the TCP transport on a single background *dispatch loop*
(:class:`DispatchLoop`, a ``selectors``-driven thread shared by every
connection in the process) with three properties the scale-out story
needs:

* **Request pipelining** — a caller may issue any number of requests on
  one connection before collecting replies; frames queue in an outbox
  the loop flushes as the socket drains.  The entity host serves a
  connection serially in order, so pipelined frames overlap client-side
  work (and the *other* roles' sweeps) with the host's compute.
* **Correlation-id multiplexing** — every reply is routed to the future
  registered under its correlation id (:class:`_MuxConnection`).  An
  unknown id is a protocol violation that poisons the connection; it
  can never deliver to the wrong caller.
* **Connection pooling** — :class:`PooledChannel` holds one multiplexed
  connection per member of a server role's host pool.  State-changing
  kinds broadcast to every member (replicas stay identical);
  whole-sweep reads route to the least-loaded member; and
  :meth:`PooledChannel.scatter` fans a span decomposition out across
  the pool concurrently, which is how one fused sweep runs on several
  hosts at once.

Transport-level failures (EOF, reset, timeout) raise
:class:`ConnectionLost` — a :class:`~repro.exceptions.ProtocolError`
subclass, so existing handlers keep working — and a pool wraps them in
a typed :class:`~repro.exceptions.QueryError` naming the failed member:
a killed or hung pool host fails the query cleanly instead of
deadlocking it or returning a partial result.
"""

from __future__ import annotations

import collections
import itertools
import selectors
import socket
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout

from repro.exceptions import ProtocolError, QueryError
from repro.network.codec import _FRAME_HEADER, FRAME_MAGIC, decode_frame
from repro.network.rpc import (
    CONSTRUCT,
    ERROR,
    MAX_FRAME_BYTES,
    RESULT,
    SHUTDOWN,
    _LENGTH,
    Channel,
    RpcMessage,
    _remote_exception,
    encode_frame,
)


class ConnectionLost(ProtocolError):
    """The transport under an in-flight request died (EOF/reset/timeout)."""


#: Kinds that must reach *every* member of a host pool: replicas answer
#: read-only requests interchangeably only because each one received the
#: same outsourced shares, the same constructed entity, and the same
#: lifecycle transitions.
BROADCAST_KINDS = frozenset({CONSTRUCT, SHUTDOWN, "receive_shares", "close"})

_RECV_CHUNK = 1 << 20
_SEND_CHUNK = 1 << 18


class DispatchLoop:
    """One background selector thread driving every mux connection.

    The loop owns all socket I/O: callers only append to a connection's
    outbox (and :meth:`wake` the loop); the loop flushes outboxes,
    reads replies, and completes the registered futures.  Selector
    mutations are deferred to the loop thread through an op queue —
    ``selectors`` objects are not thread-safe.
    """

    _shared: "DispatchLoop | None" = None
    _shared_lock = threading.Lock()

    @classmethod
    def shared(cls) -> "DispatchLoop":
        """The process-wide loop (created and started on first use)."""
        with cls._shared_lock:
            if cls._shared is None:
                cls._shared = cls()
        cls._shared.ensure_running()
        return cls._shared

    def __init__(self):
        self._selector = selectors.DefaultSelector()
        wake_recv, wake_send = socket.socketpair()
        wake_recv.setblocking(False)
        wake_send.setblocking(False)
        self._wake_recv = wake_recv
        self._wake_send = wake_send
        self._selector.register(wake_recv, selectors.EVENT_READ, None)
        self._ops: collections.deque = collections.deque()
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None

    def ensure_running(self) -> None:
        with self._lock:
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run, name="repro-dispatch", daemon=True)
                self._thread.start()

    def wake(self) -> None:
        """Interrupt a pending ``select`` (idempotent, non-blocking)."""
        try:
            self._wake_send.send(b"\x00")
        except (BlockingIOError, InterruptedError, OSError):
            pass  # a wake byte is already pending, which is enough

    def defer(self, op) -> None:
        """Run ``op`` on the loop thread before the next ``select``."""
        with self._lock:
            self._ops.append(op)
        self.wake()

    def attach(self, conn: "_MuxConnection") -> None:
        self.defer(lambda: self._selector.register(
            conn.sock, selectors.EVENT_READ, conn))
        self.ensure_running()

    def detach(self, conn: "_MuxConnection") -> None:
        """Unregister + close a (dead) connection's socket, loop-side.

        Closing on the loop thread, after the unregister, avoids the
        select-on-closed-fd race a caller-side ``close()`` would create.
        """
        def op():
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
        self.defer(op)

    def _run(self) -> None:  # pragma: no cover - exercised via sockets
        while True:
            try:
                self._tick()
            except Exception:
                # The loop must survive anything a single connection
                # does; the connection's own error paths report to its
                # callers.
                continue

    def _tick(self) -> None:  # pragma: no cover - exercised via sockets
        while True:
            with self._lock:
                if not self._ops:
                    break
                op = self._ops.popleft()
            try:
                op()
            except Exception:
                pass
        for key in list(self._selector.get_map().values()):
            conn = key.data
            if conn is None:
                continue
            conn.flush()
            want = selectors.EVENT_READ
            if conn.wants_write():
                want |= selectors.EVENT_WRITE
            if key.events != want:
                try:
                    self._selector.modify(key.fileobj, want, conn)
                except (KeyError, ValueError, OSError):
                    pass
        for key, events in self._selector.select(timeout=1.0):
            conn = key.data
            if conn is None:
                try:
                    while self._wake_recv.recv(4096):
                        pass
                except (BlockingIOError, InterruptedError, OSError):
                    pass
                continue
            if events & selectors.EVENT_WRITE:
                conn.flush()
            if events & selectors.EVENT_READ:
                conn.on_readable()


class _MuxConnection:
    """One multiplexed peer: outbox, reassembly buffer, pending futures.

    The wire-facing half (``flush``/``on_readable``) runs on the
    dispatch loop; the protocol half (:meth:`receive_bytes`,
    :meth:`_deliver`, :meth:`connection_lost`) is pure byte-stream
    logic, so the multiplexer's routing invariants are directly
    property-testable without sockets (``sock=None, loop=None``).
    """

    def __init__(self, sock: socket.socket | None, label: str = "?",
                 loop: DispatchLoop | None = None):
        self.sock = sock
        self.label = label
        self._loop = loop
        self._lock = threading.Lock()
        self._outbox = bytearray()
        self._rx = bytearray()
        self._pending: dict[int, Future] = {}
        self._ids = itertools.count(1)
        self._dead: Exception | None = None
        self.requests = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        if sock is not None:
            sock.setblocking(False)
        if loop is not None:
            loop.attach(self)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._dead is not None

    # -- caller side ----------------------------------------------------------

    def request(self, message: RpcMessage) -> "PendingReply":
        """Queue one request frame; returns a handle for its reply."""
        with self._lock:
            if self._dead is not None:
                raise ConnectionLost(
                    f"channel to entity host {self.label} is closed: "
                    f"{self._dead}")
            correlation_id = next(self._ids)
            blob = encode_frame(message.kind, correlation_id, message.span,
                                message.payload)
            self._outbox += _LENGTH.pack(len(blob))
            self._outbox += blob
            future: Future = Future()
            self._pending[correlation_id] = future
            self.requests += 1
            self.bytes_sent += len(blob) + _LENGTH.size
        if self._loop is not None:
            self._loop.wake()
        return PendingReply(self, correlation_id, future, message.kind)

    def close(self) -> None:
        """Caller-initiated teardown (fails any in-flight requests)."""
        self.connection_lost(ConnectionLost(
            f"channel to entity host {self.label} was closed locally"))

    # -- loop side ------------------------------------------------------------

    def wants_write(self) -> bool:
        with self._lock:
            return bool(self._outbox) and self._dead is None

    def flush(self) -> None:
        """Write as much of the outbox as the socket accepts (loop thread)."""
        while True:
            with self._lock:
                if self._dead is not None or not self._outbox:
                    return
                chunk = bytes(self._outbox[:_SEND_CHUNK])
            try:
                sent = self.sock.send(chunk)
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                self.connection_lost(ConnectionLost(
                    f"connection to entity host {self.label} failed: {exc}"))
                return
            with self._lock:
                del self._outbox[:sent]

    def on_readable(self) -> None:
        """Drain the socket into the reassembly buffer (loop thread)."""
        while True:
            try:
                data = self.sock.recv(_RECV_CHUNK)
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                self.connection_lost(ConnectionLost(
                    f"connection to entity host {self.label} failed: {exc}"))
                return
            if not data:
                self.connection_lost(ConnectionLost(
                    f"entity host {self.label} closed the connection with "
                    f"{self.in_flight} request(s) in flight"))
                return
            try:
                self.receive_bytes(data)
            except ProtocolError as exc:
                self.connection_lost(exc)
                return
            if len(data) < _RECV_CHUNK:
                return

    # -- protocol logic (socket-free, property-tested) ------------------------

    def receive_bytes(self, data: bytes) -> None:
        """Feed received bytes; delivers every completed frame.

        Raises:
            ProtocolError: on a malformed length prefix or frame
                envelope, or an unsolicited correlation id — the caller
                must treat the stream as poisoned
                (:meth:`connection_lost`); partial trailing frames
                simply wait for more bytes.
        """
        self._rx += data
        while True:
            if len(self._rx) < _LENGTH.size:
                return
            (length,) = _LENGTH.unpack_from(self._rx, 0)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length {length} exceeds the wire cap")
            end = _LENGTH.size + length
            if len(self._rx) < end:
                return
            blob = bytes(self._rx[_LENGTH.size:end])
            del self._rx[:end]
            self.bytes_received += end
            self._deliver(blob)

    def _deliver(self, blob: bytes) -> None:
        """Route one reply frame to the future holding its correlation id."""
        if len(blob) < _FRAME_HEADER.size:
            raise ProtocolError("wire frame too short for its envelope")
        magic, _version, correlation_id, _lo, _hi = _FRAME_HEADER.unpack_from(
            blob, 0)
        if magic != FRAME_MAGIC:
            raise ProtocolError(f"bad frame magic byte 0x{magic:02x}")
        with self._lock:
            if correlation_id == 0:
                # The host could not decode a request, so it never
                # learned our correlation id.  The host serves a
                # connection strictly in order, so this reply belongs
                # to the oldest in-flight request.
                correlation_id = min(self._pending, default=0)
            future = self._pending.pop(correlation_id, None)
        if future is None:
            raise ProtocolError(
                f"unsolicited correlation id {correlation_id} from "
                f"entity host {self.label}")
        future.set_result(blob)

    def connection_lost(self, exc: Exception) -> None:
        """Poison the connection: fail every in-flight request with ``exc``.

        Idempotent; safe from any thread.  After a loss nothing can be
        mis-delivered — the pending map is cleared atomically and later
        frames have nowhere to land.
        """
        with self._lock:
            if self._dead is not None:
                return
            self._dead = exc
            pending = list(self._pending.values())
            self._pending.clear()
            self._outbox.clear()
        for future in pending:
            try:
                future.set_exception(exc)
            except Exception:
                pass  # completed concurrently by a late delivery
        if self._loop is not None:
            self._loop.detach(self)
            self._loop.wake()
        elif self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass

    @property
    def stats(self) -> dict:
        return {"requests": self.requests, "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received}


class PendingReply:
    """Handle for one pipelined request's eventual reply."""

    def __init__(self, conn: _MuxConnection, correlation_id: int,
                 future: Future, kind: str):
        self._conn = conn
        self._correlation_id = correlation_id
        self._future = future
        self._kind = kind

    def result(self, timeout: float | None = None) -> RpcMessage:
        """Block for the reply; decodes and error-maps on this thread.

        Raises the rebuilt remote exception for ``__error__`` replies
        and :class:`ConnectionLost` when the transport died (or the
        ``timeout`` elapsed — which also poisons the connection: after
        a timeout the reply stream can no longer be trusted to line up
        with the pending ids).
        """
        try:
            blob = self._future.result(timeout)
        except FutureTimeout:
            lost = ConnectionLost(
                f"request {self._kind!r} to entity host {self._conn.label} "
                f"timed out after {timeout:.1f}s")
            self._conn.connection_lost(lost)
            raise lost from None
        except ConnectionLost as exc:
            raise ConnectionLost(
                f"{exc} (while waiting for {self._kind!r})") from exc
        frame = decode_frame(blob)
        # Error replies surface before the correlation check: the real
        # diagnostic beats a mismatch report (mirrors _StreamChannel).
        if frame.kind == ERROR:
            raise _remote_exception(frame.payload)
        if frame.correlation_id != self._correlation_id:
            raise ProtocolError(
                f"correlation mismatch: sent {self._correlation_id}, got "
                f"{frame.correlation_id}")
        if frame.kind != RESULT:
            raise ProtocolError(f"unexpected reply kind {frame.kind!r}")
        return RpcMessage(frame.kind, frame.payload, frame.correlation_id,
                          frame.span)


def _connect_retry(host: str, port: int, timeout: float) -> socket.socket:
    """Connect with the boot-retry loop every TCP channel shares."""
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            # The connect timeout must not persist: request pacing is
            # the dispatch layer's job (PendingReply.result), not the
            # kernel's.
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last_error = exc
            time.sleep(0.05)
    raise ProtocolError(
        f"cannot reach entity host at {host}:{port}: {last_error}")


class SocketChannel(Channel):
    """Channel to one ``repro-entity-host`` over TCP, on the dispatch loop.

    Keeps the blocking :meth:`send` contract of the PR 4 channel (and
    its error semantics — :class:`ConnectionLost` *is* a
    ``ProtocolError``), but requests pipeline: :meth:`send_async`
    returns a :class:`PendingReply` immediately, and :meth:`scatter`
    issues a whole span decomposition before collecting any reply.
    """

    def __init__(self, conn: _MuxConnection, address: tuple[str, int],
                 request_timeout: float | None = None):
        self._conn = conn
        self.address = address
        self.request_timeout = request_timeout

    @classmethod
    def connect(cls, host: str, port: int, timeout: float = 10.0,
                request_timeout: float | None = None) -> "SocketChannel":
        """Connect, retrying until ``timeout`` (hosts may still be booting)."""
        sock = _connect_retry(host, port, timeout)
        conn = _MuxConnection(sock, f"{host}:{port}", DispatchLoop.shared())
        return cls(conn, (host, port), request_timeout)

    @property
    def fan_out(self) -> int:
        return 1

    def send(self, message: RpcMessage) -> RpcMessage:
        return self.send_async(message).result(self.request_timeout)

    def send_async(self, message: RpcMessage) -> PendingReply:
        """Pipeline one request; returns immediately."""
        return self._conn.request(message)

    def scatter(self, messages) -> list[RpcMessage]:
        """Issue every request before collecting any reply (pipelined)."""
        pendings = [self._conn.request(message) for message in messages]
        return [pending.result(self.request_timeout) for pending in pendings]

    def shutdown_remote(self) -> None:
        """Ask the remote host process to exit, then close the channel."""
        try:
            self.send(RpcMessage(SHUTDOWN))
        except (ProtocolError, OSError):
            pass
        self.close()

    def close(self) -> None:
        if not self._conn.closed:
            self._conn.close()

    @property
    def stats(self) -> dict:
        return self._conn.stats


class PooledChannel(Channel):
    """One server role served by a pool of replicated entity hosts.

    Every member holds identical state: :data:`BROADCAST_KINDS`
    (construction, outsourced shares, lifecycle) reach all members, so
    any member can answer any read — whole-sweep requests route to the
    least-loaded connection, and :meth:`scatter` spreads a span
    decomposition across the pool round-robin, all members computing
    their spans concurrently.

    A member failing mid-request raises a typed
    :class:`~repro.exceptions.QueryError` naming the member — never a
    deadlock, never a partial result.
    """

    def __init__(self, members: list[_MuxConnection],
                 request_timeout: float | None = None):
        if not members:
            raise ProtocolError("a host pool needs at least one member")
        self._members = list(members)
        self.request_timeout = request_timeout
        self._rotation = itertools.count()
        self._scattered = 0
        self._lock = threading.Lock()

    @classmethod
    def connect(cls, addresses, timeout: float = 10.0,
                request_timeout: float | None = None) -> "PooledChannel":
        loop = DispatchLoop.shared()
        members: list[_MuxConnection] = []
        try:
            for host, port in addresses:
                sock = _connect_retry(host, int(port), timeout)
                members.append(_MuxConnection(sock, f"{host}:{port}", loop))
        except BaseException:
            for member in members:
                member.close()
            raise
        return cls(members, request_timeout)

    @property
    def fan_out(self) -> int:
        return len(self._members)

    @property
    def addresses(self) -> list[str]:
        return [member.label for member in self._members]

    def send(self, message: RpcMessage) -> RpcMessage:
        if message.kind in BROADCAST_KINDS:
            # Issue to every member first, then gather: the replicas
            # apply the state change concurrently.
            pendings = [(m, self._request(m, message)) for m in self._members]
            replies = [self._result(m, p) for m, p in pendings]
            return replies[0]
        member = self._pick()
        return self._result(member, self._request(member, message))

    def scatter(self, messages) -> list[RpcMessage]:
        """Fan span frames across the pool; replies in request order."""
        pendings = []
        for index, message in enumerate(messages):
            member = self._members[index % len(self._members)]
            pendings.append((member, self._request(member, message)))
        with self._lock:
            self._scattered += len(pendings)
        return [self._result(member, pending) for member, pending in pendings]

    def _pick(self) -> _MuxConnection:
        # Least-loaded member; the rotating tiebreak spreads an idle
        # pool's traffic instead of pinning it to member 0.
        start = next(self._rotation) % len(self._members)
        ordered = self._members[start:] + self._members[:start]
        return min(ordered, key=lambda member: member.in_flight)

    def _request(self, member: _MuxConnection,
                 message: RpcMessage) -> PendingReply:
        try:
            return member.request(message)
        except ConnectionLost as exc:
            raise QueryError(
                f"server pool member {member.label} is unreachable: "
                f"{exc}") from exc

    def _result(self, member: _MuxConnection,
                pending: PendingReply) -> RpcMessage:
        try:
            return pending.result(self.request_timeout)
        except ConnectionLost as exc:
            raise QueryError(
                f"server pool member {member.label} failed mid-request: "
                f"{exc}") from exc

    def shutdown_remote(self) -> None:
        try:
            self.send(RpcMessage(SHUTDOWN))
        except (ProtocolError, QueryError, OSError):
            pass
        self.close()

    def close(self) -> None:
        for member in self._members:
            if not member.closed:
                member.close()

    @property
    def stats(self) -> dict:
        members = [member.stats for member in self._members]
        with self._lock:
            scattered = self._scattered
        return {
            "requests": sum(s["requests"] for s in members),
            "bytes_sent": sum(s["bytes_sent"] for s in members),
            "bytes_received": sum(s["bytes_received"] for s in members),
            "fan_out": len(members),
            "scattered_frames": scattered,
            "members": members,
        }


# -- overlapped role dispatch -------------------------------------------------

_OVERLAP_POOL = None
_OVERLAP_LOCK = threading.Lock()


def overlap(thunks) -> list:
    """Run per-server sweep thunks concurrently; results in order.

    Used by the batch engine when every server is remote: the three
    roles' fused sweeps block on socket I/O, so a small shared thread
    pool overlaps them (the hosts compute in their own processes).  The
    first exception propagates after all thunks have settled — a failed
    member never leaves a sibling thunk running into torn state.
    """
    thunks = list(thunks)
    if len(thunks) <= 1:
        return [thunk() for thunk in thunks]
    global _OVERLAP_POOL
    with _OVERLAP_LOCK:
        if _OVERLAP_POOL is None:
            from concurrent.futures import ThreadPoolExecutor
            _OVERLAP_POOL = ThreadPoolExecutor(
                max_workers=8, thread_name_prefix="repro-overlap")
        pool = _OVERLAP_POOL
    futures = [pool.submit(thunk) for thunk in thunks]
    results, first_error = [], None
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if first_error is None:
                first_error = exc
            results.append(None)
    if first_error is not None:
        raise first_error
    return results
