"""Async multi-host dispatch: one selector loop, many multiplexed peers.

PR 5's :class:`~repro.network.rpc.SocketChannel` admitted one in-flight
request per connection: every RPC was a blocking round trip, so the
three server roles were swept strictly one after another and a span
decomposition serialised into span-count round trips.  This module
rebuilds the TCP transport on a single background *dispatch loop*
(:class:`DispatchLoop`, a ``selectors``-driven thread shared by every
connection in the process) with three properties the scale-out story
needs:

* **Request pipelining** — a caller may issue any number of requests on
  one connection before collecting replies; frames queue in an outbox
  the loop flushes as the socket drains.  The entity host serves a
  connection serially in order, so pipelined frames overlap client-side
  work (and the *other* roles' sweeps) with the host's compute.
* **Correlation-id multiplexing** — every reply is routed to the future
  registered under its correlation id (:class:`_MuxConnection`).  An
  unknown id is a protocol violation that poisons the connection; it
  can never deliver to the wrong caller.
* **Connection pooling** — :class:`PooledChannel` holds one multiplexed
  connection per member of a server role's host pool.  State-changing
  kinds broadcast to every member (replicas stay identical);
  whole-sweep reads route to the least-loaded member; and
  :meth:`PooledChannel.scatter` fans a span decomposition out across
  the pool concurrently, which is how one fused sweep runs on several
  hosts at once.

Transport-level failures (EOF, reset, timeout) raise
:class:`ConnectionLost` — a :class:`~repro.exceptions.ProtocolError`
subclass, so existing handlers keep working.  A *pooled* role
self-heals instead of failing: reads and span sweeps are idempotent
(every replica holds identical state because :data:`BROADCAST_KINDS`
reach all members), so :class:`PooledChannel` retransmits a lost frame
to a surviving member, ejects the dead one behind a circuit breaker
with half-open probing (replaying the journaled state broadcasts into
a rejoining host), and degrades down to any pool size ≥ 1 before
surfacing a typed :class:`~repro.exceptions.QueryError` naming the
exhausted pool.
"""

from __future__ import annotations

import bisect
import collections
import itertools
import random
import selectors
import socket
import threading
import time
import weakref
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeout

from repro.exceptions import ProtocolError, QueryError
from repro.network.codec import _FRAME_HEADER, FRAME_MAGIC, decode_frame
from repro.network.rpc import (
    CONSTRUCT,
    ERROR,
    MAX_FRAME_BYTES,
    PING,
    RESULT,
    SHUTDOWN,
    _LENGTH,
    Channel,
    RpcMessage,
    _remote_exception,
    encode_frame,
)


class ConnectionLost(ProtocolError):
    """The transport under an in-flight request died (EOF/reset/timeout)."""


#: Kinds that must reach *every* member of a host pool: replicas answer
#: read-only requests interchangeably only because each one received the
#: same outsourced shares, the same constructed entity, and the same
#: lifecycle transitions.
BROADCAST_KINDS = frozenset({CONSTRUCT, SHUTDOWN, "receive_shares", "close"})

#: The state-*establishing* subset of the broadcasts: what a channel
#: journals so a respawned or reconnecting pool member can be replayed
#: back to the exact state of its replicas.  Lifecycle transitions
#: (shutdown, close) are deliberately excluded — replaying them would
#: tear a fresh member straight back down.
JOURNAL_KINDS = frozenset({CONSTRUCT, "receive_shares"})

#: Lifecycle / health kinds get their own short deadline: a liveness
#: probe must answer in seconds even when sweeps are allowed minutes.
LIFECYCLE_KINDS = frozenset({PING, SHUTDOWN, "close"})

#: Default deadline for lifecycle kinds and rejoin verification pings.
PROBE_TIMEOUT = 5.0

#: How long a half-open probe or rejoin spends connecting to a member.
PROBE_CONNECT_TIMEOUT = 0.5

#: Circuit-breaker backoff for ejected pool members: first half-open
#: probe after the base delay, doubling per failed probe up to the cap.
EJECT_BACKOFF_BASE = 0.25
EJECT_BACKOFF_CAP = 15.0

#: Boot-connect retry backoff (exponential, full jitter, capped) — a
#: 3-role × N-member boot must not thundering-herd a slow host.
_CONNECT_BACKOFF_BASE = 0.01
_CONNECT_BACKOFF_CAP = 1.0

_RECV_CHUNK = 1 << 20
_SEND_CHUNK = 1 << 18


def _lifecycle_timeout(request_timeout: float | None,
                       probe_timeout: float | None) -> float | None:
    """The deadline for a lifecycle/probe RPC: the tighter of the two."""
    candidates = [t for t in (request_timeout, probe_timeout)
                  if t is not None]
    return min(candidates) if candidates else None


def _replay_journal(conn: "_MuxConnection", frames,
                    timeout: float | None) -> None:
    """Re-send journaled state broadcasts to one (re)joining member."""
    for message in frames:
        conn.request(message).result(timeout)


#: Transports whose :class:`~repro.network.transport.TrafficStats`
#: receive ``swallowed-*`` events (weak, so registering a system never
#: pins it past its own teardown).
_EVENT_SINKS: "weakref.WeakSet" = weakref.WeakSet()


def register_event_sink(transport) -> None:
    """Surface deliberately-swallowed dispatch-layer exceptions.

    The handlers that must stay broad (the dispatch loop's survival
    guard, the pool observability hook) report whatever they catch to
    every registered transport as a
    ``swallowed-<site>:<ExceptionType>`` event, so a typed error eaten
    during eject/respawn shows up in ``TrafficStats`` instead of
    vanishing.
    """
    _EVENT_SINKS.add(transport)


def _swallow(where: str, exc: BaseException) -> None:
    """Count one swallowed exception on every registered sink."""
    for transport in list(_EVENT_SINKS):
        try:
            transport.stats.count_event(
                f"swallowed-{where}:{type(exc).__name__}")
        except Exception:  # noqa: BLE001 - the sink must never re-raise
            pass


def _journal_key(message: RpcMessage):
    """Compaction key of a journaled frame, or ``None`` (keep forever).

    ``ServerStore.put`` *replaces* the stored column, so a later
    ``receive_shares`` for the same ``(owner, column, kind)`` makes the
    earlier frame dead weight: replaying only the survivor re-creates
    the exact replica state.  Channels use this to drop superseded
    frames instead of growing the journal by one frame per outsourcing
    round for the life of the pool.  ``__construct__`` frames (and any
    frame whose payload does not look like the ``receive_shares`` wire
    shape) have no key and are never compacted away.
    """
    if message.kind != "receive_shares":
        return None
    payload = message.payload
    args = payload.get("a") if isinstance(payload, dict) else None
    if not isinstance(args, (list, tuple)) or len(args) < 4:
        return None
    owner_id, column, _values, kind = args[:4]
    return (message.kind, owner_id, column, str(kind))


def _parse_address(label: str) -> tuple[str, int]:
    """``host:port`` out of a connection label (best effort)."""
    host, _, port = label.rpartition(":")
    try:
        return (host or label), int(port)
    except ValueError:
        return label, 0


class DispatchLoop:
    """One background selector thread driving every mux connection.

    The loop owns all socket I/O: callers only append to a connection's
    outbox (and :meth:`wake` the loop); the loop flushes outboxes,
    reads replies, and completes the registered futures.  Selector
    mutations are deferred to the loop thread through an op queue —
    ``selectors`` objects are not thread-safe.
    """

    _shared: "DispatchLoop | None" = None
    _shared_lock = threading.Lock()

    @classmethod
    def shared(cls) -> "DispatchLoop":
        """The process-wide loop (created and started on first use)."""
        with cls._shared_lock:
            if cls._shared is None:
                cls._shared = cls()
        cls._shared.ensure_running()
        return cls._shared

    def __init__(self):
        self._selector = selectors.DefaultSelector()
        wake_recv, wake_send = socket.socketpair()
        wake_recv.setblocking(False)
        wake_send.setblocking(False)
        self._wake_recv = wake_recv
        self._wake_send = wake_send
        self._selector.register(wake_recv, selectors.EVENT_READ, None)
        self._ops: collections.deque = collections.deque()
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None

    def ensure_running(self) -> None:
        with self._lock:
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run, name="repro-dispatch", daemon=True)
                self._thread.start()

    def wake(self) -> None:
        """Interrupt a pending ``select`` (idempotent, non-blocking)."""
        try:
            self._wake_send.send(b"\x00")
        except (BlockingIOError, InterruptedError, OSError):
            pass  # a wake byte is already pending, which is enough

    def defer(self, op) -> None:
        """Run ``op`` on the loop thread before the next ``select``."""
        with self._lock:
            self._ops.append(op)
        self.wake()

    def attach(self, conn: "_MuxConnection") -> None:
        self.defer(lambda: self._selector.register(
            conn.sock, selectors.EVENT_READ, conn))
        self.ensure_running()

    def detach(self, conn: "_MuxConnection") -> None:
        """Unregister + close a (dead) connection's socket, loop-side.

        Closing on the loop thread, after the unregister, avoids the
        select-on-closed-fd race a caller-side ``close()`` would create.
        """
        def op():
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
        self.defer(op)

    def _run(self) -> None:  # pragma: no cover - exercised via sockets
        while True:
            try:
                self._tick()
            except Exception as exc:
                # The loop must survive anything a single connection
                # does (the connection's own error paths report to its
                # callers) — but what it survived is still surfaced to
                # the traffic stats, never silently dropped.
                _swallow("dispatch-loop", exc)
                continue

    def _tick(self) -> None:  # pragma: no cover - exercised via sockets
        while True:
            with self._lock:
                if not self._ops:
                    break
                op = self._ops.popleft()
            try:
                op()
            except (KeyError, ValueError, OSError) as exc:
                # Selector (un)registration raced a dying fd; anything
                # else propagates to _run's survival guard above.
                _swallow("selector-op", exc)
        for key in list(self._selector.get_map().values()):
            conn = key.data
            if conn is None:
                continue
            conn.flush()
            want = selectors.EVENT_READ
            if conn.wants_write():
                want |= selectors.EVENT_WRITE
            if key.events != want:
                try:
                    self._selector.modify(key.fileobj, want, conn)
                except (KeyError, ValueError, OSError):
                    pass
        for key, events in self._selector.select(timeout=1.0):
            conn = key.data
            if conn is None:
                try:
                    while self._wake_recv.recv(4096):
                        pass
                except (BlockingIOError, InterruptedError, OSError):
                    pass
                continue
            if events & selectors.EVENT_WRITE:
                conn.flush()
            if events & selectors.EVENT_READ:
                conn.on_readable()


class _MuxConnection:
    """One multiplexed peer: outbox, reassembly buffer, pending futures.

    The wire-facing half (``flush``/``on_readable``) runs on the
    dispatch loop; the protocol half (:meth:`receive_bytes`,
    :meth:`_deliver`, :meth:`connection_lost`) is pure byte-stream
    logic, so the multiplexer's routing invariants are directly
    property-testable without sockets (``sock=None, loop=None``).
    """

    def __init__(self, sock: socket.socket | None, label: str = "?",
                 loop: DispatchLoop | None = None):
        self.sock = sock
        self.label = label
        self._loop = loop
        self._lock = threading.Lock()
        self._outbox = bytearray()
        self._rx = bytearray()
        # Preallocated receive window: ``recv_into`` here instead of a
        # fresh 1 MiB ``recv`` allocation per read.  Only the loop
        # thread touches it, and ``receive_bytes`` copies the filled
        # span into the reassembly buffer before the next read can
        # overwrite the window.
        self._recv_buf = bytearray(_RECV_CHUNK) if sock is not None else None
        self._pending: dict[int, Future] = {}
        self._ids = itertools.count(1)
        self._dead: Exception | None = None
        self.requests = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        if sock is not None:
            sock.setblocking(False)
        if loop is not None:
            loop.attach(self)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._dead is not None

    # -- caller side ----------------------------------------------------------

    def request(self, message: RpcMessage) -> "PendingReply":
        """Queue one request frame; returns a handle for its reply."""
        with self._lock:
            if self._dead is not None:
                raise ConnectionLost(
                    f"channel to entity host {self.label} is closed: "
                    f"{self._dead}")
            correlation_id = next(self._ids)
            blob = encode_frame(message.kind, correlation_id, message.span,
                                message.payload)
            self._outbox += _LENGTH.pack(len(blob))
            self._outbox += blob
            future: Future = Future()
            self._pending[correlation_id] = future
            self.requests += 1
            self.bytes_sent += len(blob) + _LENGTH.size
        if self._loop is not None:
            self._loop.wake()
        return PendingReply(self, correlation_id, future, message.kind)

    def close(self) -> None:
        """Caller-initiated teardown (fails any in-flight requests)."""
        self.connection_lost(ConnectionLost(
            f"channel to entity host {self.label} was closed locally"))

    # -- loop side ------------------------------------------------------------

    def wants_write(self) -> bool:
        with self._lock:
            return bool(self._outbox) and self._dead is None

    def flush(self) -> None:
        """Write as much of the outbox as the socket accepts (loop thread)."""
        while True:
            with self._lock:
                if self._dead is not None or not self._outbox:
                    return
                chunk = bytes(self._outbox[:_SEND_CHUNK])
            try:
                sent = self.sock.send(chunk)
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                self.connection_lost(ConnectionLost(
                    f"connection to entity host {self.label} failed: {exc}"))
                return
            with self._lock:
                del self._outbox[:sent]

    def on_readable(self) -> None:
        """Drain the socket into the reassembly buffer (loop thread)."""
        window = self._recv_buf
        if window is None:
            window = self._recv_buf = bytearray(_RECV_CHUNK)
        view = memoryview(window)
        while True:
            try:
                received = self.sock.recv_into(window)
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                self.connection_lost(ConnectionLost(
                    f"connection to entity host {self.label} failed: {exc}"))
                return
            if not received:
                self.connection_lost(ConnectionLost(
                    f"entity host {self.label} closed the connection with "
                    f"{self.in_flight} request(s) in flight"))
                return
            try:
                self.receive_bytes(view[:received])
            except ProtocolError as exc:
                self.connection_lost(exc)
                return
            if received < _RECV_CHUNK:
                return

    # -- protocol logic (socket-free, property-tested) ------------------------

    def receive_bytes(self, data) -> None:
        """Feed received bytes (any bytes-like); delivers every completed
        frame.  Views into a reused receive window are safe: the span is
        appended (copied) into the reassembly buffer immediately, and
        completed frames are sliced out as immutable ``bytes`` before
        the zero-copy decoder ever sees them.

        Raises:
            ProtocolError: on a malformed length prefix or frame
                envelope, or an unsolicited correlation id — the caller
                must treat the stream as poisoned
                (:meth:`connection_lost`); partial trailing frames
                simply wait for more bytes.
        """
        self._rx += data
        while True:
            if len(self._rx) < _LENGTH.size:
                return
            (length,) = _LENGTH.unpack_from(self._rx, 0)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length {length} exceeds the wire cap")
            end = _LENGTH.size + length
            if len(self._rx) < end:
                return
            blob = bytes(self._rx[_LENGTH.size:end])
            del self._rx[:end]
            self.bytes_received += end
            self._deliver(blob)

    def _deliver(self, blob: bytes) -> None:
        """Route one reply frame to the future holding its correlation id."""
        if len(blob) < _FRAME_HEADER.size:
            raise ProtocolError("wire frame too short for its envelope")
        magic, _version, correlation_id, _lo, _hi = _FRAME_HEADER.unpack_from(
            blob, 0)
        if magic != FRAME_MAGIC:
            raise ProtocolError(f"bad frame magic byte 0x{magic:02x}")
        with self._lock:
            if correlation_id == 0:
                # The host could not decode a request, so it never
                # learned our correlation id.  The host serves a
                # connection strictly in order, so this reply belongs
                # to the oldest in-flight request.
                correlation_id = min(self._pending, default=0)
            future = self._pending.pop(correlation_id, None)
        if future is None:
            raise ProtocolError(
                f"unsolicited correlation id {correlation_id} from "
                f"entity host {self.label}")
        future.set_result(blob)

    def connection_lost(self, exc: Exception) -> None:
        """Poison the connection: fail every in-flight request with ``exc``.

        Idempotent; safe from any thread.  After a loss nothing can be
        mis-delivered — the pending map is cleared atomically and later
        frames have nowhere to land.
        """
        with self._lock:
            if self._dead is not None:
                return
            self._dead = exc
            pending = list(self._pending.values())
            self._pending.clear()
            self._outbox.clear()
        for future in pending:
            try:
                future.set_exception(exc)
            except InvalidStateError:
                pass  # completed concurrently by a late delivery
        if self._loop is not None:
            self._loop.detach(self)
            self._loop.wake()
        elif self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass

    @property
    def stats(self) -> dict:
        return {"requests": self.requests, "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received}


class PendingReply:
    """Handle for one pipelined request's eventual reply."""

    def __init__(self, conn: _MuxConnection, correlation_id: int,
                 future: Future, kind: str):
        self._conn = conn
        self._correlation_id = correlation_id
        self._future = future
        self._kind = kind

    def result(self, timeout: float | None = None) -> RpcMessage:
        """Block for the reply; decodes and error-maps on this thread.

        Raises the rebuilt remote exception for ``__error__`` replies
        and :class:`ConnectionLost` when the transport died (or the
        ``timeout`` elapsed — which also poisons the connection: after
        a timeout the reply stream can no longer be trusted to line up
        with the pending ids).
        """
        try:
            blob = self._future.result(timeout)
        except FutureTimeout:
            lost = ConnectionLost(
                f"request {self._kind!r} to entity host {self._conn.label} "
                f"timed out after {timeout:.1f}s")
            self._conn.connection_lost(lost)
            raise lost from None
        except ConnectionLost as exc:
            raise ConnectionLost(
                f"{exc} (while waiting for {self._kind!r})") from exc
        frame = decode_frame(blob)
        # Error replies surface before the correlation check: the real
        # diagnostic beats a mismatch report (mirrors _StreamChannel).
        if frame.kind == ERROR:
            raise _remote_exception(frame.payload)
        if frame.correlation_id != self._correlation_id:
            raise ProtocolError(
                f"correlation mismatch: sent {self._correlation_id}, got "
                f"{frame.correlation_id}")
        if frame.kind != RESULT:
            raise ProtocolError(f"unexpected reply kind {frame.kind!r}")
        return RpcMessage(frame.kind, frame.payload, frame.correlation_id,
                          frame.span)


def _connect_retry(host: str, port: int, timeout: float) -> socket.socket:
    """Connect with the boot-retry loop every TCP channel shares.

    Retries with exponential backoff and full jitter (capped) so N
    channels booting against the same slow host spread their attempts
    instead of hammering it in lockstep.
    """
    deadline = time.monotonic() + timeout
    delay = _CONNECT_BACKOFF_BASE
    last_error: Exception | None = None
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            # The connect timeout must not persist: request pacing is
            # the dispatch layer's job (PendingReply.result), not the
            # kernel's.
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last_error = exc
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            time.sleep(min(random.uniform(0, delay), remaining))
            delay = min(delay * 2, _CONNECT_BACKOFF_CAP)
    raise ProtocolError(
        f"cannot reach entity host at {host}:{port}: {last_error}")


class SocketChannel(Channel):
    """Channel to one ``repro-entity-host`` over TCP, on the dispatch loop.

    Keeps the blocking :meth:`send` contract of the PR 4 channel (and
    its error semantics — :class:`ConnectionLost` *is* a
    ``ProtocolError``), but requests pipeline: :meth:`send_async`
    returns a :class:`PendingReply` immediately, and :meth:`scatter`
    issues a whole span decomposition before collecting any reply.
    """

    def __init__(self, conn: _MuxConnection, address: tuple[str, int],
                 request_timeout: float | None = None,
                 probe_timeout: float | None = PROBE_TIMEOUT):
        self._conn = conn
        self.address = address
        self.request_timeout = request_timeout
        self.probe_timeout = probe_timeout
        #: State-establishing frames, in send order, for warm re-seed of
        #: a supervisor-respawned host (see :meth:`rejoin`).
        self.journal: list[RpcMessage] = []

    @classmethod
    def connect(cls, host: str, port: int, timeout: float = 10.0,
                request_timeout: float | None = None,
                probe_timeout: float | None = PROBE_TIMEOUT,
                ) -> "SocketChannel":
        """Connect, retrying until ``timeout`` (hosts may still be booting)."""
        sock = _connect_retry(host, port, timeout)
        conn = _MuxConnection(sock, f"{host}:{port}", DispatchLoop.shared())
        return cls(conn, (host, port), request_timeout, probe_timeout)

    @property
    def fan_out(self) -> int:
        return 1

    @property
    def closed(self) -> bool:
        return self._conn.closed

    def send(self, message: RpcMessage) -> RpcMessage:
        timeout = self.request_timeout
        if message.kind in LIFECYCLE_KINDS:
            timeout = _lifecycle_timeout(self.request_timeout,
                                         self.probe_timeout)
        return self.send_async(message).result(timeout)

    def send_async(self, message: RpcMessage) -> PendingReply:
        """Pipeline one request; returns immediately.

        Journaled kinds compact: a frame superseded by this one (same
        :func:`_journal_key`) is dropped, keeping the journal bounded
        by the number of *distinct* stored columns rather than the
        total number of outsourcing rounds.
        """
        if message.kind in JOURNAL_KINDS:
            key = _journal_key(message)
            if key is not None:
                for index, old in enumerate(self.journal):
                    if _journal_key(old) == key:
                        del self.journal[index]
                        break
            self.journal.append(message)
        return self._conn.request(message)

    def scatter(self, messages) -> list[RpcMessage]:
        """Issue every request before collecting any reply (pipelined)."""
        pendings = [self._conn.request(message) for message in messages]
        return [pending.result(self.request_timeout) for pending in pendings]

    def shutdown_remote(self) -> None:
        """Ask the remote host process to exit, then close the channel."""
        try:
            self.send(RpcMessage(SHUTDOWN))
        except (ProtocolError, OSError):
            pass
        self.close()

    def close(self) -> None:
        if not self._conn.closed:
            self._conn.close()

    def rejoin(self, slot: int = 0, address: tuple[str, int] | None = None,
               warm_from: int = 0,
               connect_timeout: float = PROBE_CONNECT_TIMEOUT) -> None:
        """Reconnect to a (respawned) host, replaying the journal.

        A pool-of-one role has exactly one seat, so ``slot`` is
        ignored; the interface matches :meth:`PooledChannel.rejoin` so
        a supervisor heals both channel shapes uniformly.
        """
        host, port = address if address is not None else self.address
        sock = _connect_retry(host, int(port), connect_timeout)
        conn = _MuxConnection(sock, f"{host}:{port}", DispatchLoop.shared())
        try:
            _replay_journal(conn, self.journal[warm_from:],
                            self.request_timeout)
            conn.request(RpcMessage(PING)).result(
                _lifecycle_timeout(self.request_timeout, self.probe_timeout))
        except BaseException:
            conn.close()
            raise
        old, self._conn = self._conn, conn
        self.address = (host, int(port))
        if not old.closed:
            old.close()

    def health(self) -> dict:
        return {
            "status": "down" if self._conn.closed else "ok",
            "members_up": 0 if self._conn.closed else 1,
            "members_ejected": 1 if self._conn.closed else 0,
            "members": [{"address": self._conn.label,
                         "state": "down" if self._conn.closed else "up"}],
        }

    @property
    def stats(self) -> dict:
        return self._conn.stats


class _PoolMember:
    """One seat in a host pool: a connection plus its failover state.

    The *seat* survives the connection: when a member dies its seat is
    ejected (circuit breaker opens) and later re-bound to a fresh
    connection by a half-open probe or a supervisor respawn — retired
    connections' traffic counters are accumulated so :attr:`stats`
    stay monotonic across reconnects.
    """

    def __init__(self, slot: int, address: tuple[str, int],
                 conn: _MuxConnection):
        self.slot = slot
        self.address = address
        self.conn = conn
        #: Sequence id of the newest journaled frame this member's host
        #: has applied (``PooledChannel._journal_seqs``).  Ids are
        #: stable across journal compaction — a positional index would
        #: shift every time a superseded frame is dropped — so a warm
        #: rejoin replays exactly the surviving frames past this mark.
        self.journal_applied = 0
        self.ejected_at: float | None = None
        self.probe_at = 0.0
        self.backoff = EJECT_BACKOFF_BASE
        self.probing = False
        self.failures = 0
        self.reconnects = 0
        self._retired = {"requests": 0, "bytes_sent": 0, "bytes_received": 0}

    @property
    def label(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"

    @property
    def up(self) -> bool:
        return self.ejected_at is None and not self.conn.closed

    def replace_conn(self, conn: _MuxConnection,
                     address: tuple[str, int] | None = None
                     ) -> _MuxConnection:
        old = self.conn
        for key in self._retired:
            self._retired[key] += old.stats[key]
        self.conn = conn
        if address is not None:
            self.address = (address[0], int(address[1]))
        self.reconnects += 1
        return old

    @property
    def stats(self) -> dict:
        live = self.conn.stats
        return {
            "requests": live["requests"] + self._retired["requests"],
            "bytes_sent": live["bytes_sent"] + self._retired["bytes_sent"],
            "bytes_received": (live["bytes_received"]
                               + self._retired["bytes_received"]),
            "address": self.label,
            "state": "up" if self.up else "ejected",
            "failures": self.failures,
            "reconnects": self.reconnects,
        }


class PooledChannel(Channel):
    """One server role served by a pool of replicated entity hosts.

    Every member holds identical state: :data:`BROADCAST_KINDS`
    (construction, outsourced shares, lifecycle) reach all members, so
    any member can answer any read — whole-sweep requests route to the
    least-loaded connection, and :meth:`scatter` spreads a span
    decomposition across the pool round-robin, all members computing
    their spans concurrently.

    Because replicas are identical and reads/span sweeps are
    idempotent, a member dying mid-request is *not* a query failure: the
    lost frame is retransmitted to a surviving member (bit-identical
    result), the dead seat is ejected behind a circuit breaker, and
    half-open probes (or a :class:`~repro.network.supervisor.HostSupervisor`
    respawn calling :meth:`rejoin`) replay the journaled state
    broadcasts so the seat re-enters rotation warm.  Only when *no*
    live member remains does a typed
    :class:`~repro.exceptions.QueryError` surface.
    """

    def __init__(self, members: list[_MuxConnection],
                 request_timeout: float | None = None,
                 probe_timeout: float | None = PROBE_TIMEOUT):
        if not members:
            raise ProtocolError("a host pool needs at least one member")
        self._members = [
            _PoolMember(slot, _parse_address(conn.label), conn)
            for slot, conn in enumerate(members)]
        self.request_timeout = request_timeout
        self.probe_timeout = probe_timeout
        #: State-establishing frames in send order (see JOURNAL_KINDS),
        #: compacted: a ``receive_shares`` superseded by a later one for
        #: the same column is dropped (:meth:`_journal_append`).
        self.journal: list[RpcMessage] = []
        #: Strictly-increasing sequence id per surviving journal frame
        #: (parallel to :attr:`journal`); rejoin bookkeeping uses these
        #: because compaction shifts positions but never reorders.
        self._journal_seqs: list[int] = []
        self._journal_next_seq = 1
        self._journal_compacted = 0
        #: Optional ``callable(event, member_label)`` observability hook
        #: fired on "eject" / "rejoin" / "failover" transitions.
        self.on_event = None
        #: Chaos seam: ``callable(member, message)`` consulted before
        #: every unicast issue; may raise :class:`ConnectionLost` or
        #: kill the member's process (tests/chaos.py).
        self.fault_injector = None
        self._rotation = itertools.count()
        self._scattered = 0
        self._failovers = 0
        self._retransmits = 0
        self._ejections = 0
        self._rejoins = 0
        self._closed = False
        self._lock = threading.Lock()

    @classmethod
    def connect(cls, addresses, timeout: float = 10.0,
                request_timeout: float | None = None,
                probe_timeout: float | None = PROBE_TIMEOUT,
                ) -> "PooledChannel":
        loop = DispatchLoop.shared()
        members: list[_MuxConnection] = []
        try:
            for host, port in addresses:
                sock = _connect_retry(host, int(port), timeout)
                members.append(_MuxConnection(sock, f"{host}:{port}", loop))
        except BaseException:
            for member in members:
                member.close()
            raise
        return cls(members, request_timeout, probe_timeout)

    @property
    def fan_out(self) -> int:
        return len(self._members)

    @property
    def addresses(self) -> list[str]:
        return [member.label for member in self._members]

    @property
    def closed(self) -> bool:
        return self._closed

    # -- member liveness ------------------------------------------------------

    def _emit(self, event: str, member: _PoolMember) -> None:
        hook = self.on_event
        if hook is not None:
            try:
                hook(event, member.label)
            except Exception as exc:  # noqa: BLE001 - hook is user code
                # Observability must never fail a query — but what the
                # hook raised is itself worth observing.
                _swallow("pool-event-hook", exc)

    def _eject(self, member: _PoolMember, exc: Exception) -> None:
        """Open the circuit breaker on a dead seat (idempotent)."""
        first = False
        with self._lock:
            if member.ejected_at is None:
                member.ejected_at = time.monotonic()
                self._ejections += 1
                first = True
            member.failures += 1
            member.probe_at = time.monotonic() + member.backoff
            member.backoff = min(member.backoff * 2, EJECT_BACKOFF_CAP)
        if not member.conn.closed:
            member.conn.connection_lost(exc)
        if first:
            self._emit("eject", member)

    def _live(self) -> list[_PoolMember]:
        """Non-ejected members, lazily ejecting seats whose conn died."""
        for member in self._members:
            if member.ejected_at is None and member.conn.closed:
                self._eject(member, ConnectionLost(
                    f"connection to pool member {member.label} was lost"))
        return [m for m in self._members if m.ejected_at is None]

    def _pick(self) -> _PoolMember | None:
        live = self._live()
        if not live:
            return None
        # Least-loaded member; the rotating tiebreak spreads an idle
        # pool's traffic instead of pinning it to member 0.
        start = next(self._rotation) % len(live)
        ordered = live[start:] + live[:start]
        return min(ordered, key=lambda member: member.conn.in_flight)

    def _pick_live(self, last_error) -> _PoolMember:
        """A live member, resurrecting ejected seats before giving up.

        Degrading "to any pool size ≥ 1" means an exhausted pool tries
        every ejected seat immediately (ignoring breaker timers) before
        surfacing the failure.
        """
        member = self._pick()
        if member is not None:
            return member
        for seat in sorted((m for m in self._members
                            if m.ejected_at is not None),
                           key=lambda m: m.probe_at):
            if self._try_rejoin(seat):
                return seat
        raise QueryError(
            "server pool member failover exhausted: no live replica "
            f"remains in pool [{', '.join(self.addresses)}] "
            f"(last error: {last_error})")

    def _maybe_probe(self) -> None:
        """Half-open probe: give at most one due ejected seat a chance."""
        if self._closed:
            return
        now = time.monotonic()
        for member in self._members:
            with self._lock:
                due = (member.ejected_at is not None and not member.probing
                       and now >= member.probe_at)
                if due:
                    member.probing = True
            if due:
                try:
                    self._try_rejoin(member)
                finally:
                    member.probing = False
                return

    def _try_rejoin(self, member: _PoolMember) -> bool:
        try:
            self.rejoin(member.slot, warm_from=member.journal_applied,
                        connect_timeout=PROBE_CONNECT_TIMEOUT)
            return True
        except (ProtocolError, QueryError, OSError) as exc:
            _swallow("rejoin-probe", exc)
            with self._lock:
                member.probe_at = time.monotonic() + member.backoff
                member.backoff = min(member.backoff * 2, EJECT_BACKOFF_CAP)
            return False

    def rejoin(self, slot: int, address: tuple[str, int] | None = None,
               warm_from: int = 0,
               connect_timeout: float = PROBE_CONNECT_TIMEOUT) -> None:
        """Re-bind seat ``slot`` to a live host and return it to rotation.

        Called by half-open probes (same address, host survived or was
        externally restarted on its port) and by the supervisor after a
        respawn (new ``address``, fresh process, ``warm_from=0``).
        ``warm_from`` is a journal *sequence id* (``0`` = replay
        everything): the surviving journaled broadcasts past it are
        replayed and a ping verified before the seat is swapped in; if
        broadcasts land concurrently the replay loops until the journal
        is caught up.
        """
        member = self._members[slot]
        host, port = address if address is not None else member.address
        sock = _connect_retry(host, int(port), connect_timeout)
        conn = _MuxConnection(sock, f"{host}:{port}", DispatchLoop.shared())
        try:
            applied_seq = int(warm_from)
            while True:
                with self._lock:
                    start = bisect.bisect_right(self._journal_seqs,
                                                applied_seq)
                    missing = self.journal[start:]
                    newest_seq = (self._journal_seqs[-1]
                                  if self._journal_seqs else 0)
                if missing:
                    _replay_journal(conn, missing, self.request_timeout)
                    applied_seq = newest_seq
                    continue
                conn.request(RpcMessage(PING)).result(_lifecycle_timeout(
                    self.request_timeout, self.probe_timeout))
                with self._lock:
                    if (self._journal_seqs
                            and self._journal_seqs[-1] > applied_seq):
                        continue  # a broadcast raced the ping; catch up
                    old = member.replace_conn(conn, (host, int(port)))
                    member.journal_applied = applied_seq
                    member.ejected_at = None
                    member.backoff = EJECT_BACKOFF_BASE
                    self._rejoins += 1
                break
        except BaseException:
            conn.close()
            raise
        if not old.closed:
            old.close()
        self._emit("rejoin", member)

    # -- request routing ------------------------------------------------------

    def _timeout_for(self, kind: str) -> float | None:
        if kind in LIFECYCLE_KINDS:
            return _lifecycle_timeout(self.request_timeout,
                                      self.probe_timeout)
        return self.request_timeout

    def _request(self, member: _PoolMember,
                 message: RpcMessage) -> PendingReply:
        injector = self.fault_injector
        if injector is not None:
            injector(member, message)
        return member.conn.request(message)

    def _finish(self, pending: PendingReply, kind: str) -> RpcMessage:
        return pending.result(self._timeout_for(kind))

    def _count_failover(self, member: _PoolMember,
                        retransmit: bool = False) -> None:
        with self._lock:
            self._failovers += 1
            if retransmit:
                self._retransmits += 1
        self._emit("failover", member)

    def send(self, message: RpcMessage) -> RpcMessage:
        self._maybe_probe()
        if message.kind in BROADCAST_KINDS:
            return self._broadcast(message)
        last_error: Exception | None = None
        while True:
            member = self._pick_live(last_error)
            try:
                pending = self._request(member, message)
                return self._finish(pending, message.kind)
            except ConnectionLost as exc:
                # Reads are idempotent across identical replicas:
                # eject the dead seat and fail over to a survivor.
                last_error = exc
                self._eject(member, exc)
                self._count_failover(member)

    def scatter(self, messages) -> list[RpcMessage]:
        """Fan span frames across the pool; replies in request order.

        A member dying mid-sweep retransmits its spans to survivors —
        spans are idempotent reads, so the collected sweep stays
        bit-identical.
        """
        self._maybe_probe()
        entries = [(message, *self._issue(message)) for message in messages]
        with self._lock:
            self._scattered += len(entries)
        return [self._collect(message, member, pending)
                for message, member, pending in entries]

    def _issue(self, message: RpcMessage) -> tuple[_PoolMember, PendingReply]:
        last_error: Exception | None = None
        while True:
            member = self._pick_live(last_error)
            try:
                return member, self._request(member, message)
            except ConnectionLost as exc:
                last_error = exc
                self._eject(member, exc)
                self._count_failover(member)

    def _collect(self, message: RpcMessage, member: _PoolMember,
                 pending: PendingReply) -> RpcMessage:
        while True:
            try:
                return self._finish(pending, message.kind)
            except ConnectionLost as exc:
                self._eject(member, exc)
                self._count_failover(member, retransmit=True)
                member, pending = self._issue(message)

    def _journal_append(self, message: RpcMessage) -> int:
        """Journal one frame (caller holds ``self._lock``); returns its seq.

        Compacts first: if an earlier frame carries the same
        :func:`_journal_key`, it is superseded and dropped.  Member
        ``journal_applied`` marks are sequence ids, not positions, so
        the deletion needs no per-member rebasing — the ids of the
        surviving frames are untouched.
        """
        key = _journal_key(message)
        if key is not None:
            for index, old in enumerate(self.journal):
                if _journal_key(old) == key:
                    del self.journal[index]
                    del self._journal_seqs[index]
                    self._journal_compacted += 1
                    break
        seq = self._journal_next_seq
        self._journal_next_seq += 1
        self.journal.append(message)
        self._journal_seqs.append(seq)
        return seq

    def _broadcast(self, message: RpcMessage) -> RpcMessage:
        """Deliver a state change to every live member (journaling it)."""
        journal_seq = None
        if message.kind in JOURNAL_KINDS:
            with self._lock:
                journal_seq = self._journal_append(message)
        live = self._live()
        if not live:
            self._pick_live(None)  # resurrect an ejected seat or raise
            live = self._live()
        pendings = []
        for member in live:
            try:
                pendings.append((member, self._request(member, message)))
            except ConnectionLost as exc:
                self._eject(member, exc)
        reply = None
        remote_error: Exception | None = None
        for member, pending in pendings:
            try:
                result = self._finish(pending, message.kind)
            except ConnectionLost as exc:
                self._eject(member, exc)
                continue
            except Exception as exc:  # typed remote error — keep first
                if remote_error is None:
                    remote_error = exc
                continue
            if journal_seq is not None:
                member.journal_applied = max(member.journal_applied,
                                             journal_seq)
            if reply is None:
                reply = result
        if remote_error is not None:
            raise remote_error
        if reply is None:
            raise QueryError(
                f"server pool member broadcast {message.kind!r} reached "
                f"no live member of pool [{', '.join(self.addresses)}]")
        return reply

    def shutdown_remote(self) -> None:
        try:
            self.send(RpcMessage(SHUTDOWN))
        except (ProtocolError, QueryError, OSError):
            pass
        self.close()

    def close(self) -> None:
        self._closed = True
        for member in self._members:
            if not member.conn.closed:
                member.conn.close()

    def health(self) -> dict:
        """Pool liveness snapshot: ``ok`` / ``degraded`` / ``down``."""
        members = []
        up = 0
        for member in self._members:
            state = "up" if member.up else "ejected"
            up += state == "up"
            members.append({"address": member.label, "state": state,
                            "failures": member.failures,
                            "reconnects": member.reconnects})
        ejected = len(members) - up
        if ejected == 0:
            status = "ok"
        elif up:
            status = "degraded"
        else:
            status = "down"
        with self._lock:
            return {
                "status": status,
                "members_up": up,
                "members_ejected": ejected,
                "members": members,
                "failovers": self._failovers,
                "retransmits": self._retransmits,
                "ejections": self._ejections,
                "rejoins": self._rejoins,
            }

    @property
    def stats(self) -> dict:
        members = [member.stats for member in self._members]
        with self._lock:
            return {
                "requests": sum(s["requests"] for s in members),
                "bytes_sent": sum(s["bytes_sent"] for s in members),
                "bytes_received": sum(s["bytes_received"] for s in members),
                "fan_out": len(members),
                "scattered_frames": self._scattered,
                "failovers": self._failovers,
                "retransmits": self._retransmits,
                "ejections": self._ejections,
                "rejoins": self._rejoins,
                "journal_frames": len(self.journal),
                "journal_compacted": self._journal_compacted,
                "members": members,
            }


# -- overlapped role dispatch -------------------------------------------------

_OVERLAP_POOL = None
_OVERLAP_LOCK = threading.Lock()


def overlap(thunks) -> list:
    """Run per-server sweep thunks concurrently; results in order.

    Used by the batch engine when every server is remote: the three
    roles' fused sweeps block on socket I/O, so a small shared thread
    pool overlaps them (the hosts compute in their own processes).  The
    first exception propagates after all thunks have settled — a failed
    member never leaves a sibling thunk running into torn state.
    """
    thunks = list(thunks)
    if len(thunks) <= 1:
        return [thunk() for thunk in thunks]
    global _OVERLAP_POOL
    with _OVERLAP_LOCK:
        if _OVERLAP_POOL is None:
            from concurrent.futures import ThreadPoolExecutor
            _OVERLAP_POOL = ThreadPoolExecutor(
                max_workers=8, thread_name_prefix="repro-overlap")
        pool = _OVERLAP_POOL
    futures = [pool.submit(thunk) for thunk in thunks]
    results, first_error = [], None
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if first_error is None:
                first_error = exc
            results.append(None)
    if first_error is not None:
        raise first_error
    return results
