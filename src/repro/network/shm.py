"""Shared-memory frame arenas for same-host deployments.

A ``subprocess`` deployment forks its entity hosts, yet every share
vector still rode the socketpair: ``encode`` copied the array into the
frame, the kernel copied the frame twice, and decode copied it back
out — four traversals of data that parent and child could simply
share.  A :class:`ShmArena` is an anonymous ``MAP_SHARED`` mmap created
*before* the fork, so both processes see the same pages: large int64
payloads are written straight into the arena (one copy in) and the
socket frame carries a 24-byte ``(offset, shape)`` reference
(:data:`repro.network.codec._TAG_VECTOR_SHM`); the decoder copies the
span back out of the arena (one copy out).  Two copies and a
constant-size socket frame instead of four copies and a
vector-sized one.

Safety model — the arena is a *per-frame scratch*, not a data
structure:

* Each direction of a channel owns one arena (parent→child requests,
  child→parent replies), and the stream protocol is strictly serial:
  one in-flight request per channel, the reply proving the request
  frame was fully decoded.  The writer therefore resets its arena
  immediately before encoding each frame — nothing the reader still
  needs can be overwritten.
* The decoder always copies out (:meth:`ShmArena.read_array`); no numpy
  view into the shared pages ever escapes a decode, so a later reset
  cannot corrupt retained state.
* A frame whose payload outgrows the arena falls back to the inline
  wire tags transparently — correctness never depends on arena size.
"""

from __future__ import annotations

import mmap

import numpy as np

from repro.exceptions import ProtocolError

#: Default arena size per direction: comfortably holds the fused batch
#: matrices of a 1M-row χ sweep while staying cheap to mmap (pages are
#: allocated lazily by the kernel, not up front).
DEFAULT_ARENA_BYTES = 64 << 20


class ShmArena:
    """Anonymous shared-memory bump allocator for wire payloads.

    Created before ``fork`` so the pages are shared with the child.
    ``alloc``/``write_array`` bump an offset that resets per frame; see
    the module docstring for the (serial-protocol) safety argument.
    """

    def __init__(self, size: int = DEFAULT_ARENA_BYTES):
        self.size = int(size)
        self._mm = mmap.mmap(-1, self.size)  # anonymous + MAP_SHARED
        self._offset = 0
        self._closed = False

    def reset(self) -> None:
        """Start a new frame: every prior allocation is fair game."""
        self._offset = 0

    def alloc(self, nbytes: int) -> int | None:
        """Reserve ``nbytes`` (8-byte aligned); ``None`` when full."""
        start = (self._offset + 7) & ~7
        if start + nbytes > self.size:
            return None
        self._offset = start + nbytes
        return start

    def write_array(self, values: np.ndarray) -> int | None:
        """Copy a contiguous int64 array in; returns its offset or ``None``.

        The single copy-in: the array's buffer lands directly in the
        shared pages (no intermediate ``tobytes`` allocation).
        """
        if self._closed:
            return None
        nbytes = values.nbytes
        offset = self.alloc(nbytes)
        if offset is None:
            return None
        self._mm[offset:offset + nbytes] = memoryview(values).cast("B")
        return offset

    def read_array(self, offset: int, count: int) -> np.ndarray:
        """Copy ``count`` int64s out (the arena is per-frame scratch).

        Raises:
            ProtocolError: when the reference leaves the arena — a
                corrupt or adversarial frame, never a caller bug.
        """
        end = offset + 8 * count
        if offset < 0 or end > self.size:
            raise ProtocolError(
                f"shared-memory reference [{offset}, {end}) leaves the "
                f"{self.size}-byte arena")
        out = np.frombuffer(self._mm, dtype=np.int64, count=count,
                            offset=offset)
        return out.copy()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._mm.close()

    def __del__(self):  # pragma: no cover - GC ordering dependent
        try:
            self.close()
        except (BufferError, ValueError):
            pass
