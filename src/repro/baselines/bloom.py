"""Bloom-filter PSI baseline [47].

Each owner inserts its elements into a Bloom filter with common
parameters; the filters are AND-ed bitwise and elements of the querier's
set are tested against the combined filter.  Fast and multi-owner-friendly
but (a) leaks filter contents to whoever combines them and (b) admits
false positives — the trade-offs Prism avoids.  Serves as the
"fast-but-leaky" comparison point alongside the plaintext baseline.
"""

from __future__ import annotations

import math

import numpy as np

from repro.crypto.hashing import stable_hash
from repro.exceptions import ParameterError


class BloomFilter:
    """A fixed-size Bloom filter over hashable values.

    Args:
        num_bits: filter size ``m_bits``.
        num_hashes: number of hash functions ``k``.
        seed: base seed; hash function ``i`` uses ``seed + i``.
    """

    def __init__(self, num_bits: int, num_hashes: int, seed: int = 0):
        if num_bits < 8:
            raise ParameterError("filter too small")
        if num_hashes < 1:
            raise ParameterError("need at least one hash function")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.seed = seed
        self.bits = np.zeros(num_bits, dtype=bool)

    @classmethod
    def for_capacity(cls, capacity: int, false_positive_rate: float = 1e-6,
                     seed: int = 0) -> "BloomFilter":
        """Size a filter for ``capacity`` elements at a target FP rate."""
        if not 0 < false_positive_rate < 1:
            raise ParameterError("false-positive rate must lie in (0, 1)")
        capacity = max(1, capacity)
        num_bits = max(8, int(-capacity * math.log(false_positive_rate)
                              / (math.log(2) ** 2)))
        num_hashes = max(1, round(num_bits / capacity * math.log(2)))
        return cls(num_bits, num_hashes, seed)

    def _positions(self, value) -> list[int]:
        return [stable_hash(value, self.seed + i) % self.num_bits
                for i in range(self.num_hashes)]

    def add(self, value) -> None:
        for pos in self._positions(value):
            self.bits[pos] = True

    def add_all(self, values) -> None:
        for v in values:
            self.add(v)

    def __contains__(self, value) -> bool:
        return all(self.bits[pos] for pos in self._positions(value))

    def intersect_with(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise AND — the filter of the (approximate) intersection."""
        if (other.num_bits != self.num_bits
                or other.num_hashes != self.num_hashes
                or other.seed != self.seed):
            raise ParameterError("filters have incompatible parameters")
        out = BloomFilter(self.num_bits, self.num_hashes, self.seed)
        out.bits = self.bits & other.bits
        return out

    @property
    def fill_ratio(self) -> float:
        return float(np.count_nonzero(self.bits)) / self.num_bits


def bloom_psi(sets: list[list], false_positive_rate: float = 1e-6,
              seed: int = 0) -> set:
    """Multi-owner Bloom-filter PSI.

    Builds one filter per owner, ANDs them, and checks the first owner's
    elements against the combined filter.  May contain false positives at
    the configured rate.
    """
    if len(sets) < 2:
        raise ParameterError("need at least two sets")
    capacity = max(len(s) for s in sets)
    filters = []
    for s in sets:
        f = BloomFilter.for_capacity(capacity, false_positive_rate, seed)
        f.add_all(s)
        filters.append(f)
    combined = filters[0]
    for f in filters[1:]:
        combined = combined.intersect_with(f)
    return {x for x in sets[0] if x in combined}
