"""Freedman-style polynomial-evaluation PSI over Paillier [23, 39].

The classic homomorphic-encryption PSI that Table 13's slower comparison
rows descend from.  Two parties; the client holds set ``X``, the server
set ``Y``:

1. Client builds ``P(t) = Π_{x in X} (t - x)`` (roots are its elements),
   encrypts the coefficients under its Paillier key and sends them.
2. For each ``y in Y``, the server homomorphically evaluates
   ``Enc(r_y * P(y) + y)`` with fresh random ``r_y`` (Horner on
   ciphertexts) and returns the ciphertexts, shuffled.
3. Client decrypts; values that land in ``X`` are intersection members
   (when ``P(y) = 0`` the mask vanishes), everything else is random.

Multi-owner extension (how the generalisation cost blows up, §1): run the
two-party protocol pairwise against a designated leader and intersect the
results — ``m - 1`` full protocol runs, each quadratic-ish work, which is
exactly the overhead Prism's one-round design removes.

Complexity: O(|X| * |Y|) homomorphic operations per pair; every one is a
big-int exponentiation.  This is the honest reason the baseline only runs
at small ``n`` in the comparison bench — matching the paper's report that
such systems handle ≤ 1M elements in hours.
"""

from __future__ import annotations

import random

from repro.baselines.paillier import generate_keypair
from repro.exceptions import ParameterError


def polynomial_from_roots(roots: list[int], modulus: int) -> list[int]:
    """Coefficients (low to high) of ``Π (t - root)`` over ``Z_modulus``."""
    coeffs = [1]
    for root in roots:
        nxt = [0] * (len(coeffs) + 1)
        for i, c in enumerate(coeffs):
            nxt[i + 1] = (nxt[i + 1] + c) % modulus
            nxt[i] = (nxt[i] - c * root) % modulus
        coeffs = nxt
    return coeffs


class FreedmanPSI:
    """Two-party Freedman PSI instance.

    Args:
        key_bits: Paillier modulus size (benchmark-grade default).
        seed: deterministic randomness for reproducible runs.
    """

    def __init__(self, key_bits: int = 128, seed: int = 0):
        self.public, self.private = generate_keypair(key_bits, seed)
        self._rng = random.Random(seed + 2)

    def client_encrypt_polynomial(self, client_set: list[int]) -> list[int]:
        """Step 1: encrypted coefficients of the client's root polynomial."""
        if not client_set:
            raise ParameterError("client set must be non-empty")
        coeffs = polynomial_from_roots(
            [x % self.public.n for x in client_set], self.public.n)
        return [self.public.encrypt(c) for c in coeffs]

    def server_evaluate(self, encrypted_coeffs: list[int],
                        server_set: list[int]) -> list[int]:
        """Step 2: ``Enc(r * P(y) + y)`` per server element, shuffled."""
        out = []
        for y in server_set:
            y = y % self.public.n
            # Horner on ciphertexts: acc = acc * y + coeff (all encrypted).
            acc = encrypted_coeffs[-1]
            for coeff in reversed(encrypted_coeffs[:-1]):
                acc = self.public.add(self.public.mul_plain(acc, y), coeff)
            r = self._rng.randrange(1, self.public.n)
            masked = self.public.mul_plain(acc, r)
            out.append(self.public.add_plain(masked, y))
        self._rng.shuffle(out)
        return out

    def client_decrypt(self, responses: list[int],
                       client_set: list[int]) -> set[int]:
        """Step 3: decrypt and keep values belonging to the client set."""
        mine = {x % self.public.n for x in client_set}
        hits = {self.private.decrypt(c) for c in responses}
        return {x for x in client_set if x % self.public.n in (hits & mine)}

    def intersect(self, client_set: list[int], server_set: list[int]) -> set[int]:
        """Full two-party run."""
        coeffs = self.client_encrypt_polynomial(client_set)
        responses = self.server_evaluate(coeffs, server_set)
        return self.client_decrypt(responses, client_set)


def multiparty_intersect(sets: list[list[int]], key_bits: int = 128,
                         seed: int = 0) -> set[int]:
    """Leader-based multi-owner extension: ``m - 1`` two-party runs.

    The first set's owner acts as client against every other owner and
    intersects the results — the naive (and costly) generalisation the
    paper contrasts Prism with.
    """
    if len(sets) < 2:
        raise ParameterError("need at least two sets")
    result = set(sets[0])
    for i, other in enumerate(sets[1:], start=1):
        psi = FreedmanPSI(key_bits=key_bits, seed=seed + i)
        result &= psi.intersect(sorted(result), other)
        if not result:
            break
    return result
