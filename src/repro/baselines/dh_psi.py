"""Diffie–Hellman-based PSI (the Meadows/ECDH-PSI family).

The classic commutative-encryption protocol behind cardinality papers
like [19] and deployed intersection-sum systems [34]:

1. Parties agree on a group where DDH is hard — here the order-``q``
   subgroup of ``Z_p^*`` for a safe prime ``p = 2q + 1`` — and a hash
   ``H`` into that subgroup.
2. A sends ``{H(x)^a}`` for its set; B raises each to ``b`` and returns
   ``{H(x)^(ab)}`` (shuffled), and also sends ``{H(y)^b}`` for its own
   set.
3. A raises B's points to ``a`` and intersects the two ``H(·)^(ab)``
   multisets: matches are common elements.

Two parties, two message flows, O(n) exponentiations per side — much
lighter than Freedman+Paillier but still ~big-int exponentiations per
element, and inherently pairwise (the multi-owner generalisation pays
``m − 1`` runs like the other two-party baselines).  It fills Table 13's
"fast custom two-party PSI" row between the HE family and Prism.
"""

from __future__ import annotations

import random

from repro.crypto.hashing import stable_hash
from repro.crypto.primes import is_prime
from repro.exceptions import ParameterError

#: A 64-bit safe prime p = 2q + 1 (q prime), benchmark-grade by default.
DEFAULT_SAFE_PRIME = 18_446_744_073_709_550_147


def _subgroup_hash(value, p: int, seed: int) -> int:
    """Hash into the order-q subgroup: ``(H(value) mod p)^2 mod p``.

    Squaring maps any non-zero residue into the quadratic-residue
    subgroup of order ``q = (p - 1) / 2``.
    """
    h = (stable_hash(value, seed) % (p - 2)) + 1  # non-zero residue
    return pow(h, 2, p)


class DHPsiParty:
    """One party of the DH-PSI protocol.

    Args:
        p: safe prime modulus (``(p-1)/2`` must be prime).
        seed: randomness for the private exponent and shuffles.
        hash_seed: common hash seed (both parties must agree).
    """

    def __init__(self, p: int = DEFAULT_SAFE_PRIME, seed: int = 0,
                 hash_seed: int = 7):
        q = (p - 1) // 2
        if not (is_prime(p) and is_prime(q)):
            raise ParameterError(f"{p} is not a safe prime")
        self.p = p
        self.q = q
        self.hash_seed = hash_seed
        self._rng = random.Random(seed)
        self._key = self._rng.randrange(2, q)

    def first_pass(self, values) -> list[int]:
        """``H(x)^key`` for each of this party's values."""
        return [pow(_subgroup_hash(v, self.p, self.hash_seed), self._key,
                    self.p) for v in values]

    def second_pass(self, points: list[int], shuffle: bool = False
                    ) -> list[int]:
        """Raise the peer's points to this party's key.

        ``shuffle=True`` is the cardinality-only variant (the peer can
        count matches but not map them back to its elements); plain PSI
        keeps the order so the peer can decode.
        """
        out = [pow(pt, self._key, self.p) for pt in points]
        if shuffle:
            self._rng.shuffle(out)
        return out


def dh_psi(set_a, set_b, seed: int = 0,
           p: int = DEFAULT_SAFE_PRIME) -> set:
    """Full two-party DH-PSI run; returns the intersection as A learns it.

    Args:
        set_a: party A's values (A learns the result).
        set_b: party B's values.
        seed: deterministic randomness for reproducible benches.
        p: safe-prime modulus.
    """
    set_a, set_b = list(set_a), list(set_b)
    if not set_a or not set_b:
        return set()
    alice = DHPsiParty(p, seed=seed)
    bob = DHPsiParty(p, seed=seed + 1)

    a_points = alice.first_pass(set_a)          # A -> B: H(x)^a
    a_doubled = bob.second_pass(a_points)       # B -> A: H(x)^(ab), in order
    b_points = bob.first_pass(set_b)            # B -> A: H(y)^b
    b_doubled = alice.second_pass(b_points)     # A computes H(y)^(ab)

    common_points = set(b_doubled)
    return {v for v, pt in zip(set_a, a_doubled) if pt in common_points}


def dh_multiparty(sets, seed: int = 0, p: int = DEFAULT_SAFE_PRIME) -> set:
    """Leader-based multi-owner extension: ``m - 1`` pairwise runs."""
    if len(sets) < 2:
        raise ParameterError("need at least two sets")
    result = set(sets[0])
    for i, other in enumerate(sets[1:], start=1):
        result &= dh_psi(sorted(result), other, seed=seed + i, p=p)
        if not result:
            break
    return result
