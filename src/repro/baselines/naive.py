"""Insecure plaintext baselines.

The lower bound of Table 13: hash-set intersection/union with zero
privacy.  Corresponds to the role [37] plays in the paper's comparison —
very fast, but it "reveals which item is in the intersection set" (and
here, everything else too).  Used by benches to anchor the cost of the
cryptography and by tests as the ground-truth oracle.
"""

from __future__ import annotations

from repro.exceptions import ParameterError


def plaintext_intersection(sets: list[list]) -> set:
    """m-way set intersection in the clear."""
    if len(sets) < 2:
        raise ParameterError("need at least two sets")
    out = set(sets[0])
    for s in sets[1:]:
        out &= set(s)
    return out


def plaintext_union(sets: list[list]) -> set:
    """m-way set union in the clear."""
    if len(sets) < 2:
        raise ParameterError("need at least two sets")
    out: set = set()
    for s in sets:
        out |= set(s)
    return out


def plaintext_psi_sum(relations, attribute: str, agg_attribute: str) -> dict:
    """Sum of ``agg_attribute`` per common ``attribute`` value, in the clear."""
    common = plaintext_intersection(
        [rel.distinct(attribute) for rel in relations])
    out = {v: 0 for v in common}
    for rel in relations:
        for k, v in zip(rel.column(attribute), rel.column(agg_attribute)):
            if k in out:
                out[k] += v
    return out
