"""Comparison baselines for Table 13: from-scratch implementations of the
competing approach families (homomorphic-encryption PSI, Bloom-filter PSI,
and the insecure plaintext lower bound)."""

from repro.baselines.bloom import BloomFilter, bloom_psi
from repro.baselines.dh_psi import DHPsiParty, dh_multiparty, dh_psi
from repro.baselines.freedman import (
    FreedmanPSI,
    multiparty_intersect,
    polynomial_from_roots,
)
from repro.baselines.naive import (
    plaintext_intersection,
    plaintext_psi_sum,
    plaintext_union,
)
from repro.baselines.paillier import (
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)

__all__ = [
    "BloomFilter",
    "DHPsiParty",
    "FreedmanPSI",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "bloom_psi",
    "dh_multiparty",
    "dh_psi",
    "generate_keypair",
    "multiparty_intersect",
    "plaintext_intersection",
    "plaintext_psi_sum",
    "plaintext_union",
    "polynomial_from_roots",
]
