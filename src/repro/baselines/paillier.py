"""Paillier additively-homomorphic cryptosystem, from scratch.

The substrate for the Freedman-style PSI baseline (Table 13's
"homomorphic-encryption PSI" family, [23, 39]).  Standard textbook
Paillier with the ``g = n + 1`` simplification:

* public key ``n = p * q``; ``Enc(m) = (1 + n)^m * r^n mod n^2``
* ``Dec(c) = L(c^lambda mod n^2) * mu mod n`` with ``L(x) = (x-1)/n``
* homomorphisms: ``Enc(a) * Enc(b) = Enc(a+b)``;
  ``Enc(a)^k = Enc(a*k)``.

Key sizes here are chosen for benchmarking honesty, not deployment: the
paper's point is that public-key-crypto PSI is orders of magnitude slower
than Prism's share arithmetic, which holds at any key size.
"""

from __future__ import annotations

import random

from repro.crypto.primes import modinv, random_prime
from repro.exceptions import ParameterError, ShareError


class PaillierPublicKey:
    """Public key: encrypt and operate on ciphertexts."""

    def __init__(self, n: int, rng: random.Random | None = None):
        if n < 6:
            raise ParameterError("modulus too small")
        self.n = n
        self.n_squared = n * n
        self._rng = rng or random.Random(n)

    def encrypt(self, message: int) -> int:
        """Encrypt ``message`` (reduced mod n) with fresh randomness."""
        m = message % self.n
        while True:
            r = self._rng.randrange(1, self.n)
            # r must be coprime with n; for n = p*q this fails with
            # negligible probability, but we check anyway.
            from math import gcd
            if gcd(r, self.n) == 1:
                break
        return (pow(1 + self.n, m, self.n_squared)
                * pow(r, self.n, self.n_squared)) % self.n_squared

    def add(self, c1: int, c2: int) -> int:
        """Ciphertext of the sum of the two plaintexts."""
        return (c1 * c2) % self.n_squared

    def add_plain(self, c: int, k: int) -> int:
        """Ciphertext of ``plaintext + k``."""
        return (c * pow(1 + self.n, k % self.n, self.n_squared)) % self.n_squared

    def mul_plain(self, c: int, k: int) -> int:
        """Ciphertext of ``plaintext * k``."""
        return pow(c, k % self.n, self.n_squared)


class PaillierPrivateKey:
    """Private key: decrypt."""

    def __init__(self, public: PaillierPublicKey, p: int, q: int):
        if p * q != public.n:
            raise ParameterError("p * q does not match the public modulus")
        self.public = public
        self._lambda = (p - 1) * (q - 1)
        self._mu = modinv(self._lambda, public.n)

    def decrypt(self, ciphertext: int) -> int:
        if not 0 < ciphertext < self.public.n_squared:
            raise ShareError("ciphertext out of range")
        n = self.public.n
        x = pow(ciphertext, self._lambda, self.public.n_squared)
        return (((x - 1) // n) * self._mu) % n


def generate_keypair(bits: int = 128, seed: int = 0
                     ) -> tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a Paillier keypair with an ``bits``-bit modulus.

    Args:
        bits: modulus size; benchmark-grade by default (128), raise to
            2048 for realistic cost ratios (everything gets slower by the
            same story the paper tells).
        seed: deterministic key generation for reproducible benches.
    """
    rng = random.Random(seed)
    half = bits // 2
    while True:
        p = random_prime(half, rng)
        q = random_prime(bits - half, rng)
        if p != q:
            break
    public = PaillierPublicKey(p * q, rng=random.Random(seed + 1))
    return public, PaillierPrivateKey(public, p, q)
