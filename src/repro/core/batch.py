"""Batched multi-query execution — the serving-engine path.

The per-query API (:meth:`~repro.core.system.PrismSystem.psi` and
friends) runs one full server sweep over the χ table per query.  Under
concurrent load that is wasteful twice over: every query pays the fixed
Python/numpy dispatch cost of its own sweep, and queries that touch the
same stored column redo identical work.  This module turns N heterogeneous
queries into a handful of *fused* sweeps:

1. :class:`BatchQuery` normalises one query request (kind, attribute,
   aggregation attributes, verification, owner subset, querier).
2. :class:`QueryBatch` plans the batch: every query is expanded into the
   kernel rows it needs, rows are deduplicated, and rows are grouped by
   **kernel family** — PSI/verification sweeps (Eq. 3 / Eq. 7), count
   sweeps (§6.5), PSU sweeps (Eq. 18), and aggregation sweeps (Eq. 11).
3. Each family executes as a *single* fused server call per owner group:
   the per-query share vectors are stacked into a 2-D matrix and the
   server makes one chunked, branch-free pass over the χ length
   (:meth:`~repro.entities.server.PrismServer.psi_round_batch` etc.), so
   access-pattern hiding is preserved — the servers' instruction sequence
   depends on the batch shape only, never on the data.
4. Owner-side finalisation reuses the exact per-query math of the
   sequential runners, so every result is bit-identical to what the
   sequential API returns for the same query.

Aggregation queries additionally route their Phase-2 indicator-share
generation through the initiator's
:class:`~repro.entities.initiator.IndicatorShareCache`, so repeated or
overlapping queries skip the Shamir dealing round entirely.

Extrema (max/min) and median queries are announcer-interactive — their
per-common-value rounds cannot be fused into a data-independent sweep —
and are therefore not batchable; submit them through the per-query API.

Caveats on result metadata: all results of one batch share a single
:class:`~repro.core.results.PhaseTimings` object (family sweeps are timed
once, not per query, and the data-fetch step is folded into server time),
and ``traffic`` summaries are cumulative transport counters exactly as in
the sequential API.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.aggregate import indicator_shares
from repro.core.psi import psi_column_name
from repro.core.query import QueryPlan, parse_query
from repro.core.results import (
    AggregateResult,
    CountResult,
    PhaseTimings,
    SetResult,
)
from repro.exceptions import QueryError, VerificationError
from repro.network.message import batch_kind

#: Set-query kinds (one indicator sweep, no Shamir round).
SET_KINDS = ("psi", "psu", "psi_count", "psu_count")
#: Aggregation kinds (indicator sweep + Eq. 11 round).
AGG_KINDS = ("psi_sum", "psi_average", "psu_sum", "psu_average")
#: Every batchable query kind.
KINDS = SET_KINDS + AGG_KINDS

_PSU_BASED = ("psu", "psu_count", "psu_sum", "psu_average")


@dataclasses.dataclass(frozen=True)
class BatchQuery:
    """One normalised query request inside a batch.

    Attributes:
        kind: one of :data:`KINDS` (``psi``, ``psu``, ``psi_count``,
            ``psu_count``, ``psi_sum``, ``psi_average``, ``psu_sum``,
            ``psu_average``).
        attribute: the set-operation attribute ``A_c`` (or tuple for
            multi-attribute PSI).
        agg_attributes: attributes to aggregate (required for the
            aggregation kinds, forbidden otherwise).
        verify: run the per-kind verification stream where the sequential
            API supports it.
        owner_ids: restrict the query to a subset of owners.
        querier: the owner that finalises (and, for aggregations, deals
            the indicator shares).
    """

    kind: str
    attribute: str | tuple
    agg_attributes: tuple = ()
    verify: bool = False
    owner_ids: tuple | None = None
    querier: int = 0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise QueryError(
                f"unknown batch query kind {self.kind!r}; expected one of "
                f"{', '.join(KINDS)} (extrema/median are announcer-"
                f"interactive and not batchable)"
            )
        if isinstance(self.attribute, list):
            object.__setattr__(self, "attribute", tuple(self.attribute))
        agg = self.agg_attributes
        if isinstance(agg, str):
            agg = (agg,)
        object.__setattr__(self, "agg_attributes", tuple(agg))
        if self.owner_ids is not None:
            object.__setattr__(self, "owner_ids", tuple(self.owner_ids))
        if self.kind in AGG_KINDS and not self.agg_attributes:
            raise QueryError(f"{self.kind} needs at least one agg attribute")
        if self.kind in SET_KINDS and self.agg_attributes:
            raise QueryError(f"{self.kind} takes no aggregation attributes")
        if self.kind == "psu_count" and self.verify:
            raise QueryError("psu_count has no verification stream")

    @property
    def column(self) -> str:
        """The stored χ column this query's indicator sweep reads."""
        return psi_column_name(self.attribute)

    @classmethod
    def coerce(cls, query) -> "BatchQuery":
        """Accept a BatchQuery, SQL string, plan (legacy or IR), or dict."""
        if isinstance(query, cls):
            return query
        if isinstance(query, str):
            return cls.from_plan(parse_query(query))
        if isinstance(query, QueryPlan):
            return cls.from_plan(query)
        if isinstance(query, dict):
            return cls(**query)
        from repro.api.builder import Q
        from repro.api.plan import LogicalPlan
        if isinstance(query, Q):
            query = query.plan()
        if isinstance(query, LogicalPlan):
            return cls.from_logical(query)
        raise QueryError(
            f"cannot interpret {type(query).__name__} as a batch query"
        )

    @classmethod
    def from_plan(cls, plan: QueryPlan) -> "BatchQuery":
        """Translate a parsed Table-4 statement into a batch query.

        The ``verify`` flag is carried for every kind (the legacy
        dispatch dropped it for PSU); kinds with no verification stream
        (PSU-Count) reject it loudly in :meth:`__post_init__` instead of
        dropping it silently.
        """
        if plan.aggregate is None:
            return cls(kind=plan.set_op, attribute=plan.attribute,
                       verify=plan.verify)
        fn, attr = plan.aggregate
        if fn == "COUNT":
            return cls(kind=f"{plan.set_op}_count", attribute=plan.attribute,
                       verify=plan.verify)
        if fn == "SUM":
            return cls(kind=f"{plan.set_op}_sum", attribute=plan.attribute,
                       agg_attributes=(attr,), verify=plan.verify)
        if fn == "AVG":
            return cls(kind=f"{plan.set_op}_average",
                       attribute=plan.attribute, agg_attributes=(attr,),
                       verify=plan.verify)
        raise QueryError(
            f"{fn} queries are announcer-interactive and not batchable; "
            f"run them through the per-query API"
        )

    @classmethod
    def from_logical(cls, plan) -> "BatchQuery":
        """Translate a single-unit batchable :class:`LogicalPlan`."""
        units = plan.units()
        if len(units) != 1 or units[0].kind not in KINDS:
            raise QueryError(
                f"plan {plan.describe()!r} does not lower to one batchable "
                f"query; submit it through the Executor / PrismClient"
            )
        unit = units[0]
        return cls(kind=unit.kind, attribute=plan.attribute,
                   agg_attributes=unit.agg_attributes, verify=plan.verify,
                   owner_ids=plan.owner_ids, querier=plan.querier)

    def run_sequential(self, system, num_threads: int | None = None):
        """Execute this query through the sequential 1-D runners.

        The batch engine's correctness oracle: ``run_batch`` must return
        results identical to mapping this over the batch.  Calls the
        runners directly — NOT the ``PrismSystem`` methods, which are
        themselves shims over the batched path since the unified-API
        redesign (going through them would compare the batch engine
        against itself).
        """
        from repro.core.aggregate import run_aggregate
        from repro.core.count import run_psi_count, run_psu_count
        from repro.core.psi import run_psi
        from repro.core.psu import run_psu
        kwargs = {"num_threads": num_threads, "querier": self.querier,
                  "owner_ids": list(self.owner_ids)
                  if self.owner_ids is not None else None}
        if self.kind == "psi":
            return run_psi(system, self.attribute, verify=self.verify,
                           **kwargs)
        if self.kind == "psu":
            return run_psu(system, self.attribute, verify=self.verify,
                           **kwargs)
        if self.kind == "psi_count":
            return run_psi_count(system, self.attribute, verify=self.verify,
                                 **kwargs)
        if self.kind == "psu_count":
            return run_psu_count(system, self.attribute, **kwargs)
        over, op = self.kind.split("_")
        return run_aggregate(system, self.attribute,
                             list(self.agg_attributes),
                             op="avg" if op == "average" else "sum",
                             over=over, verify=self.verify, **kwargs)


@dataclasses.dataclass
class _AggRow:
    """One *unique* Eq. 11 row of the fused aggregation sweep."""

    column: str
    z_shares: list


@dataclasses.dataclass(frozen=True)
class _AggUse:
    """One query's claim on a unique aggregation row."""

    query_index: int
    purpose: str  # "sum" | "vsum" | "count"
    agg_attribute: str | None
    row: int  # index into the group's unique rows


class QueryBatch:
    """Planner and executor for a batch of heterogeneous queries.

    Args:
        system: a :class:`~repro.core.system.PrismSystem`.
        queries: an iterable of :class:`BatchQuery` (or SQL strings,
            :class:`QueryPlan` objects, or keyword dicts).
        num_threads: server-side thread count (default: system setting).
        num_shards: χ-table shard count for this batch (default: system
            setting, i.e. the servers' own shard plans; ``1`` forces the
            unsharded thread sweep for this batch only; ``"auto"``
            resolves from the χ length and core count).  Under a
            non-local deployment the count travels over the channel and
            the entity hosts shard the sweep themselves.

    After :meth:`execute`, :attr:`stats` reports how much work fusion
    saved: sweep counts per family, deduplicated rows, and the
    indicator-cache counters.
    """

    def __init__(self, system, queries, num_threads: int | None = None,
                 num_shards: int | str | None = None):
        self.system = system
        self.queries = [BatchQuery.coerce(q) for q in queries]
        self.num_threads = (num_threads if num_threads is not None
                            else system.num_threads)
        # None = defer to each server's deployment-default shard plan.
        self.shard_plan = system.shard_plan_for(num_shards)
        self.timings = PhaseTimings()
        self.stats: dict = {}
        self._plan_built = False
        # family → owner-group → row-key → row index (dedup maps).
        self._psi_rows: dict = {}
        self._count_rows: dict = {}
        self._psu_rows: dict = {}
        # PSU rows in query-submission order, for per-execution nonce
        # draws (Eq. 18 masks must be fresh on every run).
        self._psu_order: list[tuple] = []
        self._psu_nonces: dict = {}
        # per-query handles into the family outputs.
        self._handles: list[dict] = []

    # -- planning -------------------------------------------------------------

    def plan(self) -> dict:
        """Expand queries into deduplicated kernel rows, grouped by family.

        Returns a summary dict (also stored in :attr:`stats`): rows per
        family and how many per-query rows fusion deduplicated away.
        """
        if self._plan_built:
            return self.stats["plan"]
        requested = 0

        def psi_row(group, column, subtract):
            rows = self._psi_rows.setdefault(group, {})
            return rows.setdefault((column, subtract), len(rows))

        def count_row(group, column, subtract, pf2):
            rows = self._count_rows.setdefault(group, {})
            return rows.setdefault((column, subtract, pf2), len(rows))

        def psu_row(group, column, permute):
            rows = self._psu_rows.setdefault(group, [])
            rows.append((column, permute))
            self._psu_order.append((group, len(rows) - 1))
            return len(rows) - 1

        for query in self.queries:
            group = query.owner_ids
            base = query.column
            handle: dict = {"group": group}
            if query.kind == "psi":
                requested += 1
                handle["data"] = ("psi", psi_row(group, base, True))
                if query.verify:
                    requested += 1
                    handle["proof"] = ("psi", psi_row(group, "v" + base, False))
            elif query.kind == "psu":
                requested += 1
                handle["data"] = ("psu", psu_row(group, base, False))
                if query.verify:
                    requested += 1
                    # The "nobody holds it" stream: Eq. 3 over the complement.
                    handle["proof"] = ("psi", psi_row(group, "v" + base, True))
            elif query.kind == "psi_count":
                requested += 1
                column = ("c" + base) if query.verify else base
                handle["data"] = ("count", count_row(group, column, True, False))
                if query.verify:
                    requested += 1
                    handle["proof"] = (
                        "count", count_row(group, "cv" + base, False, True))
            elif query.kind == "psu_count":
                requested += 1
                handle["data"] = ("psu", psu_row(group, base, True))
            else:  # aggregation kinds: round 1 is an unverified PSI/PSU.
                requested += 1
                if query.kind in _PSU_BASED:
                    handle["data"] = ("psu", psu_row(group, base, False))
                else:
                    handle["data"] = ("psi", psi_row(group, base, True))
            self._handles.append(handle)

        fused = (sum(len(r) for r in self._psi_rows.values())
                 + sum(len(r) for r in self._count_rows.values())
                 + sum(len(r) for r in self._psu_rows.values()))
        groups = sum(
            1
            for family_rows in (self._psi_rows, self._count_rows,
                                self._psu_rows)
            for rows in family_rows.values() if rows
        )
        summary = {
            "queries": len(self.queries),
            "psi_rows": sum(len(r) for r in self._psi_rows.values()),
            "count_rows": sum(len(r) for r in self._count_rows.values()),
            "psu_rows": sum(len(r) for r in self._psu_rows.values()),
            "rows_requested": requested,
            "fused_rows": fused,
            "rows_deduplicated": requested - fused,
            # Each (family, owner-group) fuses into one sweep on each of
            # the two additive-share servers; known before execution, so
            # EXPLAIN can report it without running the query.
            "indicator_sweeps_planned": 2 * groups,
        }
        self.stats["plan"] = summary
        self._plan_built = True
        return summary

    # -- execution ------------------------------------------------------------

    def execute(self) -> list:
        """Run the batch; returns one result per query, in input order."""
        if not self.queries:
            return []
        self.plan()
        # Fresh timings per execution: result objects of one run share a
        # PhaseTimings instance, which a later run must not mutate.
        self.timings = PhaseTimings()
        # Fresh Eq. 18 nonces per execution, drawn in query-submission
        # order (matching the sequential loop); re-running the same plan
        # must never replay a mask stream.
        self._psu_nonces = {group: [None] * len(rows)
                            for group, rows in self._psu_rows.items()}
        for group, row in self._psu_order:
            self._psu_nonces[group][row] = self.system.next_nonce()
        outputs = self._run_indicator_sweeps()
        results: list = [None] * len(self.queries)
        members: dict[int, np.ndarray] = {}
        # One traffic snapshot per phase: batched results share metadata.
        traffic = self.system.transport.stats.summary()
        with self.timings.measure("owner"):
            for index, query in enumerate(self.queries):
                member = self._finalize_indicator(index, query, outputs,
                                                  results, traffic)
                if member is not None:
                    members[index] = member
        self._run_aggregate_sweeps(members, results)
        self.stats["cache"] = dict(self._cache_stats())
        return results

    def _cache_stats(self) -> dict:
        cache = getattr(getattr(self.system, "initiator", None),
                        "indicator_cache", None)
        return cache.stats if cache is not None else {}

    @staticmethod
    def _owner_list(group):
        return list(group) if group is not None else None

    def _sweep_servers(self, servers, thunks):
        """Run one sweep thunk per server; overlap them when remote.

        Against a non-local deployment every thunk is pure wire I/O —
        the hosts compute concurrently while this process waits — so
        the per-server requests are issued together through
        :func:`repro.network.dispatch.overlap` and the in-flight RPCs
        to the three roles genuinely overlap (each role's host pool
        additionally fans its spans out internally).  In-process
        servers share this interpreter, so they keep the sequential
        order (bit-identical either way: the sweeps are independent).
        Returns the outputs in server order.
        """
        if len(thunks) > 1 and all(getattr(server, "is_remote", False)
                                   for server in servers):
            from repro.network.dispatch import overlap
            with self.timings.measure("server"):
                return overlap(thunks)
        outs = []
        for thunk in thunks:
            with self.timings.measure("server"):
                outs.append(thunk())
        return outs

    def _run_indicator_sweeps(self) -> dict:
        """One fused sweep per family per owner group, on both servers.

        Returns ``outputs[(family, group, server_index)]`` → (Q, b) matrix.
        """
        system = self.system
        transport = system.transport
        receivers = [o.endpoint for o in system.owners]
        outputs: dict = {}
        sweeps = 0
        for family, groups in (("psi", self._psi_rows),
                               ("count", self._count_rows)):
            for group, rows in groups.items():
                if not rows:
                    continue
                transport.begin_round(f"batch-{family}")
                ordered = sorted(rows, key=rows.get)
                columns = [c for c, *_ in ordered]
                subtract = [flags[0] for _, *flags in ordered]
                owner_ids = self._owner_list(group)
                servers = system.servers[:2]
                if family == "psi":
                    thunks = [
                        lambda server=server: server.psi_round_batch(
                            columns, self.num_threads, owner_ids,
                            subtract_m=subtract, shard_plan=self.shard_plan)
                        for server in servers
                    ]
                else:
                    pf2 = [flags[1] for _, *flags in ordered]
                    thunks = [
                        lambda server=server: server.count_round_batch(
                            columns, self.num_threads, owner_ids,
                            subtract_m=subtract, use_pf_s2=pf2,
                            shard_plan=self.shard_plan)
                        for server in servers
                    ]
                for s_index, out in enumerate(
                        self._sweep_servers(servers, thunks)):
                    sweeps += 1
                    transport.broadcast(
                        servers[s_index].endpoint, receivers,
                        batch_kind(f"{family}-output", len(columns)), out)
                    outputs[(family, group, s_index)] = out
        for group, rows in self._psu_rows.items():
            if not rows:
                continue
            transport.begin_round("batch-psu")
            columns = [c for c, _ in rows]
            nonces = self._psu_nonces[group]
            permute = [p for _, p in rows]
            owner_ids = self._owner_list(group)
            servers = system.servers[:2]
            thunks = [
                lambda server=server: server.psu_round_batch(
                    columns, nonces, self.num_threads, owner_ids,
                    permute=permute, shard_plan=self.shard_plan)
                for server in servers
            ]
            for s_index, out in enumerate(
                    self._sweep_servers(servers, thunks)):
                sweeps += 1
                transport.broadcast(servers[s_index].endpoint, receivers,
                                    batch_kind("psu-output", len(columns)),
                                    out)
                outputs[("psu", group, s_index)] = out
        self.stats["indicator_sweeps"] = sweeps
        return outputs

    def _rows(self, handle_entry, group, outputs):
        """The two servers' output rows behind one per-query handle."""
        family, row = handle_entry
        return (outputs[(family, group, 0)][row],
                outputs[(family, group, 1)][row])

    def _finalize_indicator(self, index, query, outputs, results, traffic):
        """Per-query owner math — identical to the sequential runners.

        Fills ``results[index]`` for set queries; returns the membership
        vector for aggregation queries (finalised later).
        """
        system = self.system
        owner = system.owners[query.querier]
        handle = self._handles[index]
        group = handle["group"]
        r0, r1 = self._rows(handle["data"], group, outputs)

        if query.kind == "psi":
            fop = owner.finalize_psi(r0, r1)
            member = owner.psi_membership(fop)
            verified = False
            if query.verify:
                v0, v1 = self._rows(handle["proof"], group, outputs)
                owner.verify_psi(fop, v0, v1)
                verified = True
            values = owner.decode_cells(member, query.attribute)
            results[index] = SetResult(values=values, membership=member,
                                       timings=self.timings, traffic=traffic,
                                       verified=verified)
            return None
        if query.kind == "psu":
            member = owner.finalize_psu(r0, r1)
            verified = False
            if query.verify:
                v0, v1 = self._rows(handle["proof"], group, outputs)
                absent_fop = owner.finalize_psi(v0, v1)
                absent = owner.params.pf_db1.invert(absent_fop) == 1
                bad = np.nonzero(member == absent)[0]
                if bad.size:
                    raise VerificationError(
                        f"PSU verification failed at {bad.size} of "
                        f"{member.size} cells",
                        failed_cells=bad.tolist(),
                    )
                verified = True
            values = owner.decode_cells(member, query.attribute)
            results[index] = SetResult(values=values, membership=member,
                                       timings=self.timings, traffic=traffic,
                                       verified=verified)
            return None
        if query.kind == "psi_count":
            fop = owner.finalize_psi(r0, r1)
            count = int(np.count_nonzero(fop == 1))
            if query.verify:
                v0, v1 = self._rows(handle["proof"], group, outputs)
                eta = owner.params.eta
                r2 = np.mod(np.mod(v0, eta) * np.mod(v1, eta), eta)
                proof = np.mod(fop * r2, eta)
                bad = np.nonzero(proof != 1)[0]
                if bad.size:
                    raise VerificationError(
                        f"count verification failed at {bad.size} cells",
                        failed_cells=bad.tolist(),
                    )
            results[index] = CountResult(count=count, timings=self.timings,
                                         traffic=traffic)
            return None
        if query.kind == "psu_count":
            member = owner.finalize_psu(r0, r1)
            results[index] = CountResult(count=int(np.count_nonzero(member)),
                                         timings=self.timings, traffic=traffic)
            return None
        # Aggregation kinds: round 1 only establishes the membership.
        if query.kind in _PSU_BASED:
            return owner.finalize_psu(r0, r1)
        return owner.psi_membership(owner.finalize_psi(r0, r1))

    # -- the Eq. 11 family ----------------------------------------------------

    def _run_aggregate_sweeps(self, members: dict, results: list) -> None:
        """Fused Eq. 11 sweeps for every aggregation query in the batch.

        Rows are grouped by (owner group, querier): each group stacks its
        indicator-share vectors into one 2-D matrix per server and runs a
        single :meth:`aggregate_round_batch` call on all three servers.
        Rows with the same column and the same dealt indicator shares
        (overlapping queries whose ``z`` came out of the cache) are fused
        into one row — identical inputs give identical totals.
        """
        system = self.system
        transport = system.transport
        receivers = [o.endpoint for o in system.owners]
        groups: dict[tuple, list[_AggRow]] = {}
        uses: dict[tuple, list[_AggUse]] = {}
        row_keys: dict[tuple, dict] = {}
        deduped = 0

        with self.timings.measure("owner"):
            for index, member in members.items():
                query = self.queries[index]
                owner = system.owners[query.querier]
                owner_ids = self._owner_list(query.owner_ids)
                base = query.column
                z = indicator_shares(system, owner, base, owner_ids, member)
                vz = (indicator_shares(system, owner, base, owner_ids,
                                       member, permuted=True)
                      if query.verify else None)
                group_key = (query.owner_ids, query.querier)
                rows = groups.setdefault(group_key, [])
                keys = row_keys.setdefault(group_key, {})
                claims = uses.setdefault(group_key, [])

                def claim(column, shares, purpose, agg):
                    nonlocal deduped
                    key = (column, id(shares))
                    row = keys.get(key)
                    if row is None:
                        row = keys[key] = len(rows)
                        rows.append(_AggRow(column, shares))
                    else:
                        deduped += 1
                    claims.append(_AggUse(index, purpose, agg, row))

                for agg in query.agg_attributes:
                    claim(agg, z, "sum", agg)
                    if query.verify:
                        claim("v" + agg, vz, "vsum", agg)
                if query.kind.endswith("average"):
                    claim("a" + base, z, "count", None)

        sweeps = 0
        row_totals: dict[tuple, list[np.ndarray]] = {}
        for group_key, rows in groups.items():
            group, querier = group_key
            transport.begin_round("batch-agg")
            owner = system.owners[querier]
            owner_ids = self._owner_list(group)
            columns = [row.column for row in rows]
            servers = system.servers[:3]
            z_matrices = []
            for s_index, server in enumerate(servers):
                z_matrix = np.stack([row.z_shares[s_index] for row in rows])
                transport.transfer(owner.endpoint, server.endpoint,
                                   batch_kind("z-shares", len(rows)), z_matrix)
                z_matrices.append(z_matrix)
            thunks = [
                lambda server=server, z=z: server.aggregate_round_batch(
                    columns, z, self.num_threads, owner_ids,
                    shard_plan=self.shard_plan)
                for server, z in zip(servers, z_matrices)
            ]
            outs = self._sweep_servers(servers, thunks)
            for s_index, out in enumerate(outs):
                sweeps += 1
                transport.broadcast(servers[s_index].endpoint, receivers,
                                    batch_kind("agg-output", len(rows)), out)
            with self.timings.measure("owner"):
                totals_by_row = [
                    owner.finalize_aggregate(
                        [outs[0][r], outs[1][r], outs[2][r]])
                    for r in range(len(rows))
                ]
                for use in uses[group_key]:
                    row_totals.setdefault(
                        (use.query_index, use.purpose), []).append(
                        (use.agg_attribute, totals_by_row[use.row]))
        self.stats["aggregate_sweeps"] = sweeps
        self.stats["aggregate_rows_deduplicated"] = deduped

        traffic = transport.stats.summary()
        with self.timings.measure("owner"):
            for index, member in members.items():
                results[index] = self._assemble_aggregate(index, member,
                                                          row_totals, traffic)

    def _assemble_aggregate(self, index, member, row_totals, traffic) -> dict:
        """Per-query AggregateResult assembly (sequential-identical math)."""
        system = self.system
        query = self.queries[index]
        owner = system.owners[query.querier]
        sums = dict(row_totals.get((index, "sum"), []))
        vsums = dict(row_totals.get((index, "vsum"), []))
        count_rows = row_totals.get((index, "count"), [])
        counts = count_rows[0][1] if count_rows else None
        want_counts = query.kind.endswith("average")

        results: dict[str, AggregateResult] = {}
        for agg in query.agg_attributes:
            totals = sums[agg]
            verified = False
            if query.verify:
                vtotals = vsums[agg]
                expect = owner.params.pf_db1.apply(totals)
                bad = np.nonzero(vtotals != expect)[0]
                if bad.size:
                    raise VerificationError(
                        f"aggregation verification failed for {agg!r} at "
                        f"{bad.size} cells",
                        failed_cells=bad.tolist(),
                    )
                verified = True
            per_value = {}
            for cell in np.nonzero(member)[0]:
                value = owner.params.domain.value_of(int(cell))
                if not want_counts:
                    per_value[value] = int(totals[cell])
                else:
                    c = int(counts[cell])
                    per_value[value] = int(totals[cell]) / c if c else 0.0
            results[agg] = AggregateResult(per_value=per_value,
                                           timings=self.timings,
                                           traffic=traffic, verified=verified)
        return results


def run_batch(system, queries, num_threads: int | None = None,
              num_shards: int | None = None) -> list:
    """Plan and execute a batch of queries; results in input order.

    Each element of ``queries`` may be a :class:`BatchQuery`, a Table-4
    SQL string, a parsed :class:`~repro.core.query.QueryPlan`, or a
    keyword dict.  Results are exactly what the sequential per-query API
    would return (see :class:`QueryBatch` for the shared-metadata
    caveats).
    """
    return QueryBatch(system, queries, num_threads=num_threads,
                      num_shards=num_shards).execute()
