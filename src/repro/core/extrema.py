"""Exemplar aggregations over PSI: maximum, minimum, median (§6.3–6.4).

For each common value ``y`` (from the PSI round):

* **Step 3** — every owner finds its local group extremum ``M_i`` and
  blinds it order-preservingly: ``v_i = F(M_i) + r_i`` (Eq. 12), then
  deals additive big-int shares of ``v_i`` to the two servers.
* **Step 4** — each server arranges the ``m`` shares in owner order,
  permutes with ``PF`` (owner-slot variant) and forwards to the announcer,
  who adds the two arrays (Eq. 13), finds the max/min/median (Eq. 14),
  and returns additive shares of the blinded result and of its permuted
  index via the servers.
* **Step 5a** — owners reconstruct, invert ``F`` by binary search to get
  the true extremum ``z`` (``F(z) <= max < F(z+1)``), and apply ``RPF``
  to the index to learn one holder's identity.
* **Steps 5b–7** (optional, the paper's pink round) — owners share 0/1
  "I hold it" flags; servers assemble the ``fpos`` vectors; owners add
  them to learn *all* holders.

Median (§6.4) replaces FindMax with a sort-and-middle at the announcer and
runs over each owner's per-group *total* (the paper first sums the cost
per disease at each owner); for even ``m`` the two middle blinded values
are returned and the owners average the two inverted values.
"""

from __future__ import annotations

from repro.core.psi import run_psi
from repro.core.results import ExtremaResult, MedianResult, PhaseTimings
from repro.exceptions import ProtocolError, VerificationError


def _collect_blinded_shares(system, owners, psi_attribute, agg_attribute,
                            value, kind, timings):
    """Steps 3–4 share collection: owner → servers, with traffic recorded.

    Returns per-server dicts ``owner_id -> share`` plus each owner's local
    value (kept for the 5b round; never transmitted).
    """
    transport = system.transport
    server_shares = [dict(), dict()]
    local_values = {}
    for owner in owners:
        with timings.measure("owner"):
            if kind == "min":
                local = owner.local_group_min(psi_attribute, agg_attribute, value)
            elif kind == "median":
                local = owner.local_group_sum(psi_attribute, agg_attribute, value)
            else:
                local = owner.local_group_max(psi_attribute, agg_attribute, value)
            if local is None:
                raise ProtocolError(
                    f"owner {owner.owner_id} has no tuples for common value "
                    f"{value!r}; PSI guarantees it should"
                )
            blinded = owner.blind_value(int(local))
            shares = owner.extrema_shares(blinded)
        local_values[owner.owner_id] = int(local)
        for phi, server in enumerate(system.servers[:2]):
            transport.transfer(owner.endpoint, server.endpoint,
                               "extrema-share", shares[phi])
            server_shares[phi][owner.owner_id] = shares[phi]
    return server_shares, local_values


def _announce(system, server_shares, kind, timings):
    """Step 4 at servers + announcer; returns the announcer's share dict."""
    transport = system.transport
    permuted = []
    for phi, server in enumerate(system.servers[:2]):
        with timings.measure("server"):
            arr = server.extrema_collect(server_shares[phi])
        transport.transfer(server.endpoint, system.announcer.endpoint,
                           "extrema-array", arr)
        permuted.append(arr)
    with timings.measure("announcer"):
        if kind == "min":
            return system.announcer.announce_min(permuted[0], permuted[1])
        if kind == "median":
            return system.announcer.announce_median(permuted[0], permuted[1])
        return system.announcer.announce_max(permuted[0], permuted[1])


def _route_back(system, share_pair):
    """Announcer → servers → owners share forwarding, with accounting."""
    transport = system.transport
    s1, s2 = share_pair
    for phi, share in ((0, s1), (1, s2)):
        server = system.servers[phi]
        transport.transfer(system.announcer.endpoint, server.endpoint,
                           "announce-share", share)
        for owner in system.owners:
            transport.transfer(server.endpoint, owner.endpoint,
                               "announce-share", server.forward(share))
    return s1, s2


def run_extrema(system, attribute: str, agg_attribute: str,
                kind: str = "max", reveal_holders: bool = True,
                verify: bool = False,
                num_threads: int | None = None, querier: int = 0,
                common_values=None) -> ExtremaResult:
    """Max or min of ``agg_attribute`` per common value of ``attribute``.

    Args:
        system: a :class:`~repro.core.system.PrismSystem`.
        attribute: the PSI attribute ``A_c``.
        agg_attribute: the attribute ``A_x`` whose extremum is sought.
        kind: ``"max"`` or ``"min"``.
        reveal_holders: run the optional identity round (Steps 5b–7).
        verify: run the extremum round twice with independent blinding
            randomness and require both inverted results to agree — a
            server or announcer tampering with the share arrays cannot
            produce *consistent* wrong answers across two blindings of
            values it never sees in the clear.  (Ties may announce a
            different permuted index each round, so only the extremum
            value is compared.)
        num_threads: server-side threads for the PSI round.
        querier: owner used for PSI bookkeeping.
        common_values: skip the PSI round and use these values (lets
            benches isolate round-2 cost).

    Returns:
        An :class:`ExtremaResult` with the extremum (and holders) per
        common value.
    """
    if kind not in ("max", "min"):
        raise ProtocolError(f"unknown extremum kind {kind!r}")
    transport = system.transport
    owners = system.owners
    if common_values is None:
        round1 = run_psi(system, attribute, num_threads=num_threads,
                         querier=querier)
        timings = round1.timings
        common_values = round1.values
    else:
        timings = PhaseTimings()

    per_value = {}
    holders: dict = {}
    for value in common_values:
        transport.begin_round(f"extrema-{kind}")
        server_shares, local_values = _collect_blinded_shares(
            system, owners, attribute, agg_attribute, value, kind, timings)
        announced = _announce(system, server_shares, kind, timings)
        v1, v2 = _route_back(system, announced["value"])
        i1, i2 = _route_back(system, announced["index"])

        with timings.measure("owner"):
            extremum = owners[querier].recover_extremum(v1, v2)
            first_holder = owners[querier].recover_owner_identity(i1, i2)
        per_value[value] = extremum
        holders[value] = [first_holder]

        if verify:
            transport.begin_round(f"extrema-{kind}-verify")
            shares2, _ = _collect_blinded_shares(
                system, owners, attribute, agg_attribute, value, kind,
                timings)
            announced2 = _announce(system, shares2, kind, timings)
            w1, w2 = _route_back(system, announced2["value"])
            with timings.measure("owner"):
                recheck = owners[querier].recover_extremum(w1, w2)
            if recheck != extremum:
                raise VerificationError(
                    f"extrema verification failed for {value!r}: "
                    f"{extremum} vs {recheck} across independent blindings"
                )

        if reveal_holders:
            transport.begin_round("extrema-fpos")
            alpha = [dict(), dict()]
            for owner in owners:
                with timings.measure("owner"):
                    holds = owner.holds_extremum(local_values[owner.owner_id],
                                                 extremum)
                    shares = owner.alpha_shares(holds)
                for phi, server in enumerate(system.servers[:2]):
                    transport.transfer(owner.endpoint, server.endpoint,
                                       "alpha-share", shares[phi])
                    alpha[phi][owner.owner_id] = shares[phi]
            fpos = []
            for phi, server in enumerate(system.servers[:2]):
                with timings.measure("server"):
                    vec = server.fpos_round(alpha[phi])
                for owner in owners:
                    transport.transfer(server.endpoint, owner.endpoint,
                                       "fpos", vec)
                fpos.append(vec)
            with timings.measure("owner"):
                flags = owners[querier].finalize_fpos(fpos[0], fpos[1])
            holders[value] = [i for i, f in enumerate(flags) if f == 1]

    return ExtremaResult(per_value=per_value, holders=holders,
                         timings=timings, traffic=transport.stats.summary())


def run_median(system, attribute: str, agg_attribute: str,
               num_threads: int | None = None, querier: int = 0,
               common_values=None) -> MedianResult:
    """Median across owners of per-owner group totals (§6.4)."""
    transport = system.transport
    owners = system.owners
    if common_values is None:
        round1 = run_psi(system, attribute, num_threads=num_threads,
                         querier=querier)
        timings = round1.timings
        common_values = round1.values
    else:
        timings = PhaseTimings()

    per_value = {}
    for value in common_values:
        transport.begin_round("median")
        server_shares, _ = _collect_blinded_shares(
            system, owners, attribute, agg_attribute, value, "median", timings)
        announced = _announce(system, server_shares, "median", timings)
        low = _route_back(system, announced["low"])
        with timings.measure("owner"):
            low_value = owners[querier].recover_extremum(*low)
        if announced["high"] is None:
            per_value[value] = low_value
        else:
            high = _route_back(system, announced["high"])
            with timings.measure("owner"):
                high_value = owners[querier].recover_extremum(*high)
            per_value[value] = (low_value + high_value) / 2

    return MedianResult(per_value=per_value, timings=timings,
                        traffic=transport.stats.summary())


def extrema_reference(relations, attribute: str, agg_attribute: str,
                      values, kind: str = "max") -> dict:
    """Plaintext oracle for max/min per common value."""
    out = {}
    pick = max if kind == "max" else min
    for value in values:
        candidates = []
        for rel in relations:
            group = [v for k, v in zip(rel.column(attribute),
                                       rel.column(agg_attribute)) if k == value]
            if group:
                candidates.append(pick(group))
        out[value] = pick(candidates)
    return out


def median_reference(relations, attribute: str, agg_attribute: str,
                     values) -> dict:
    """Plaintext oracle: median across owners of per-owner totals."""
    out = {}
    for value in values:
        totals = []
        for rel in relations:
            total = sum(v for k, v in zip(rel.column(attribute),
                                          rel.column(agg_attribute))
                        if k == value)
            totals.append(total)
        totals.sort()
        n = len(totals)
        if n % 2 == 1:
            out[value] = totals[n // 2]
        else:
            out[value] = (totals[n // 2 - 1] + totals[n // 2]) / 2
    return out
