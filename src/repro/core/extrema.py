"""Exemplar aggregations over PSI: maximum, minimum, median (§6.3–6.4).

For each common value ``y`` (from the PSI round):

* **Step 3** — every owner finds its local group extremum ``M_i`` and
  blinds it order-preservingly: ``v_i = F(M_i) + r_i`` (Eq. 12), then
  deals additive big-int shares of ``v_i`` to the two servers.
* **Step 4** — each server arranges the ``m`` shares in owner order,
  permutes with ``PF`` (owner-slot variant) and forwards to the announcer,
  who adds the two arrays (Eq. 13), finds the max/min/median (Eq. 14),
  and returns additive shares of the blinded result and of its permuted
  index via the servers.
* **Step 5a** — owners reconstruct, invert ``F`` by binary search to get
  the true extremum ``z`` (``F(z) <= max < F(z+1)``), and apply ``RPF``
  to the index to learn one holder's identity.
* **Steps 5b–7** (optional, the paper's pink round) — owners share 0/1
  "I hold it" flags; servers assemble the ``fpos`` vectors; owners add
  them to learn *all* holders.

Median (§6.4) replaces FindMax with a sort-and-middle at the announcer and
runs over each owner's per-group *total* (the paper first sums the cost
per disease at each owner); for even ``m`` the two middle blinded values
are returned and the owners average the two inverted values.

Since the round-state redesign the protocol bodies live in
:mod:`repro.core.interactive` as executor-driven
:class:`~repro.core.interactive.InteractiveProgram` state machines whose
round-1 sweep is shard-parallel; :func:`run_extrema` / :func:`run_median`
are thin drivers over those programs (bit-identical results).
"""

from __future__ import annotations

from repro.core.interactive import ExtremaProgram, MedianProgram
from repro.core.results import ExtremaResult, MedianResult
from repro.exceptions import QueryError


def run_extrema(system, attribute: str, agg_attribute: str,
                kind: str = "max", reveal_holders: bool = True,
                verify: bool = False,
                num_threads: int | None = None, querier: int = 0,
                common_values=None, shard_plan=None) -> ExtremaResult:
    """Max or min of ``agg_attribute`` per common value of ``attribute``.

    Args:
        system: a :class:`~repro.core.system.PrismSystem`.
        attribute: the PSI attribute ``A_c``.
        agg_attribute: the attribute ``A_x`` whose extremum is sought.
        kind: ``"max"`` or ``"min"``.
        reveal_holders: run the optional identity round (Steps 5b–7).
        verify: run the extremum round twice with independent blinding
            randomness and require both inverted results to agree — a
            server or announcer tampering with the share arrays cannot
            produce *consistent* wrong answers across two blindings of
            values it never sees in the clear.  (Ties may announce a
            different permuted index each round, so only the extremum
            value is compared.)
        num_threads: server-side threads for the PSI round.
        querier: owner used for PSI bookkeeping.
        common_values: skip the PSI round and use these values (lets
            benches isolate round-2 cost).
        shard_plan: per-call :class:`~repro.core.sharding.ShardPlan`
            override for the PSI sweep (``None``: the deployment's
            default plan).

    Returns:
        An :class:`ExtremaResult` with the extremum (and holders) per
        common value.
    """
    return ExtremaProgram(system, attribute, agg_attribute, kind=kind,
                          reveal_holders=reveal_holders, verify=verify,
                          num_threads=num_threads, querier=querier,
                          common_values=common_values,
                          shard_plan=shard_plan).run()


def run_median(system, attribute: str, agg_attribute: str,
               num_threads: int | None = None, querier: int = 0,
               common_values=None, shard_plan=None,
               verify: bool = False) -> MedianResult:
    """Median across owners of per-owner group totals (§6.4).

    New parameters are appended, so historical positional callers
    (``run_median(system, a, x, 4)`` meaning four threads) keep their
    meaning.

    Raises:
        QueryError: when ``verify=True`` — the median protocol has no
            verification stream, and this entry point fails with the
            same typed exception as the plan-IR validation
            (``"MEDIAN has no verification stream"``), so the shim and
            API paths are indistinguishable to callers.
    """
    if verify:
        raise QueryError("MEDIAN has no verification stream")
    return MedianProgram(system, attribute, agg_attribute,
                         num_threads=num_threads, querier=querier,
                         common_values=common_values,
                         shard_plan=shard_plan).run()


def extrema_reference(relations, attribute: str, agg_attribute: str,
                      values, kind: str = "max") -> dict:
    """Plaintext oracle for max/min per common value."""
    out = {}
    pick = max if kind == "max" else min
    for value in values:
        candidates = []
        for rel in relations:
            group = [v for k, v in zip(rel.column(attribute),
                                       rel.column(agg_attribute)) if k == value]
            if group:
                candidates.append(pick(group))
        out[value] = pick(candidates)
    return out


def median_reference(relations, attribute: str, agg_attribute: str,
                     values) -> dict:
    """Plaintext oracle: median across owners of per-owner totals."""
    out = {}
    for value in values:
        totals = []
        for rel in relations:
            total = sum(v for k, v in zip(rel.column(attribute),
                                          rel.column(agg_attribute))
                        if k == value)
            totals.append(total)
        totals.sort()
        n = len(totals)
        if n % 2 == 1:
            out[value] = totals[n // 2]
        else:
            out[value] = (totals[n // 2 - 1] + totals[n // 2]) / 2
    return out
