"""Result objects returned by the protocol runners.

Every result carries a :class:`PhaseTimings` breakdown (server vs owner vs
announcer wall time) and the transport's traffic summary, because the
paper's experiments report exactly those splits (Figs. 3–4 measure server
time, Table 14 measures owner-side result-construction time).
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np


class PhaseTimings:
    """Accumulates wall-clock time per protocol phase."""

    def __init__(self):
        self.seconds: dict[str, float] = {}

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds

    def measure(self, phase: str):
        """Context manager: ``with timings.measure("server"): ...``."""
        return _Measurement(self, phase)

    @property
    def server_seconds(self) -> float:
        return self.seconds.get("server", 0.0)

    @property
    def owner_seconds(self) -> float:
        return self.seconds.get("owner", 0.0)

    @property
    def announcer_seconds(self) -> float:
        return self.seconds.get("announcer", 0.0)

    @property
    def fetch_seconds(self) -> float:
        return self.seconds.get("fetch", 0.0)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> dict[str, float]:
        return dict(self.seconds)


class _Measurement:
    def __init__(self, timings: PhaseTimings, phase: str):
        self._timings = timings
        self._phase = phase
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        self._timings.add(self._phase, time.perf_counter() - self._start)
        return False


@dataclasses.dataclass
class SetResult:
    """Result of a PSI or PSU query.

    Attributes:
        values: decoded domain values in the intersection/union.
        membership: boolean vector over domain cells.
        timings: per-phase wall time.
        traffic: transport summary dict.
        verified: True when result verification ran and passed.
    """

    values: list
    membership: np.ndarray
    timings: PhaseTimings
    traffic: dict
    verified: bool = False

    def __contains__(self, value) -> bool:
        return value in set(self.values)

    def __len__(self) -> int:
        return len(self.values)


@dataclasses.dataclass
class CountResult:
    """Result of a PSI/PSU cardinality query (§6.5): just the count."""

    count: int
    timings: PhaseTimings
    traffic: dict


@dataclasses.dataclass
class AggregateResult:
    """Result of a sum/average query over PSI or PSU.

    Attributes:
        per_value: mapping of common/union value → aggregate.
        verified: True when the permuted-copy consistency check passed.
    """

    per_value: dict
    timings: PhaseTimings
    traffic: dict
    verified: bool = False

    def __getitem__(self, value):
        return self.per_value[value]

    def __len__(self) -> int:
        return len(self.per_value)


@dataclasses.dataclass
class ExtremaResult:
    """Result of a max/min query over PSI (§6.3).

    Attributes:
        per_value: common value → the extremum of the aggregation attribute.
        holders: common value → list of owner ids holding the extremum
            (present only when the identity round ran).
    """

    per_value: dict
    holders: dict
    timings: PhaseTimings
    traffic: dict

    def __getitem__(self, value):
        return self.per_value[value]


@dataclasses.dataclass
class MedianResult:
    """Result of a median query over PSI (§6.4).

    ``per_value`` maps each common value to the median across owners of
    the owners' per-group totals (a float when the owner count is even).
    """

    per_value: dict
    timings: PhaseTimings
    traffic: dict

    def __getitem__(self, value):
        return self.per_value[value]
