"""Sharded χ-table execution: a persistent worker pool behind the kernels.

The oblivious kernels are embarrassingly parallel sweeps over the χ
length ``b`` (Exp 1, Fig. 3): every output cell depends only on the same
cell of each input vector.  This module partitions those sweeps into
``num_shards`` contiguous shards and runs them on a *persistent* pool of
worker processes, one pool per deployment:

* :func:`shard_bounds` / :class:`ShardPlan` — the shard decomposition.
  A plan is what the batched server kernels
  (:meth:`~repro.entities.server.PrismServer.psi_round_batch` and
  friends) accept; it names the shard count and the runtime that owns
  the worker pool.
* :class:`ShardRuntime` — the worker pool.  Workers are **forked**, so
  they read the server stores' share vectors directly out of
  copy-on-write memory (the χ table is never pickled or copied), and
  they exchange per-call inputs/outputs through anonymous ``MAP_SHARED``
  int64 buffers (:class:`_Scratch`) created before the fork.  The pool
  is re-forked whenever a :class:`~repro.data.storage.ServerStore`
  changes (version counters), so workers never compute over a stale
  snapshot.
* :func:`attach_sharding` — wires one runtime + default plan onto a
  deployment's servers (what ``PrismSystem(num_shards=...)`` calls).

Fallback ladder (in the server kernels, not here): ``num_shards <= 1``
or no runtime → the persistent per-server thread pool; fork unavailable
or the pool broke → threads with ``num_shards`` chunks; subclass
overrides (malicious / instrumented servers) → the per-row 1-D kernels,
so fault injection and access tracing keep working under sharding.

Bit-identity: a shard computes exactly the per-element int64 operations
of the unsharded kernel over its span (same share-summation order, same
single reduction, same table lookup), so concatenated shard outputs are
bit-identical to the unsharded sweep for every shard count.
"""

from __future__ import annotations

import dataclasses
import mmap
import multiprocessing
import os
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro import kernels
from repro.exceptions import ProtocolError


def shard_bounds(n: int, num_shards: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most ``num_shards`` contiguous spans."""
    num_shards = max(1, min(num_shards, n)) if n else 1
    step = (n + num_shards - 1) // num_shards if n else 1
    return [(lo, min(lo + step, n)) for lo in range(0, n, step)] or [(0, 0)]


def processes_available() -> bool:
    """Whether fork-based worker processes are supported on this host.

    The runtime relies on ``fork`` semantics twice over: workers inherit
    the share vectors copy-on-write, and they inherit the pre-created
    ``MAP_SHARED`` scratch buffers.  ``spawn``-only platforms fall back
    to the threaded sweep.
    """
    return "fork" in multiprocessing.get_all_start_methods()


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """A shard decomposition handed to the batched server kernels.

    Attributes:
        num_shards: contiguous χ shards per sweep (``<= 1`` disables
            sharding — useful as an explicit per-call override).
        runtime: the :class:`ShardRuntime` owning the worker pool, or
            ``None`` for a thread-only plan.
    """

    num_shards: int
    runtime: "ShardRuntime | None" = None

    def bounds(self, n: int) -> list[tuple[int, int]]:
        """The shard spans of a length-``n`` sweep."""
        return shard_bounds(n, self.num_shards)


class _Scratch:
    """Anonymous ``MAP_SHARED`` int64 buffers shared with forked workers.

    ``in_buf`` carries per-call parent-side matrices (the querier-dealt
    Eq. 11 indicator-share rows) into the workers; ``out_buf`` carries
    each shard's output rows back.  Both are plain
    shared memory: writes on either side of the fork are visible to the
    other without copies or pickling.
    """

    def __init__(self, rows: int, cols: int):
        self.rows = max(1, rows)
        self.cols = max(1, cols)
        nbytes = self.rows * self.cols * 8
        self._in_mm = mmap.mmap(-1, nbytes)
        self._out_mm = mmap.mmap(-1, nbytes)
        self.in_buf = np.frombuffer(self._in_mm, dtype=np.int64).reshape(
            self.rows, self.cols)
        self.out_buf = np.frombuffer(self._out_mm, dtype=np.int64).reshape(
            self.rows, self.cols)


#: Per-worker state installed by :func:`_worker_init` (after the fork).
_WORKER: dict | None = None


def _worker_init(servers: dict, scratch: _Scratch) -> None:
    """Process-pool initializer: runs in each forked worker.

    ``servers`` and ``scratch`` are inherited through the fork (the
    initargs tuple is an object reference, not a pickle), so the worker
    sees the submitting deployment's stores and shared buffers.
    """
    global _WORKER
    _WORKER = {"servers": servers, "scratch": scratch}


def compute_sweep_span(server, family: str, spec: dict, lo: int, hi: int,
                       z_span: np.ndarray | None = None) -> np.ndarray:
    """One contiguous χ span ``[lo, hi)`` of one fused sweep.

    Mirrors the corresponding in-process kernel *exactly* (operation
    order, reduction points, dtypes) so shard outputs concatenate
    bit-identically to the unsharded sweep for every span decomposition.
    Reads share vectors straight from the server's store.  Two callers:
    the forked shard workers (:func:`_run_span`, which writes the result
    into the shared scratch) and the entity host
    (:mod:`repro.network.host`), which serves span-scoped RPC requests
    with it — the hook for sharding one sweep across deployment channels.

    Args:
        server: the (unmodified) server whose store backs the sweep.
        family: ``"psi"`` (Eq. 3 / Eq. 7), ``"psi_cells"`` (Eq. 3 over a
            cell subset — the bucketized per-level sweep, where the span
            indexes the *cells array*), ``"psu"`` (Eq. 18), or ``"agg"``
            (Eq. 11).
        spec: the sweep description (columns, per-column owner lists,
            and per-family extras — ``m_rows``, ``cells``,
            ``row_map``/``nonces``).
        z_span: for ``"agg"``, this span of the indicator-share matrix.

    Returns:
        The ``(rows, hi - lo)`` output block of the sweep.
    """
    store = server.store
    columns = spec["columns"]
    owners = spec["owners"]

    if family == "psi":
        # Eq. 3 / Eq. 7 span: sum, ⊖ A(m), mod δ, power-table lookup.
        delta = server.params.delta
        table = server.params.group.power_table
        m_rows = np.asarray(spec["m_rows"], dtype=np.int64)[:, None]
        share_lists = [
            [store.shard_slice(owner, column, lo, hi) for owner in col_owners]
            for column, col_owners in zip(columns, owners)
        ]
        out = np.empty((len(columns), hi - lo), dtype=np.int64)
        native = kernels.psi_sweep(share_lists, m_rows, delta, table, out)
        if native is not None:
            native(0, hi - lo)
            return out
        acc = np.zeros((len(columns), hi - lo), dtype=np.int64)
        for q, row_shares in enumerate(share_lists):
            row = acc[q]
            for s in row_shares:
                row += s
        acc -= m_rows
        np.mod(acc, delta, out=acc)
        return table[acc]

    if family == "psi_cells":
        # Eq. 3 over a cell subset: the kernel is cell-local, so the
        # span indexes the cells array (not χ) and the gathered cells
        # compute bit-identically to slicing the full sweep.
        delta = server.params.delta
        table = server.params.group.power_table
        span = np.asarray(spec["cells"][lo:hi], dtype=np.int64)
        m_rows = np.asarray(spec["m_rows"], dtype=np.int64)[:, None]
        share_lists = [
            [store.get(owner, column).values for owner in col_owners]
            for column, col_owners in zip(columns, owners)
        ]
        out = np.empty((len(columns), hi - lo), dtype=np.int64)
        native = kernels.psi_sweep(share_lists, m_rows, delta, table, out,
                                   cells=span)
        if native is not None:
            native(0, hi - lo)
            return out
        acc = np.zeros((len(columns), hi - lo), dtype=np.int64)
        for q, row_shares in enumerate(share_lists):
            row = acc[q]
            for s in row_shares:
                row += s[span]
        acc -= m_rows
        np.mod(acc, delta, out=acc)
        return table[acc]

    if family == "psu":
        # Eq. 18 span: per-unique-column sums, broadcast by row_map,
        # multiplied with this span of each row's mask stream.  The
        # counter-mode PRG is seekable (``integers_at``), so the worker
        # derives bits identical to slicing the full-length stream — and
        # mask generation, PSU's dominant cost, shards with the sweep.
        from repro.crypto.prg import SeededPRG
        delta = server.params.delta
        row_map = np.asarray(spec["row_map"], dtype=np.int64)
        share_lists = [
            [store.shard_slice(owner, column, lo, hi) for owner in col_owners]
            for column, col_owners in zip(columns, owners)
        ]
        prgs = [SeededPRG(server.params.prg_seed, f"psu-{nonce}")
                for nonce in spec["nonces"]]
        acc = np.zeros((len(columns), hi - lo), dtype=np.int64)
        out = np.empty((len(row_map), hi - lo), dtype=np.int64)
        native = kernels.psu_sweep(share_lists, acc, row_map,
                                   [prg.key_bytes for prg in prgs], delta,
                                   out, draw_base=lo)
        if native is not None:
            native(0, hi - lo)
            return out
        for u, col_shares in enumerate(share_lists):
            row = acc[u]
            for s in col_shares:
                row += s
        np.mod(acc, delta, out=acc)
        rand = np.stack([prg.integers_at(lo, hi - lo, 1, delta)
                         for prg in prgs])
        return np.mod(acc[row_map] * rand, delta)

    if family == "agg":
        # Eq. 11 span: Σ_j S(x_i2)_j × S(z_i) with per-term reduction.
        if z_span is None:
            raise ProtocolError("aggregation span needs its z matrix span")
        p = server.params.field_prime
        share_lists = [
            [store.shard_slice(owner, column, lo, hi) for owner in col_owners]
            for column, col_owners in zip(columns, owners)
        ]
        acc = np.zeros((len(columns), hi - lo), dtype=np.int64)
        native = kernels.agg_sweep(share_lists, np.asarray(z_span), p, acc)
        if native is not None:
            native(0, hi - lo)
            return acc
        for q, row_shares in enumerate(share_lists):
            z = z_span[q]
            row = acc[q]
            for s in row_shares:
                row += np.mod(s * z, p)
                np.mod(row, p, out=row)
        return acc

    raise ProtocolError(f"unknown shard kernel family {family!r}")


def _run_span(family: str, spec: dict, lo: int, hi: int) -> None:
    """Compute one shard span in a worker process, into the scratch."""
    state = _WORKER
    if state is None:  # pragma: no cover - initializer always runs first
        raise ProtocolError("shard worker used before initialisation")
    server = state["servers"][spec["server"]]
    scratch = state["scratch"]
    z_span = (scratch.in_buf[:len(spec["columns"]), lo:hi]
              if family == "agg" else None)
    out = compute_sweep_span(server, family, spec, lo, hi, z_span=z_span)
    scratch.out_buf[:out.shape[0], lo:hi] = out


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """GC/finalizer hook: tear a pool down without waiting."""
    pool.shutdown(wait=False, cancel_futures=True)


def _warm_worker() -> bool:
    """No-op task: forces the executor to actually fork a worker now."""
    return True


#: Scratch rows a prewarmed pool provisions.  Anonymous mmap pages are
#: allocated on first write, so provisioning generously costs only
#: virtual address space; batches fusing more rows than this trigger one
#: re-fork at dispatch time (re-binding a bigger scratch in the parent
#: would not reach the children — they hold a copy-on-write snapshot of
#: the scratch object, so growth genuinely requires a re-fork).
PREWARM_ROWS = 64


class ShardRuntime:
    """A persistent forked worker pool serving one deployment's servers.

    One runtime is shared by all of a system's servers (a task names its
    server by index), so a deployment pays for at most
    ``min(num_shards, cpu_count)`` worker processes regardless of how
    many servers dispatch sharded sweeps.

    The pool is created lazily on first dispatch and re-created when:

    * any server's store changed (version fingerprint) — forked workers
      hold a copy-on-write snapshot and must never compute over stale
      shares;
    * a call needs more scratch rows, a different χ length, or more
      workers than the current pool provides.

    Dispatch returns ``None`` — and the kernels fall back to threads —
    when fork is unavailable or the pool broke (e.g. a worker was
    killed); ``available`` stays false afterwards so later calls skip
    straight to the thread path.
    """

    def __init__(self, servers, max_workers: int | None = None):
        self._servers = {server.index: server for server in servers}
        self._max_workers = max_workers
        self._pool: ProcessPoolExecutor | None = None
        self._scratch: _Scratch | None = None
        self._fingerprint: tuple | None = None
        self._workers = 0
        self._broken = False
        self._finalizer = None
        # The scratch buffers and pool are shared by every caller of the
        # deployment (several clients, several servers): one dispatch at
        # a time, or concurrent calls would overwrite each other's
        # in/out rows.  RLock: the except path calls close() re-entrantly.
        self._lock = threading.RLock()
        #: Completed sharded dispatches (for tests / introspection).
        self.dispatches = 0

    @property
    def available(self) -> bool:
        """Whether sharded process execution can currently be attempted."""
        return processes_available() and not self._broken

    def close(self) -> None:
        """Shut the worker pool down (idempotent; a later dispatch re-forks)."""
        with self._lock:
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None
            # The scratch mmaps stay alive as long as numpy views
            # reference them; dropping the reference is the safe teardown.
            self._scratch = None
            self._fingerprint = None
            self._workers = 0

    # -- pool lifecycle -------------------------------------------------------

    def _store_fingerprint(self) -> tuple:
        return tuple(server.store.version
                     for server in self._servers.values())

    def _ensure(self, rows: int, cols: int, num_shards: int) -> None:
        """Fork (or re-fork) the pool so it matches the pending dispatch."""
        workers = min(num_shards, os.cpu_count() or 1)
        if self._max_workers is not None:
            workers = min(workers, self._max_workers)
        workers = max(1, workers)
        fingerprint = self._store_fingerprint()
        if (self._pool is not None
                and fingerprint == self._fingerprint
                and self._scratch is not None
                and self._scratch.rows >= rows
                and self._scratch.cols >= cols
                and self._workers >= workers):
            # A wider scratch serves narrower sweeps (cell-restricted
            # bucketized levels vary per round): spans index columns
            # ``[0, cols)`` of the shared buffers either way.
            return
        self.close()
        capacity = 1
        while capacity < rows:
            capacity *= 2
        self._scratch = _Scratch(capacity, cols)
        context = multiprocessing.get_context("fork")
        # initargs travel through the fork as object references: each
        # worker inherits THIS runtime's servers and scratch, so several
        # sharded deployments in one process never cross wires.
        self._pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=context,
            initializer=_worker_init,
            initargs=(self._servers, self._scratch))
        self._workers = workers
        self._fingerprint = fingerprint
        self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool)

    def prewarm(self, cols: int, num_shards: int,
                rows: int = PREWARM_ROWS) -> None:
        """Fork the pool (and its workers) now, from the calling thread.

        Forking a multi-threaded process is hazardous (and warns on
        Python ≥ 3.12): a child can inherit a lock some other thread
        held at fork time.  Deployments therefore prewarm right after
        outsourcing — while the process is still effectively
        single-threaded — so serving-time dispatches (which may come
        from the client's scheduler thread) find a fresh pool and never
        need to fork.  Only a store mutation or an oversized batch
        re-forks later.  Best-effort: failures just leave the thread
        fallback in charge.
        """
        if not self.available:
            return
        with self._lock:
            try:
                self._ensure(rows, cols, num_shards)
                # Submitting one trivial task per worker forces the
                # executor to spawn them all here and now.
                futures = [self._pool.submit(_warm_worker)
                           for _ in range(self._workers)]
                for future in futures:
                    future.result()
            except (BrokenProcessPool, OSError):
                self._broken = True
                self.close()

    # -- dispatch -------------------------------------------------------------

    def _dispatch(self, family: str, spec: dict, rows: int, n: int,
                  num_shards: int, in_matrix=None):
        """Run one fused sweep shard-parallel; ``None`` → caller falls back."""
        if not self.available:
            return None
        with self._lock:
            try:
                self._ensure(rows, n, num_shards)
                if in_matrix is not None:
                    self._scratch.in_buf[:rows, :n] = in_matrix
                futures = [
                    self._pool.submit(_run_span, family, spec, lo, hi)
                    for lo, hi in shard_bounds(n, num_shards)
                ]
                for future in futures:
                    future.result()
            except (BrokenProcessPool, OSError):
                # A worker died or the fork failed: disable process
                # execution for this runtime and let the kernel run its
                # thread fallback.
                self._broken = True
                self.close()
                return None
            self.dispatches += 1
            return self._scratch.out_buf[:rows, :n].copy()

    def run_psi(self, server, columns, owners_by_col, m_rows, n: int,
                num_shards: int):
        """Sharded fused Eq. 3 / Eq. 7 sweep (see ``psi_round_batch``)."""
        spec = {
            "server": server.index,
            "columns": list(columns),
            "owners": [list(owners) for owners in owners_by_col],
            "m_rows": [int(v) for v in np.ravel(m_rows)],
            "rows": len(columns),
        }
        return self._dispatch("psi", spec, len(columns), n, num_shards)

    def run_psi_cells(self, server, columns, owners_by_col, m_rows, cells,
                      num_shards: int):
        """Sharded cell-restricted Eq. 3 sweep (``psi_cells_round_batch``).

        Shards partition the *cells array*; each worker gathers its span
        of active cells straight from the copy-on-write store, so the
        bucketized per-level sweeps parallelise without ever
        materialising the pruned χ slices in the parent.
        """
        spec = {
            "server": server.index,
            "columns": list(columns),
            "owners": [list(owners) for owners in owners_by_col],
            "m_rows": [int(v) for v in np.ravel(m_rows)],
            "cells": [int(c) for c in cells],
            "rows": len(columns),
        }
        return self._dispatch("psi_cells", spec, len(columns), len(spec["cells"]),
                              num_shards)

    def run_psu(self, server, uniq_columns, owners_by_col, row_map,
                query_nonces, n: int, num_shards: int):
        """Sharded fused Eq. 18 sweep (see ``psu_round_batch``).

        Ships the query nonces, not the mask streams: each worker seeks
        the common PRG to its span (``integers_at``), exactly as the two
        non-communicating servers themselves derive the masks.
        """
        rows = len(query_nonces)
        spec = {
            "server": server.index,
            "columns": list(uniq_columns),
            "owners": [list(owners) for owners in owners_by_col],
            "row_map": [int(v) for v in row_map],
            "nonces": [int(nonce) for nonce in query_nonces],
            "rows": rows,
        }
        return self._dispatch("psu", spec, rows, n, num_shards)

    def run_agg(self, server, columns, owners_by_col, z_matrix, n: int,
                num_shards: int):
        """Sharded fused Eq. 11 sweep (see ``aggregate_round_batch``)."""
        spec = {
            "server": server.index,
            "columns": list(columns),
            "owners": [list(owners) for owners in owners_by_col],
            "rows": len(columns),
        }
        return self._dispatch("agg", spec, len(columns), n, num_shards,
                              in_matrix=z_matrix)


#: Minimum χ rows per shard before splitting pays for itself.  Below
#: this, ``benchmarks/bench_sharding.py`` measures the per-shard
#: dispatch overhead (task submission, result collection) eating the
#: parallel win for every kernel family, so ``num_shards="auto"`` keeps
#: such sweeps unsharded.
AUTO_ROWS_PER_SHARD = 16_384

#: χ length above which the forked worker pool beats the thread
#: fallback.  ``bench_sharding.py``'s crossover: the heavy kernels (the
#: PSU mask streams, Eq. 11's per-term reductions) amortise worker
#: dispatch from roughly this size, while the light Eq. 3 sweep favours
#: threads (free dispatch) below it.
AUTO_WORKER_MIN_ROWS = 65_536

#: Crossover scaling when the compiled kernel tier is active.  The C
#: sweeps cut the per-row cost ~2-9x (``benchmarks/bench_kernels.py``),
#: so each shard must carry proportionally more rows before the same
#: dispatch overhead amortises; re-measuring ``bench_sharding.py`` with
#: ``REPRO_KERNELS=c`` shows the single-shard compiled sweep beating
#: sharded numpy until roughly this multiple of the plain thresholds.
AUTO_NATIVE_ROWS_FACTOR = 4


def auto_shard_plan(rows: int, cpu_count: int | None = None
                    ) -> tuple[int, bool]:
    """Pick ``(num_shards, use_worker_pool)`` for a χ length.

    The ``num_shards="auto"`` heuristic: shard so every shard keeps at
    least :data:`AUTO_ROWS_PER_SHARD` rows, capped at the core count;
    run shards on the forked worker pool only past
    :data:`AUTO_WORKER_MIN_ROWS` (and only where fork exists), else on
    the zero-dispatch thread fallback.  Both thresholds come from the
    threads-vs-workers crossover measured by
    ``benchmarks/bench_sharding.py``, and scale by
    :data:`AUTO_NATIVE_ROWS_FACTOR` when the compiled kernel tier is
    active (cheaper rows push the crossover out).
    """
    rows_per_shard = AUTO_ROWS_PER_SHARD
    worker_min = AUTO_WORKER_MIN_ROWS
    if kernels.enabled():
        rows_per_shard *= AUTO_NATIVE_ROWS_FACTOR
        worker_min *= AUTO_NATIVE_ROWS_FACTOR
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    shards = min(max(1, cpus), max(1, rows // rows_per_shard))
    if shards <= 1:
        return 1, False
    use_workers = processes_available() and rows >= worker_min
    return shards, use_workers


def attach_sharding(servers, num_shards: int,
                    max_workers: int | None = None) -> ShardPlan:
    """Wire one shared :class:`ShardRuntime` onto a set of servers.

    Sets each server's default shard plan and marks its store
    shard-aware (contiguous partition bookkeeping).  Returns the plan,
    whose ``runtime`` the caller should :meth:`~ShardRuntime.close` when
    the deployment is torn down.
    """
    runtime = ShardRuntime(servers, max_workers=max_workers)
    plan = ShardPlan(num_shards, runtime)
    for server in servers:
        server.shard_plan = plan
        server.store.configure_sharding(num_shards)
    return plan
