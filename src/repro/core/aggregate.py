"""Summary aggregations over PSI/PSU: sum, average, and their verification
(§6.1–6.2).

Two rounds:

1. The PSI (or PSU) round establishes which cells are in the result set.
   Servers send the Eq. 3 output to one randomly selected owner — the
   *querier* — who rebuilds the 0/1 indicator ``z`` (replacing the random
   non-members with 0) and deals degree-1 Shamir shares of ``z`` to the
   three servers.
2. Each server computes ``Σ_j S(x_i2)_j × S(z_i)`` per cell (Eq. 11) and
   broadcasts; owners reconstruct the degree-2 result by Lagrange
   interpolation at the three points.

Average additionally aggregates the per-owner tuple-count column ``aA``
(the paper's ``aOK``) and divides.

Verification (interpretation of the full version's Table 11 ``v`` columns):
owners also outsourced ``PF_db1``-permuted copies of each aggregation
column.  The querier sends a second indicator vector — ``z`` permuted by
``PF_db1`` — and the owner checks that the un-permuted verified totals
match the primary totals cell-by-cell.  A server dropping or replaying
Eq. 11 cells cannot fake the pair without knowing ``PF_db1``.
"""

from __future__ import annotations

import numpy as np

from repro.core.psi import psi_column_name, run_psi
from repro.core.psu import run_psu
from repro.core.results import AggregateResult
from repro.exceptions import ProtocolError, VerificationError


def indicator_shares(system, owner, column: str, owner_ids, member,
                     permuted: bool = False) -> list:
    """Dealt Shamir shares of a 0/1 indicator, via the initiator's cache.

    The querier's Phase-2 share generation (§6.1 Step 3) is memoised in
    :class:`~repro.entities.initiator.IndicatorShareCache` so repeated or
    overlapping queries — the batch engine's bread and butter — skip the
    dealing round entirely.  ``permuted`` selects the verification stream
    (the ``PF_db1``-permuted copy of the indicator).

    Systems without an initiator cache (bare orchestration objects in
    tests) fall back to dealing fresh shares every time.
    """
    vector = member.astype(np.int64)
    stream = "z"
    if permuted:
        vector = owner.params.pf_db1.apply(vector)
        stream = "vz"
    cache = getattr(getattr(system, "initiator", None), "indicator_cache", None)
    if cache is None:
        return owner.shamir_shares_of(vector)
    key = cache.key(stream, owner.owner_id, column, owner_ids, vector)
    shares = cache.get(key)
    if shares is None:
        shares = owner.shamir_shares_of(vector)
        cache.put(key, shares)
    return shares


def _indicator_round(system, attribute, over: str, num_threads, querier,
                     owner_ids):
    """Round 1: run PSI or PSU and return (membership, timings-so-far)."""
    if over == "psi":
        round1 = run_psi(system, attribute, num_threads=num_threads,
                         querier=querier, owner_ids=owner_ids)
    elif over == "psu":
        round1 = run_psu(system, attribute, num_threads=num_threads,
                         querier=querier, owner_ids=owner_ids)
    else:
        raise ProtocolError(f"unknown set operation {over!r}")
    return round1


def run_aggregate(system, attribute: str, agg_attributes,
                  op: str = "sum", over: str = "psi", verify: bool = False,
                  num_threads: int | None = None, querier: int = 0,
                  owner_ids: list[int] | None = None) -> dict:
    """Sum or average of one or more attributes over PSI/PSU groups.

    Args:
        system: a :class:`~repro.core.system.PrismSystem`.
        attribute: the set-operation attribute ``A_c``.
        agg_attributes: attribute name or list of names to aggregate
            (Table 12 sweeps 1–4 of them in one query).
        op: ``"sum"`` or ``"avg"``.
        over: ``"psi"`` or ``"psu"``.
        verify: run the permuted-copy consistency check.
        num_threads: server-side threads.
        querier: the owner that generates the ``z`` shares.
        owner_ids: restrict to a subset of owners.

    Returns:
        Mapping of aggregation attribute → :class:`AggregateResult`.
    """
    if op not in ("sum", "avg"):
        raise ProtocolError(f"unsupported summary aggregation {op!r}")
    if isinstance(agg_attributes, str):
        agg_attributes = [agg_attributes]
    if not agg_attributes:
        raise ProtocolError("no aggregation attributes given")
    threads = num_threads if num_threads is not None else system.num_threads
    transport = system.transport
    owner = system.owners[querier]

    round1 = _indicator_round(system, attribute, over, threads, querier,
                              owner_ids)
    timings = round1.timings
    member = round1.membership

    # Round 2: the querier deals z shares to all three servers.
    transport.begin_round(f"{over}-{op}")
    indicator_column = psi_column_name(attribute)
    with timings.measure("owner"):
        z_shares = indicator_shares(system, owner, indicator_column,
                                    owner_ids, member)
        vz_shares = (indicator_shares(system, owner, indicator_column,
                                      owner_ids, member, permuted=True)
                     if verify else None)
    for server, z in zip(system.servers[:3], z_shares):
        transport.transfer(owner.endpoint, server.endpoint, "z-shares", z)
    if verify:
        for server, vz in zip(system.servers[:3], vz_shares):
            transport.transfer(owner.endpoint, server.endpoint, "vz-shares", vz)

    want_counts = op == "avg"
    count_column = "a" + psi_column_name(attribute)
    sums_by_attr: dict[str, list[np.ndarray]] = {a: [] for a in agg_attributes}
    vsums_by_attr: dict[str, list[np.ndarray]] = {a: [] for a in agg_attributes}
    count_outputs: list[np.ndarray] = []
    for server, z in zip(system.servers[:3], z_shares):
        for agg in agg_attributes:
            with timings.measure("fetch"):
                shares = server.fetch_shamir(agg, owner_ids)
            with timings.measure("server"):
                out = server.aggregate_round(agg, z, threads, owner_ids, shares)
            transport.broadcast(server.endpoint,
                                [o.endpoint for o in system.owners],
                                f"agg-{agg}", out)
            sums_by_attr[agg].append(out)
            if verify:
                vz = vz_shares[system.servers.index(server)]
                with timings.measure("fetch"):
                    vshares = server.fetch_shamir("v" + agg, owner_ids)
                with timings.measure("server"):
                    vout = server.aggregate_round("v" + agg, vz, threads,
                                                  owner_ids, vshares)
                transport.broadcast(server.endpoint,
                                    [o.endpoint for o in system.owners],
                                    f"vagg-{agg}", vout)
                vsums_by_attr[agg].append(vout)
        if want_counts:
            with timings.measure("fetch"):
                cshares = server.fetch_shamir(count_column, owner_ids)
            with timings.measure("server"):
                cout = server.aggregate_round(count_column, z, threads,
                                              owner_ids, cshares)
            transport.broadcast(server.endpoint,
                                [o.endpoint for o in system.owners],
                                "agg-count", cout)
            count_outputs.append(cout)

    results: dict[str, AggregateResult] = {}
    with timings.measure("owner"):
        counts = owner.finalize_aggregate(count_outputs) if want_counts else None
        for agg in agg_attributes:
            totals = owner.finalize_aggregate(sums_by_attr[agg])
            verified = False
            if verify:
                vtotals = owner.finalize_aggregate(vsums_by_attr[agg])
                expect = owner.params.pf_db1.apply(totals)
                bad = np.nonzero(vtotals != expect)[0]
                if bad.size:
                    raise VerificationError(
                        f"aggregation verification failed for {agg!r} at "
                        f"{bad.size} cells",
                        failed_cells=bad.tolist(),
                    )
                verified = True
            per_value = {}
            for cell in np.nonzero(member)[0]:
                value = owner.params.domain.value_of(int(cell))
                if op == "sum":
                    per_value[value] = int(totals[cell])
                else:
                    c = int(counts[cell])
                    per_value[value] = int(totals[cell]) / c if c else 0.0
            results[agg] = AggregateResult(
                per_value=per_value, timings=timings,
                traffic=transport.stats.summary(), verified=verified,
            )
    return results


def aggregate_reference(relations, attribute: str, agg_attribute: str,
                        values, op: str = "sum") -> dict:
    """Plaintext oracle for sum/avg over a given result-set of values."""
    out = {}
    for value in values:
        total = 0
        count = 0
        for rel in relations:
            for k, v in zip(rel.column(attribute), rel.column(agg_attribute)):
                if k == value:
                    total += v
                    count += 1
        out[value] = total if op == "sum" else (total / count if count else 0.0)
    return out
