"""Round-decomposed interactive kernels (§6.3, §6.4, §6.6).

The interactive Table-4 kinds — MAX/MIN, MEDIAN, bucketized PSI — are
multi-round protocols: every round ends at an entity hand-off (owners →
servers → announcer → owners, or one bucket-tree level), and the next
round's inputs depend on the previous round's outputs.  They can never
fuse into one data-independent sweep, but each round's *server-side
sweep* is exactly as shard-parallel as the batchable kernels' sweeps.

This module makes both facts structural:

* Every interactive kind is an :class:`InteractiveProgram` — an explicit
  state machine whose :meth:`~InteractiveProgram.step` executes one
  round and whose cross-round state lives on the program object.  The
  :class:`~repro.api.executor.Executor` owns the round loop (and the
  client scheduler interleaves rounds of in-flight interactive queries
  with fused batch ticks); the legacy ``run_extrema`` / ``run_median`` /
  ``run_bucketized_psi`` entry points are thin drivers over the same
  programs.
* The per-round sweeps dispatch through the sharded batch kernels:
  round 1 (PSI) runs via
  :meth:`~repro.entities.server.PrismServer.psi_round_batch` and each
  bucket-tree level via
  :meth:`~repro.entities.server.PrismServer.psi_cells_round_batch`, so a
  deployment's :class:`~repro.core.sharding.ShardPlan` — worker pool,
  thread fallback, per-row fallback for malicious / instrumented server
  subclasses, span-scoped RPC frames on remote deployments — applies to
  interactive traffic exactly as it does to batch traffic.  Outputs are
  bit-identical to the historical single-threaded sweeps for every
  shard count and deployment mode (pinned by
  ``tests/test_interactive_matrix.py``).

The owner/announcer round bodies are unchanged from the sequential
runners — same call order, same PRG draws — which is what keeps results
bit-identical to the seed implementation.

Timing caveat: the per-round sweeps fetch shares inside the batched
kernels, so — exactly like the fused batch engine (see
:mod:`repro.core.batch`) — the data-fetch step is folded into the
``server`` phase of :class:`~repro.core.results.PhaseTimings`; the
``fetch`` phase of an interactive result is therefore empty.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.bucketized import BucketTree, level_column
from repro.core.psi import psi_column_name
from repro.core.results import (
    ExtremaResult,
    MedianResult,
    PhaseTimings,
    SetResult,
)
from repro.exceptions import ProtocolError, QueryError, VerificationError


class InteractiveProgram:
    """One interactive query as an explicit, executor-driven state machine.

    Subclasses implement :meth:`_rounds` as a generator that yields once
    per protocol round and leaves the final result in ``self._result``.
    The driver — the executor, the client scheduler, or the legacy
    ``run_*`` shims via :meth:`run` — calls :meth:`step` until
    :attr:`done`; cross-round state lives in the generator frame and on
    the program object, never inside a kernel-owned loop.

    **Mid-round failover.**  Round state commits to the program object
    only at the *end* of a round — after the last entity hand-off,
    right before the ``yield`` — so a round that dies mid-flight with
    :class:`~repro.network.dispatch.ConnectionLost` (a pool member
    crashed faster than the dispatch layer could fail over) leaves no
    partial state behind.  :meth:`step` then discards the generator and
    the next step re-enters :meth:`_rounds`, which skips every
    committed round and re-runs only the torn one.  Re-running is safe:
    the server-side sweeps are idempotent reads of replicated state,
    and blinding randomness is drawn fresh per round — the verify path
    proves independent blindings recover identical values, which is
    exactly why a re-blinded retry stays bit-identical in the fields
    results compare.
    """

    #: How many transport failures one program absorbs before the
    #: failure surfaces (guards against a pool that never heals).
    max_resumes = 3

    def __init__(self):
        self._generator = None
        self._result = None
        self._done = False
        self._failed = False
        #: Rounds completed so far (scheduler stats / tests).
        self.rounds_completed = 0
        #: Mid-round failovers absorbed so far (health / tests).
        self.rounds_resumed = 0

    @property
    def done(self) -> bool:
        """Whether every round has executed and the result is ready."""
        return self._done

    def step(self) -> None:
        """Execute exactly one protocol round.

        Raises whatever the round raises (e.g.
        :class:`~repro.exceptions.VerificationError`); a program whose
        round raised is poisoned — further stepping raises loudly
        instead of draining the dead generator into a ``None`` result.
        The exception: a transport-level :class:`ConnectionLost` is
        absorbed up to :attr:`max_resumes` times — the torn round is
        re-entered on the next step (see the class docstring).
        """
        if self._done:
            raise ProtocolError("interactive program already finished")
        if self._failed:
            raise ProtocolError(
                "interactive program failed in an earlier round")
        if self._generator is None:
            self._generator = self._rounds()
        try:
            next(self._generator)
        except StopIteration:
            self._done = True
        except BaseException as exc:
            if self._resumable(exc):
                self.rounds_resumed += 1
                self._generator = None
                # Give an ejected pool seat (or its supervisor) a beat
                # before re-entering — resumes are capped, so a pool
                # that heals in milliseconds must not burn them all.
                time.sleep(min(0.1 * self.rounds_resumed, 0.5))
                return
            self._failed = True
            raise
        else:
            self.rounds_completed += 1

    def _resumable(self, exc: BaseException) -> bool:
        if self.rounds_resumed >= self.max_resumes:
            return False
        from repro.network.dispatch import ConnectionLost
        return isinstance(exc, ConnectionLost)

    def result(self):
        """The final result object (only after :attr:`done`)."""
        if not self._done:
            raise ProtocolError(
                "interactive program still has rounds to run")
        return self._result

    def run(self):
        """Drive the program to completion; returns the result."""
        while not self._done:
            self.step()
        return self.result()

    def _rounds(self):
        raise NotImplementedError


# -- shared round-1 sweep ------------------------------------------------------


def sharded_psi_round(system, attribute, num_threads, shard_plan, timings,
                      querier: int):
    """Round 1 of an interactive kernel: the Eq. 3 sweep, shard-parallel.

    Dispatches through :meth:`psi_round_batch` (a batch of one row), so
    the deployment's shard plan — or ``shard_plan`` as a per-call
    override — applies, with the full fallback ladder; the output row is
    bit-identical to the historical 1-D ``psi_round`` sweep.  Returns
    the decoded common values, exactly as the owners learn them.
    """
    transport = system.transport
    column = psi_column_name(attribute)
    owner = system.owners[querier]
    receivers = [o.endpoint for o in system.owners]
    transport.begin_round("psi")
    outputs = []
    for server in system.servers[:2]:
        with timings.measure("server"):
            out = server.psi_round_batch([column], num_threads,
                                         shard_plan=shard_plan)[0]
        transport.broadcast(server.endpoint, receivers, "psi-output", out)
        outputs.append(out)
    with timings.measure("owner"):
        fop = owner.finalize_psi(outputs[0], outputs[1])
        member = owner.psi_membership(fop)
        return owner.decode_cells(member, attribute)


# -- extrema / median round bodies (§6.3–6.4) ----------------------------------


def collect_blinded_shares(system, owners, psi_attribute, agg_attribute,
                           value, kind, timings):
    """Steps 3–4 share collection: owner → servers, with traffic recorded.

    Returns per-server dicts ``owner_id -> share`` plus each owner's local
    value (kept for the 5b round; never transmitted).
    """
    transport = system.transport
    server_shares = [dict(), dict()]
    local_values = {}
    for owner in owners:
        with timings.measure("owner"):
            if kind == "min":
                local = owner.local_group_min(psi_attribute, agg_attribute, value)
            elif kind == "median":
                local = owner.local_group_sum(psi_attribute, agg_attribute, value)
            else:
                local = owner.local_group_max(psi_attribute, agg_attribute, value)
            if local is None:
                raise ProtocolError(
                    f"owner {owner.owner_id} has no tuples for common value "
                    f"{value!r}; PSI guarantees it should"
                )
            blinded = owner.blind_value(int(local))
            shares = owner.extrema_shares(blinded)
        local_values[owner.owner_id] = int(local)
        for phi, server in enumerate(system.servers[:2]):
            transport.transfer(owner.endpoint, server.endpoint,
                               "extrema-share", shares[phi])
            server_shares[phi][owner.owner_id] = shares[phi]
    return server_shares, local_values


def announce(system, server_shares, kind, timings):
    """Step 4 at servers + announcer; returns the announcer's share dict."""
    transport = system.transport
    permuted = []
    for phi, server in enumerate(system.servers[:2]):
        with timings.measure("server"):
            arr = server.extrema_collect(server_shares[phi])
        transport.transfer(server.endpoint, system.announcer.endpoint,
                           "extrema-array", arr)
        permuted.append(arr)
    with timings.measure("announcer"):
        if kind == "min":
            return system.announcer.announce_min(permuted[0], permuted[1])
        if kind == "median":
            return system.announcer.announce_median(permuted[0], permuted[1])
        return system.announcer.announce_max(permuted[0], permuted[1])


def route_back(system, share_pair):
    """Announcer → servers → owners share forwarding, with accounting."""
    transport = system.transport
    s1, s2 = share_pair
    for phi, share in ((0, s1), (1, s2)):
        server = system.servers[phi]
        transport.transfer(system.announcer.endpoint, server.endpoint,
                           "announce-share", share)
        for owner in system.owners:
            transport.transfer(server.endpoint, owner.endpoint,
                               "announce-share", server.forward(share))
    return s1, s2


class ExtremaProgram(InteractiveProgram):
    """§6.3 MAX/MIN as rounds: one PSI round, then one round per value.

    Each per-value round runs Steps 3–5 (plus the optional verification
    re-blinding and the Steps 5b–7 identity round) for one common value.
    Argument semantics match :func:`repro.core.extrema.run_extrema`;
    ``shard_plan`` overrides the deployment's χ-shard plan for the PSI
    sweep (``None`` keeps the servers' default).
    """

    def __init__(self, system, attribute, agg_attribute, kind: str = "max",
                 reveal_holders: bool = True, verify: bool = False,
                 num_threads: int | None = None, querier: int = 0,
                 common_values=None, shard_plan=None):
        super().__init__()
        if kind not in ("max", "min"):
            raise ProtocolError(f"unknown extremum kind {kind!r}")
        self.system = system
        self.attribute = attribute
        self.agg_attribute = agg_attribute
        self.kind = kind
        self.reveal_holders = reveal_holders
        self.verify = verify
        self.num_threads = (num_threads if num_threads is not None
                            else system.num_threads)
        self.querier = querier
        self.common_values = common_values
        self.shard_plan = shard_plan
        self.timings = PhaseTimings()
        # Committed per-round state (survives a mid-round resume; a
        # value present here is never re-run).
        self._per_value: dict = {}
        self._holders: dict = {}

    def _rounds(self):
        system = self.system
        transport = system.transport
        owners = system.owners
        timings = self.timings
        kind = self.kind
        if self.common_values is None:
            self.common_values = sharded_psi_round(
                system, self.attribute, self.num_threads, self.shard_plan,
                timings, self.querier)
            yield

        per_value = self._per_value
        holders = self._holders
        for value in self.common_values:
            if value in per_value:
                continue  # committed before a resume re-entered
            transport.begin_round(f"extrema-{kind}")
            server_shares, local_values = collect_blinded_shares(
                system, owners, self.attribute, self.agg_attribute, value,
                kind, timings)
            announced = announce(system, server_shares, kind, timings)
            v1, v2 = route_back(system, announced["value"])
            i1, i2 = route_back(system, announced["index"])

            with timings.measure("owner"):
                extremum = owners[self.querier].recover_extremum(v1, v2)
                first_holder = owners[self.querier].recover_owner_identity(
                    i1, i2)
            value_holders = [first_holder]

            if self.verify:
                transport.begin_round(f"extrema-{kind}-verify")
                shares2, _ = collect_blinded_shares(
                    system, owners, self.attribute, self.agg_attribute,
                    value, kind, timings)
                announced2 = announce(system, shares2, kind, timings)
                w1, w2 = route_back(system, announced2["value"])
                with timings.measure("owner"):
                    recheck = owners[self.querier].recover_extremum(w1, w2)
                if recheck != extremum:
                    raise VerificationError(
                        f"extrema verification failed for {value!r}: "
                        f"{extremum} vs {recheck} across independent blindings"
                    )

            if self.reveal_holders:
                transport.begin_round("extrema-fpos")
                alpha = [dict(), dict()]
                for owner in owners:
                    with timings.measure("owner"):
                        holds = owner.holds_extremum(
                            local_values[owner.owner_id], extremum)
                        shares = owner.alpha_shares(holds)
                    for phi, server in enumerate(system.servers[:2]):
                        transport.transfer(owner.endpoint, server.endpoint,
                                           "alpha-share", shares[phi])
                        alpha[phi][owner.owner_id] = shares[phi]
                fpos = []
                for phi, server in enumerate(system.servers[:2]):
                    with timings.measure("server"):
                        vec = server.fpos_round(alpha[phi])
                    for owner in owners:
                        transport.transfer(server.endpoint, owner.endpoint,
                                           "fpos", vec)
                    fpos.append(vec)
                with timings.measure("owner"):
                    flags = owners[self.querier].finalize_fpos(fpos[0],
                                                               fpos[1])
                value_holders = [i for i, f in enumerate(flags) if f == 1]
            # Commit point: every hand-off for this value succeeded.
            per_value[value] = extremum
            holders[value] = value_holders
            yield

        self._result = ExtremaResult(per_value=per_value, holders=holders,
                                     timings=timings,
                                     traffic=transport.stats.summary())


class MedianProgram(InteractiveProgram):
    """§6.4 MEDIAN as rounds: one PSI round, then one round per value.

    ``verify`` is rejected with the same typed error the plan IR raises
    (:class:`~repro.exceptions.QueryError`) — the median protocol has no
    verification stream, and the shim and API paths must fail alike.
    """

    def __init__(self, system, attribute, agg_attribute,
                 verify: bool = False, num_threads: int | None = None,
                 querier: int = 0, common_values=None, shard_plan=None):
        super().__init__()
        if verify:
            raise QueryError("MEDIAN has no verification stream")
        self.system = system
        self.attribute = attribute
        self.agg_attribute = agg_attribute
        self.num_threads = (num_threads if num_threads is not None
                            else system.num_threads)
        self.querier = querier
        self.common_values = common_values
        self.shard_plan = shard_plan
        self.timings = PhaseTimings()
        self._per_value: dict = {}

    def _rounds(self):
        system = self.system
        transport = system.transport
        owners = system.owners
        timings = self.timings
        if self.common_values is None:
            self.common_values = sharded_psi_round(
                system, self.attribute, self.num_threads, self.shard_plan,
                timings, self.querier)
            yield

        per_value = self._per_value
        for value in self.common_values:
            if value in per_value:
                continue  # committed before a resume re-entered
            transport.begin_round("median")
            server_shares, _ = collect_blinded_shares(
                system, owners, self.attribute, self.agg_attribute, value,
                "median", timings)
            announced = announce(system, server_shares, "median", timings)
            low = route_back(system, announced["low"])
            with timings.measure("owner"):
                low_value = owners[self.querier].recover_extremum(*low)
            if announced["high"] is None:
                per_value[value] = low_value
            else:
                high = route_back(system, announced["high"])
                with timings.measure("owner"):
                    high_value = owners[self.querier].recover_extremum(*high)
                per_value[value] = (low_value + high_value) / 2
            yield

        self._result = MedianResult(per_value=per_value, timings=timings,
                                    traffic=transport.stats.summary())


class BucketizedPsiProgram(InteractiveProgram):
    """§6.6 bucketized PSI as rounds: one round per bucket-tree level.

    Each level's sweep runs through
    :meth:`~repro.entities.server.PrismServer.psi_cells_round_batch`
    restricted to the active nodes — shard-parallel under the
    deployment's (or the per-call) shard plan, server-side on remote
    deployments (the active cell indices travel, never the χ shares),
    and bit-identical to the historical slice-then-sweep path.  The
    result is the ``(SetResult, stats)`` pair of
    :func:`repro.core.bucketized.run_bucketized_psi`.
    """

    def __init__(self, system, attribute, tree: BucketTree,
                 num_threads: int | None = None, querier: int = 0,
                 announcer_driven: bool = False, shard_plan=None):
        super().__init__()
        self.system = system
        self.attribute = attribute
        self.tree = tree
        self.num_threads = (num_threads if num_threads is not None
                            else system.num_threads)
        self.querier = querier
        self.announcer_driven = announcer_driven
        self.shard_plan = shard_plan
        self.timings = PhaseTimings()
        # Committed per-round cursor: which level runs next and which
        # nodes are active there.  Counters commit with the cursor at
        # each round's end, so a mid-round resume re-runs the torn
        # level without double-counting it.
        self._level = tree.top_level
        self._active = np.arange(tree.level_sizes[tree.top_level],
                                 dtype=np.int64)
        self._actual_domain_size = 0
        self._numbers_sent = 0
        self._rounds_run = 0

    def _rounds(self):
        system = self.system
        tree = self.tree
        transport = system.transport
        owner = system.owners[self.querier]
        timings = self.timings

        while self._level >= 0 and self._active.size:
            level = self._level
            active = self._active
            column = (psi_column_name(self.attribute) if level == 0
                      else level_column(self.attribute, level))
            transport.begin_round(f"bucketized-psi-L{level}")
            outputs = []
            numbers_sent_round = 0
            route_to_announcer = self.announcer_driven and level > 0
            receivers = ([system.announcer.endpoint] if route_to_announcer
                         else [o.endpoint for o in system.owners])
            for server in system.servers[:2]:
                with timings.measure("server"):
                    out = server.psi_cells_round_batch(
                        [column], active, self.num_threads,
                        shard_plan=self.shard_plan)[0]
                for receiver in receivers:
                    transport.transfer(server.endpoint, receiver,
                                       f"bucketized-output-L{level}", out)
                numbers_sent_round += int(out.size)
                outputs.append(out)
            if route_to_announcer:
                with timings.measure("announcer"):
                    common = system.announcer.find_common_cells(outputs[0],
                                                                outputs[1])
                    common_nodes = active[np.asarray(common, dtype=np.int64)] \
                        if common else np.asarray([], dtype=np.int64)
            else:
                with timings.measure("owner"):
                    fop = owner.finalize_psi(outputs[0], outputs[1])
                    common_nodes = active[fop == 1]
            # Commit point: every hand-off for this level succeeded.
            self._rounds_run += 1
            self._actual_domain_size += int(active.size)
            self._numbers_sent += numbers_sent_round
            if level == 0:
                member = np.zeros(tree.level_sizes[0], dtype=bool)
                member[common_nodes] = True
                values = owner.decode_cells(member, self.attribute)
                result = SetResult(values=values, membership=member,
                                   timings=timings,
                                   traffic=transport.stats.summary())
                self._result = (result, self._level_stats())
                self._level = -1
                # Yield so the leaf round is counted like every other
                # round (the generator finishes on the next step).
                yield
                return
            self._active = tree.children_of(level, common_nodes)
            self._level = level - 1
            yield

        # No active nodes survived above the leaves: empty intersection
        # (unless a resume re-entered after the leaf round committed).
        if self._result is None:
            member = np.zeros(tree.level_sizes[0], dtype=bool)
            result = SetResult(values=[], membership=member, timings=timings,
                               traffic=transport.stats.summary())
            self._result = (result, self._level_stats())

    def _level_stats(self) -> dict:
        return {
            "actual_domain_size": self._actual_domain_size,
            "numbers_sent": self._numbers_sent,
            "rounds": self._rounds_run,
            "flat_domain_size": self.tree.level_sizes[0],
        }
