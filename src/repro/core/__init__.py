"""Core Prism protocols and the high-level system facade."""

from repro.core.aggregate import aggregate_reference, run_aggregate
from repro.core.batch import BatchQuery, QueryBatch, run_batch
from repro.core.bucketized import (
    BucketTree,
    run_bucketized_psi,
    simulate_actual_domain_size,
)
from repro.core.count import run_psi_count, run_psu_count
from repro.core.extrema import (
    extrema_reference,
    median_reference,
    run_extrema,
    run_median,
)
from repro.core.interactive import (
    BucketizedPsiProgram,
    ExtremaProgram,
    InteractiveProgram,
    MedianProgram,
)
from repro.core.params import (
    AnnouncerParams,
    OwnerParams,
    ServerGroupView,
    ServerParams,
)
from repro.core.psi import psi_reference, run_psi
from repro.core.psu import psu_reference, run_psu
from repro.core.query import QueryPlan, parse_query, run_query
from repro.core.results import (
    AggregateResult,
    CountResult,
    ExtremaResult,
    MedianResult,
    PhaseTimings,
    SetResult,
)
from repro.core.system import NUM_SERVERS, PrismSystem

__all__ = [
    "AggregateResult",
    "AnnouncerParams",
    "BatchQuery",
    "BucketTree",
    "BucketizedPsiProgram",
    "CountResult",
    "ExtremaProgram",
    "ExtremaResult",
    "InteractiveProgram",
    "MedianProgram",
    "MedianResult",
    "NUM_SERVERS",
    "OwnerParams",
    "PhaseTimings",
    "PrismSystem",
    "QueryBatch",
    "QueryPlan",
    "ServerGroupView",
    "ServerParams",
    "SetResult",
    "aggregate_reference",
    "extrema_reference",
    "median_reference",
    "parse_query",
    "psi_reference",
    "psu_reference",
    "run_aggregate",
    "run_batch",
    "run_bucketized_psi",
    "run_extrema",
    "run_median",
    "run_psi",
    "run_psi_count",
    "run_psu",
    "run_psu_count",
    "run_query",
    "simulate_actual_domain_size",
]
