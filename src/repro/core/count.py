"""PSI/PSU cardinality queries (§6.5).

PSI-Count is PSI with one extra server-side step: the output vector is
permuted with ``PF_s1`` (unknown to owners) before transmission.  Owners
still finalise with Eq. 4 and count the ones — the cardinality — but the
positions of those ones no longer identify domain values.

Count *verification* uses the Eq. (1) permutation quadruple: the data
stream runs over χ pre-permuted with ``PF_db1`` (column ``cA``) and gets
``PF_s1`` applied server-side; the complement stream runs over χ̄
pre-permuted with ``PF_db2`` (column ``cvA``) and gets ``PF_s2`` applied.
Both therefore arrive permuted by the same unknown ``PF_i``, so the owner
can pair cell *i* of the result with cell *i* of the proof and check
``r1 * r2 == 1 (mod eta)`` — without learning any positions.
"""

from __future__ import annotations

import numpy as np

from repro.core.psi import psi_column_name
from repro.core.results import CountResult, PhaseTimings
from repro.exceptions import VerificationError


def run_psi_count(system, attribute: str | tuple, verify: bool = False,
                  num_threads: int | None = None, querier: int = 0,
                  owner_ids: list[int] | None = None) -> CountResult:
    """Cardinality of the intersection, revealing nothing else.

    With ``verify=True`` the Eq. (1)-paired complement stream is checked;
    requires the system to have been outsourced ``with_verification``.
    """
    threads = num_threads if num_threads is not None else system.num_threads
    base = psi_column_name(attribute)
    # Verified counts read the pre-permuted columns; plain counts read the
    # ordinary χ column (servers permute either way).
    column = ("c" + base) if verify else base
    timings = PhaseTimings()
    transport = system.transport
    owner = system.owners[querier]

    transport.begin_round("psi-count")
    outputs = []
    vouts = []
    for server in system.servers[:2]:
        with timings.measure("fetch"):
            shares = server.fetch_additive(column, owner_ids)
            vshares = (server.fetch_additive("cv" + base, owner_ids)
                       if verify else None)
        with timings.measure("server"):
            out = server.count_round(column, threads, owner_ids, shares)
            vout = (server.count_verification_round("cv" + base, threads,
                                                    owner_ids, vshares)
                    if verify else None)
        receivers = [o.endpoint for o in system.owners]
        transport.broadcast(server.endpoint, receivers, "count-output", out)
        outputs.append(out)
        if verify:
            transport.broadcast(server.endpoint, receivers, "count-vout", vout)
            vouts.append(vout)

    with timings.measure("owner"):
        fop = owner.finalize_psi(outputs[0], outputs[1])
        count = int(np.count_nonzero(fop == 1))
        if verify:
            eta = owner.params.eta
            r2 = np.mod(np.mod(vouts[0], eta) * np.mod(vouts[1], eta), eta)
            proof = np.mod(fop * r2, eta)
            bad = np.nonzero(proof != 1)[0]
            if bad.size:
                raise VerificationError(
                    f"count verification failed at {bad.size} cells",
                    failed_cells=bad.tolist(),
                )

    return CountResult(count=count, timings=timings,
                       traffic=transport.stats.summary())


def run_psu_count(system, attribute: str | tuple,
                  num_threads: int | None = None, querier: int = 0,
                  owner_ids: list[int] | None = None) -> CountResult:
    """Cardinality of the union, revealing nothing else.

    Servers permute the PSU output with ``PF_s1`` before transmission, the
    exact §6.5 trick applied to Eq. 18 output.
    """
    threads = num_threads if num_threads is not None else system.num_threads
    column = psi_column_name(attribute)
    nonce = system.next_nonce()
    timings = PhaseTimings()
    transport = system.transport
    owner = system.owners[querier]

    transport.begin_round("psu-count")
    outputs = []
    for server in system.servers[:2]:
        with timings.measure("fetch"):
            shares = server.fetch_additive(column, owner_ids)
        with timings.measure("server"):
            out = server.psu_round(column, nonce, threads, owner_ids, shares)
            out = server.params.pf_s1.apply(out)
        transport.broadcast(server.endpoint,
                            [o.endpoint for o in system.owners],
                            "psu-count-output", out)
        outputs.append(out)

    with timings.measure("owner"):
        member = owner.finalize_psu(outputs[0], outputs[1])
        count = int(np.count_nonzero(member))

    return CountResult(count=count, timings=timings,
                       traffic=transport.stats.summary())
