"""Bucketization-based PSI over large / multi-attribute domains (§6.6).

A κ-ary *bucket tree* is built bottom-up over the χ cells: a node is 1 iff
any of its children is 1.  PSI then proceeds top-down: run the §5.1 kernel
over one level's (active) nodes, keep only the common ones, and descend
into their children.  Sparse data prunes most of the domain; dense data
degenerates to (slightly worse than) flat PSI — the trade-off Fig. 5
quantifies via the *actual domain size*: the total number of nodes on
which PSI executes, versus the real domain size ``b``.

Two artefacts live here:

* :func:`run_bucketized_psi` — the real multi-round protocol over secret
  shares (owners outsource one χ table per tree level).
* :func:`simulate_actual_domain_size` — the pure counting model behind
  Fig. 5, usable at the paper's 100M scale because it never materialises
  shares.
"""

from __future__ import annotations

import numpy as np

from repro.core.psi import psi_column_name
from repro.core.results import SetResult
from repro.exceptions import ParameterError


class BucketTree:
    """Shape of a κ-ary bucket tree over ``num_leaves`` cells.

    ``level_sizes[0]`` is the leaf level (``num_leaves``); the last level
    is the highest one with more than one node (the root itself is never
    queried — PSI starts at the root's children).
    """

    def __init__(self, num_leaves: int, fanout: int):
        if fanout < 2:
            raise ParameterError("bucket-tree fanout must be at least 2")
        if num_leaves < 1:
            raise ParameterError("bucket tree needs at least one leaf")
        self.fanout = fanout
        self.level_sizes = [num_leaves]
        while self.level_sizes[-1] > fanout:
            size = (self.level_sizes[-1] + fanout - 1) // fanout
            self.level_sizes.append(size)

    @property
    def num_levels(self) -> int:
        return len(self.level_sizes)

    @property
    def top_level(self) -> int:
        return self.num_levels - 1

    def parent_level(self, indicator: np.ndarray) -> np.ndarray:
        """One level up: node is 1 iff any child is 1."""
        k = self.fanout
        n = indicator.shape[0]
        padded = np.zeros(((n + k - 1) // k) * k, dtype=indicator.dtype)
        padded[:n] = indicator
        return (padded.reshape(-1, k).max(axis=1) > 0).astype(np.int64)

    def all_levels(self, leaf_indicator: np.ndarray) -> list[np.ndarray]:
        """Per-level indicator vectors, leaves first."""
        leaf_indicator = np.asarray(leaf_indicator, dtype=np.int64)
        if leaf_indicator.shape[0] != self.level_sizes[0]:
            raise ParameterError(
                f"leaf indicator length {leaf_indicator.shape[0]} does not "
                f"match tree with {self.level_sizes[0]} leaves"
            )
        levels = [leaf_indicator]
        for size in self.level_sizes[1:]:
            up = self.parent_level(levels[-1])
            levels.append(up[:size])
        return levels

    def children_of(self, level: int, nodes: np.ndarray) -> np.ndarray:
        """Child cell indices (at ``level - 1``) of the given nodes."""
        k = self.fanout
        child_size = self.level_sizes[level - 1]
        kids = (nodes[:, None] * k + np.arange(k)[None, :]).ravel()
        return kids[kids < child_size]


def level_column(attribute, level: int) -> str:
    """Stored-column name for one bucket-tree level of an attribute."""
    return f"{psi_column_name(attribute)}@L{level}"


def outsource_bucketized(system, attribute, fanout: int) -> BucketTree:
    """Phase 1 for bucketized PSI: per-level χ shares to the servers.

    The leaf level reuses the ordinary PSI column; upper levels are stored
    as ``A@L<level>``.
    """
    tree = BucketTree(system.domain.size, fanout)
    from repro.data.storage import ShareKind  # local to avoid cycle at import
    for owner in system.owners:
        leaf = owner.build_indicator(attribute)
        levels = tree.all_levels(leaf)
        for level in range(1, tree.num_levels):
            for server, share in zip(
                    system.servers[:2],
                    owner.additive_shares_of(levels[level])):
                system.transport.transfer(owner.endpoint, server.endpoint,
                                          f"outsource:L{level}", share)
                server.receive_shares(owner.owner_id,
                                      level_column(attribute, level),
                                      share, ShareKind.ADDITIVE)
    return tree


def run_bucketized_psi(system, attribute, tree: BucketTree,
                       num_threads: int | None = None,
                       querier: int = 0,
                       announcer_driven: bool = False,
                       shard_plan=None) -> tuple[SetResult, dict]:
    """Multi-round bucketized PSI (§6.6 Steps 1b–3).

    With ``announcer_driven=True`` the per-level outputs go to the
    announcer, which determines the surviving nodes and instructs the
    servers directly — removing the owners from the traversal loop (the
    §6.6 note).  Requires an announcer dealt ``eta``
    (``PrismSystem(..., announcer_knows_eta=True)``); the announcer then
    learns which bucket *nodes* are common, a documented trade-off.
    Either way the final leaf round is finalised by the owners.

    Each level's sweep runs through the sharded cell-restricted kernel
    (:meth:`~repro.entities.server.PrismServer.psi_cells_round_batch`),
    so a deployment's shard plan (or the ``shard_plan`` override)
    parallelises the traversal; the round loop itself lives in
    :class:`~repro.core.interactive.BucketizedPsiProgram`, of which this
    function is a thin driver.

    Returns the final :class:`SetResult` (leaf-level intersection) plus a
    stats dict with ``actual_domain_size`` (nodes PSI executed on),
    ``rounds``, and ``numbers_sent`` (per server, one direction — the
    paper's "12 instead of 16" accounting).
    """
    from repro.core.interactive import BucketizedPsiProgram
    return BucketizedPsiProgram(system, attribute, tree,
                                num_threads=num_threads, querier=querier,
                                announcer_driven=announcer_driven,
                                shard_plan=shard_plan).run()


def simulate_actual_domain_size(num_leaves: int, fanout: int,
                                fill_factor: float, seed: int = 0) -> int:
    """The Fig. 5 counting model: nodes PSI executes on, given a fill factor.

    A random leaf bitmap with ``fill_factor`` fraction of ones (the data
    common to all owners, as in the paper's randomly-generated experiment)
    is rolled up the tree; PSI is executed on every child of a common node
    plus the whole top level.

    Args:
        num_leaves: real domain size (paper: 100M).
        fanout: κ (paper: 10).
        fill_factor: fraction of leaf cells holding a one, in [0, 1].
        seed: bitmap randomness.

    Returns:
        The actual domain size (total nodes examined).
    """
    if not 0.0 <= fill_factor <= 1.0:
        raise ParameterError("fill factor must lie in [0, 1]")
    tree = BucketTree(num_leaves, fanout)
    rng = np.random.default_rng(seed)
    num_ones = int(round(num_leaves * fill_factor))
    leaf = np.zeros(num_leaves, dtype=np.int64)
    if num_ones:
        leaf[rng.choice(num_leaves, size=num_ones, replace=False)] = 1
    levels = tree.all_levels(leaf)
    # Top level: every node is examined.  Below: κ children per common node.
    total = tree.level_sizes[tree.top_level]
    for level in range(tree.top_level, 0, -1):
        common = int(np.count_nonzero(levels[level]))
        total += min(common * fanout, tree.level_sizes[level - 1])
    return total
