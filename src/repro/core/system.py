"""The high-level Prism facade.

:class:`PrismSystem` wires up a full deployment — initiator, ``m`` owners,
three servers, announcer, transport — and exposes one method per supported
query (Table 4): ``psi``, ``psu``, ``psi_count``, ``psu_count``,
``psi_sum``, ``psi_average``, ``psi_max``, ``psi_min``, ``psi_median``,
plus their PSU-aggregation variants and bucketized PSI.

Since the unified-API redesign these methods are thin shims: each lowers
its arguments to a :class:`~repro.api.plan.LogicalPlan` and runs it
through the single :class:`~repro.api.executor.Executor`, so *every*
query — including a lone ``system.psi(...)`` call — executes as a batch
of one through the fused 2-D server kernels and the indicator-share
cache.  Results are bit-identical to the historical per-query runners
(pinned by ``tests/test_batch.py`` and ``tests/test_api.py``).  For a
session-style surface with per-session stats, use
:meth:`client` / :class:`repro.api.PrismClient`.

Typical use::

    from repro import PrismSystem, Relation, Domain

    domain = Domain("disease", ["cancer", "fever", "heart"])
    system = PrismSystem.build([rel1, rel2, rel3], domain,
                               psi_attribute="disease",
                               agg_attributes=("cost", "age"))
    print(system.psi("disease").values)
    print(system.psi_sum("disease", "cost")["cost"].per_value)
"""

from __future__ import annotations

import threading

from repro.core.batch import QueryBatch
from repro.core.bucketized import (
    BucketTree,
    outsource_bucketized,
)
from repro.core.psu import run_psu
from repro.core.results import (
    AggregateResult,
    CountResult,
    ExtremaResult,
    MedianResult,
    SetResult,
)
from repro.core.sharding import (
    ShardPlan,
    ShardRuntime,
    attach_sharding,
    auto_shard_plan,
    processes_available,
)
from repro.crypto.shamir import DEFAULT_FIELD_PRIME
from repro.data.domain import Domain, ProductDomain
from repro.data.relation import Relation
from repro.entities.announcer import Announcer
from repro.entities.initiator import Initiator
from repro.entities.owner import DBOwner
from repro.entities.server import PrismServer
from repro.exceptions import ParameterError, ProtocolError
from repro.network.transport import LocalTransport

#: Number of servers a full deployment instantiates (2 additive + 1 extra
#: Shamir point for degree-2 reconstruction, §3.2).
NUM_SERVERS = 3


def _server_spec(factory) -> tuple[str | None, dict]:
    """(dotted path, constructor kwargs) for a remote host bootstrap.

    TCP hosts construct the entity themselves, so the factory must be a
    class, a dotted path string, or a ``(class_or_path, kwargs)`` tuple
    — the fault-injection classes of :mod:`repro.entities.adversary`
    qualify (e.g. ``{2: (DropAggregateServer, {"cells": (2,)})}``);
    closures cannot travel.
    """
    kwargs: dict = {}
    if isinstance(factory, tuple):
        factory, kwargs = factory
        kwargs = dict(kwargs)
    if factory is PrismServer:
        return None, kwargs
    if isinstance(factory, str):
        return factory, kwargs
    if isinstance(factory, type) and issubclass(factory, PrismServer):
        return f"{factory.__module__}.{factory.__qualname__}", kwargs
    raise ParameterError(
        "tcp deployments need server *classes* (or dotted path strings) in "
        "server_factories — the remote host constructs the entity and "
        "cannot execute a local callable"
    )


def _callable_factory(factory):
    """Normalise a server_factories entry to ``factory(index, params)``."""
    from repro.network.host import _resolve_server_class
    kwargs: dict = {}
    if isinstance(factory, tuple):
        factory, kwargs = factory
        kwargs = dict(kwargs)
    if isinstance(factory, str):
        factory = _resolve_server_class(factory)
    if kwargs:
        return lambda index, params, _cls=factory, _kw=kwargs: \
            _cls(index, params, **_kw)
    return factory


class PrismSystem:
    """A complete in-process Prism deployment.

    Most callers should use :meth:`build`, which also runs Phase 1
    (outsourcing).  The constructor only wires entities.

    Args:
        relations: one private relation per owner.
        domain: the PSI/PSU attribute domain.
        seed: master seed for all parameters and share randomness.
        num_threads: default server-side thread count.
        num_shards: default χ-table shard count.  ``> 1`` partitions every
            share vector into that many contiguous shards and runs the
            batched kernels shard-parallel on a persistent forked worker
            pool shared by all three servers (threads when worker
            processes are unavailable).  ``"auto"`` picks the shard
            count and the threads-vs-workers mode from the core count
            and the χ length, using the crossover measured by
            ``benchmarks/bench_sharding.py``
            (:func:`repro.core.sharding.auto_shard_plan`).  Results are
            bit-identical to the unsharded path.  Call :meth:`close` (or
            use the system as a context manager) to release the pool.
        deployment: where the server entities live — ``"local"`` (this
            process, zero-copy; the default and the historical
            behaviour), ``"subprocess"`` (each server hosted in a forked
            worker, frames over a pipe), or
            ``"tcp://host:port,host:port,host:port"`` (standalone
            ``repro-entity-host`` processes, length-prefixed codec
            frames over TCP).  Each tcp server role also accepts a
            *pool* of replica hosts —
            ``"tcp://h:p,h:p/h:p/h:p,h:p,h:p"`` separates the three
            roles with ``/`` and pool members with ``,`` — over which
            fused sweep spans fan out concurrently
            (:class:`~repro.network.dispatch.PooledChannel`).  A parsed
            :class:`~repro.network.rpc.Deployment` works too.  Owners,
            initiator, and announcer stay in this process; non-local
            deployments expose each server through a
            :class:`~repro.entities.remote.RemoteServer` proxy, and
            results are bit-identical across all modes and pool sizes.
        delta: override the additive-group prime.
        alpha: the ``eta' = alpha * eta`` multiplier.
        field_prime: Shamir field prime.
        value_bound: max aggregation-attribute value (sizes the extrema
            modulus).
        server_factories: optional per-index server constructors, e.g. to
            inject malicious servers:
            ``{1: lambda i, p: SkipCellsServer(i, p)}``.
        announcer_knows_eta: deal ``eta`` to the announcer, enabling
            announcer-driven bucket traversal (§6.6 note) at the cost of
            the announcer learning which bucket nodes are common.
        serialize_transport: round-trip every message through the binary
            wire codec (conformance mode; slower, byte-exact accounting).
        rpc_timeout: per-request timeout in seconds for tcp channels
            (``None``: wait forever).  A host that hangs past the
            deadline fails the request with a typed error instead of
            deadlocking the query —
            :class:`~repro.exceptions.QueryError` naming the member
            from a host pool,
            :class:`~repro.network.dispatch.ConnectionLost` (a
            :class:`~repro.exceptions.ProtocolError`) single-host.
    """

    def __init__(self, relations: list[Relation], domain: Domain | ProductDomain,
                 seed: int = 0, num_threads: int = 1,
                 num_shards: int | str = 1,
                 delta: int | None = None, alpha: int = 13,
                 field_prime: int = DEFAULT_FIELD_PRIME,
                 value_bound: int = 10_000,
                 server_factories: dict | None = None,
                 announcer_knows_eta: bool = False,
                 serialize_transport: bool = False,
                 deployment: str = "local",
                 rpc_timeout: float | None = None):
        from repro.network.rpc import Deployment
        if len(relations) < 2:
            raise ParameterError("Prism needs at least two owners")
        self.domain = domain
        self.num_threads = num_threads
        self.rpc_timeout = rpc_timeout
        self.deployment = Deployment.parse(deployment,
                                           num_servers=NUM_SERVERS)
        self.initiator = Initiator(len(relations), domain, seed=seed,
                                   delta=delta, alpha=alpha,
                                   field_prime=field_prime,
                                   value_bound=value_bound)
        self.transport = LocalTransport(serialize=serialize_transport)
        # Dispatch/supervision layers count the exceptions their
        # survival guards deliberately swallow against this transport's
        # stats (``swallowed-<site>:<ExcType>`` events).
        from repro.network.dispatch import register_event_sink
        register_event_sink(self.transport)
        #: Optional :class:`~repro.network.supervisor.HostSupervisor`
        #: (set by whoever forked the pools; closed with the system).
        self.supervisor = None
        owner_params = self.initiator.owner_params()
        self.owners = [
            DBOwner(i, owner_params, relation=rel, seed=seed)
            for i, rel in enumerate(relations)
        ]
        factories = server_factories or {}
        self._channels: list = []
        if self.deployment.is_local:
            self.servers = [
                _callable_factory(factories.get(i, PrismServer))(
                    i, self.initiator.server_params(i))
                for i in range(NUM_SERVERS)
            ]
        else:
            self.servers = self._connect_servers(factories)
        self.announcer = Announcer(
            self.initiator.announcer_params(include_eta=announcer_knows_eta),
            seed=seed,
        )
        self._executor = None
        self._nonce = 0
        self._nonce_lock = threading.Lock()
        self._bucket_trees: dict[str, BucketTree] = {}
        use_workers = True
        if num_shards == "auto":
            self.num_shards, use_workers = auto_shard_plan(domain.size)
        else:
            self.num_shards = max(1, int(num_shards))
        self._shard_runtime = None
        if self.num_shards > 1:
            if not self.deployment.is_local:
                # Remote stores are out of reach of a local worker pool:
                # ship the shard *count* as each proxy's default plan and
                # let the hosts execute it (bit-identical either way).
                plan = ShardPlan(self.num_shards)
                for server in self.servers:
                    server.shard_plan = plan
            elif use_workers and processes_available():
                default_plan = attach_sharding(self.servers, self.num_shards)
                self._shard_runtime = default_plan.runtime
            else:
                # The auto heuristic chose the zero-dispatch thread mode
                # (small sweeps): a runtime-less plan per server.
                plan = ShardPlan(self.num_shards)
                for server in self.servers:
                    server.shard_plan = plan
                    server.store.configure_sharding(self.num_shards)

    def _connect_servers(self, factories: dict) -> list:
        """Build the server proxies of a non-local deployment."""
        from repro.entities.remote import RemoteServer
        from repro.network.dispatch import PooledChannel, SocketChannel
        from repro.network.rpc import (
            CONSTRUCT,
            RpcMessage,
            SubprocessChannel,
            server_params_to_wire,
        )
        servers = []
        try:
            for i in range(NUM_SERVERS):
                params = self.initiator.server_params(i)
                factory = factories.get(i, PrismServer)
                if self.deployment.mode in ("subprocess", "shm"):
                    # The factory runs in the child post-fork, so
                    # arbitrary callables (malicious-server lambdas
                    # included) work.  "shm" additionally maps a pair
                    # of shared-memory arenas per channel before the
                    # fork, so share vectors skip the socket.
                    make = _callable_factory(factory)
                    shm_bytes = None
                    if self.deployment.mode == "shm":
                        from repro.network.shm import DEFAULT_ARENA_BYTES
                        shm_bytes = DEFAULT_ARENA_BYTES
                    channel = SubprocessChannel.spawn(
                        lambda i=i, params=params, make=make: make(i, params),
                        shm_bytes=shm_bytes)
                    self._channels.append(channel)
                else:
                    server_class, ctor_kwargs = _server_spec(factory)
                    pool = self.deployment.pools[i]
                    if len(pool) > 1:
                        # Every pool member hosts a full replica of this
                        # server role; the CONSTRUCT below broadcasts.
                        channel = PooledChannel.connect(
                            pool, request_timeout=self.rpc_timeout)
                    else:
                        host, port = pool[0]
                        channel = SocketChannel.connect(
                            host, port, request_timeout=self.rpc_timeout)
                    if hasattr(channel, "on_event"):
                        channel.on_event = self._pool_event
                    self._channels.append(channel)
                    channel.send(RpcMessage(CONSTRUCT, {
                        "entity": "server",
                        "index": i,
                        "params": server_params_to_wire(params),
                        "server_class": server_class,
                        "kwargs": ctor_kwargs,
                    }))
                proxy = RemoteServer(i, params, channel)
                # Span-scoped sweep dispatch reads the hosted store
                # directly (like a forked shard worker), so it is only
                # sound against an unmodified base-class server — which
                # the system knows statically: no custom factory for
                # this index means the host runs a plain PrismServer.
                proxy.span_dispatch = i not in factories
                servers.append(proxy)
        except BaseException:
            # A later server failing to come up must not leak the
            # channels (and forked children) already opened: the
            # half-built system is unreachable and close() never runs.
            for channel in self._channels:
                channel.close()
            self._channels.clear()
            raise
        return servers

    def _pool_event(self, event: str, member: str) -> None:
        """Dispatch-layer health transitions → transport event counters."""
        self.transport.stats.count_event(f"pool-{event}")

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def build(cls, relations, domain, psi_attribute,
              agg_attributes=(), with_verification: bool = False,
              mask_zeros: bool = False, **kwargs) -> "PrismSystem":
        """Construct a system and run Phase 1 outsourcing in one step."""
        system = cls(relations, domain, **kwargs)
        system.outsource(psi_attribute, agg_attributes, with_verification,
                         mask_zeros=mask_zeros)
        return system

    def outsource(self, psi_attribute, agg_attributes=(),
                  with_verification: bool = False,
                  mask_zeros: bool = False) -> None:
        """Phase 1: every owner ships its Table-11 share columns.

        ``mask_zeros`` enables the footnote-1 hardening (random values in
        absent χ cells); PSI-only, incompatible with verification.
        """
        for owner in self.owners:
            owner.outsource(self.servers, psi_attribute,
                            tuple(agg_attributes), with_verification,
                            transport=self.transport,
                            mask_zeros=mask_zeros)
        # The outsourced snapshot changed: previously dealt indicator
        # shares no longer correspond to current query results.
        self.initiator.indicator_cache.invalidate()
        if self._shard_runtime is not None:
            # Fork the worker pool now, from this (outsourcing) thread:
            # the put-burst is over, and forking here — rather than on a
            # client's scheduler thread at first dispatch — avoids the
            # fork-while-multi-threaded hazard.
            self._shard_runtime.prewarm(self.domain.size, self.num_shards)

    def outsource_bucketized(self, psi_attribute, fanout: int = 10) -> BucketTree:
        """Phase 1 for bucketized PSI: per-level χ columns (§6.6)."""
        # The leaf level is the ordinary PSI column; ensure it exists.
        if not self.servers[0].owners_with(
                psi_attribute if isinstance(psi_attribute, str)
                else "*".join(psi_attribute)):
            self.outsource(psi_attribute)
        tree = outsource_bucketized(self, psi_attribute, fanout)
        key = psi_attribute if isinstance(psi_attribute, str) \
            else "*".join(psi_attribute)
        self._bucket_trees[key] = tree
        return tree

    def bucket_tree(self, attribute) -> BucketTree:
        """The §6.6 bucket tree for ``attribute`` (raises if not built)."""
        key = attribute if isinstance(attribute, str) else "*".join(attribute)
        if key not in self._bucket_trees:
            raise ParameterError(
                f"call outsource_bucketized({key!r}) before bucketized_psi"
            )
        return self._bucket_trees[key]

    def next_nonce(self) -> int:
        """Fresh query nonce (PSU mask stream freshness).

        Locked: concurrent submitters (``client.submit`` from many
        threads, parallel ``run_batch`` calls) must never draw the same
        nonce — a duplicate would replay an Eq. 18 mask stream.
        """
        with self._nonce_lock:
            self._nonce += 1
            return self._nonce

    # -- sharded execution ----------------------------------------------------

    def shard_plan_for(self, num_shards: int | str | None
                       ) -> ShardPlan | None:
        """A per-call :class:`ShardPlan` override for the batched kernels.

        ``None`` keeps the servers' deployment default; ``<= 1`` returns
        an explicit thread-only plan (disables sharding for the call);
        ``> 1`` binds the requested shard count to the deployment's
        shared worker-pool runtime (created on first use).  ``"auto"``
        resolves shard count and mode from the χ length and core count
        (:func:`repro.core.sharding.auto_shard_plan`).  Non-local
        deployments always get a runtime-less plan — the shard count
        travels over the channel and the entity hosts execute it.
        """
        if num_shards is None:
            return None
        if num_shards == "auto":
            num_shards, use_workers = auto_shard_plan(self.domain.size)
            if num_shards <= 1:
                return ShardPlan(1, None)
            if not use_workers:
                return ShardPlan(num_shards, None)
        num_shards = int(num_shards)
        if num_shards <= 1:
            return ShardPlan(1, None)
        if not self.deployment.is_local:
            return ShardPlan(num_shards, None)
        if self._shard_runtime is None:
            self._shard_runtime = ShardRuntime(self.servers)
            # Fork once, now, on the requesting thread — not later on a
            # scheduler thread mid-dispatch (fork-while-threaded hazard).
            self._shard_runtime.prewarm(self.domain.size, num_shards)
        return ShardPlan(num_shards, self._shard_runtime)

    def close(self) -> None:
        """Release execution resources: pools, and — remotely — channels.

        Idempotent.  Local deployments stay usable afterwards (pools
        are re-created lazily), so this is a quiesce as much as a
        teardown.  Non-local deployments additionally close their
        channels (subprocess children exit; TCP hosts keep running for
        the next client), after which the system can no longer query.
        """
        if self.supervisor is not None:
            # Stop the watch loop *before* closing channels: a respawn
            # racing the teardown would resurrect a host we are about
            # to orphan.
            self.supervisor.close()
        if self._shard_runtime is not None:
            self._shard_runtime.close()
        for server in self.servers:
            close = getattr(server, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:
                    if self.deployment.is_local:
                        raise
                    # A dead channel must not block teardown of the rest.
        for channel in self._channels:
            channel.close()

    def pool_health(self) -> dict:
        """Aggregated liveness of the deployment's server-role pools.

        ``ok`` while every member of every pool is up, ``degraded``
        while any pool runs ejected members (queries still succeed via
        failover), ``down`` when some pool has no live member at all.
        Local/subprocess deployments — no pools — always report ``ok``.
        """
        pools = []
        for channel in self._channels:
            health = getattr(channel, "health", None)
            pools.append(health() if callable(health) else {"status": "ok"})
        statuses = [pool["status"] for pool in pools]
        if any(status == "down" for status in statuses):
            status = "down"
        elif any(status != "ok" for status in statuses):
            status = "degraded"
        else:
            status = "ok"
        report = {"status": status, "pools": pools}
        if self.supervisor is not None:
            report["supervisor"] = self.supervisor.stats
        return report

    def channel_stats(self) -> dict:
        """Wire accounting of a non-local deployment's channels.

        ``bytes_sent``/``bytes_received`` count actual framed bytes on
        the wire (empty totals under ``deployment="local"``, which moves
        no bytes); the transport's :class:`TrafficStats` remain the
        protocol-level model either way.
        """
        per_channel = [channel.stats for channel in self._channels]
        return {
            "mode": self.deployment.mode,
            "channels": per_channel,
            "requests": sum(s["requests"] for s in per_channel),
            "bytes_sent": sum(s["bytes_sent"] for s in per_channel),
            "bytes_received": sum(s["bytes_received"] for s in per_channel),
        }

    def __enter__(self) -> "PrismSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def relations(self) -> list[Relation]:
        return [owner.relation for owner in self.owners]

    def client(self, num_threads: int | None = None,
               num_shards: int | str | None = None):
        """Open a session-style :class:`repro.api.PrismClient` on this
        deployment (per-session query/traffic stats, ``EXPLAIN``, fluent
        builders, concurrent ``submit`` with batch coalescing)."""
        from repro.api.client import PrismClient
        return PrismClient(self, num_threads=num_threads,
                           num_shards=num_shards)

    # -- the unified execution path -------------------------------------------

    @property
    def executor(self):
        """The deployment's :class:`~repro.api.executor.Executor`.

        Imported lazily: :mod:`repro.api` sits *above* the core layer
        (its executor dispatches into :mod:`repro.core.batch`), so a
        module-level import here would be circular.
        """
        if self._executor is None:
            from repro.api.executor import Executor
            self._executor = Executor(self)
        return self._executor

    def run_batch(self, queries, num_threads: int | None = None,
                  num_shards: int | None = None) -> list:
        """Execute many queries as fused server sweeps (Phase 2–4 at once).

        The batch planner groups the queries by kernel family and runs
        each family as a single chunked 2-D pass over the χ table instead
        of one pass per query; results are identical to calling the
        per-query methods one by one.  See :mod:`repro.core.batch` for
        what is batchable (extrema/median are not) and for the shared
        timings/traffic caveats.  This is the raw batch layer — it keeps
        the legacy per-kind result shapes (aggregations always return an
        attribute-keyed dict); :meth:`repro.api.Executor.execute_many`
        and :meth:`repro.api.PrismClient.execute_many` accept richer
        query forms (fluent builders, multi-aggregate plans) on top of
        the same engine.

        Args:
            queries: iterable of :class:`~repro.core.batch.BatchQuery`,
                Table-4 SQL strings, parsed query plans, or keyword dicts.
            num_threads: server-side thread count (default: system
                setting).
            num_shards: χ-table shard count for this batch (default:
                system setting; ``1`` forces the unsharded sweep).

        Returns:
            One result object per query, in input order.
        """
        return QueryBatch(self, queries, num_threads=num_threads,
                          num_shards=num_shards).execute()

    def _lower(self, set_op, attribute, kwargs, aggregates=(), verify=False,
               reveal_holders=True, bucketized=False):
        """Lower legacy method arguments to (plan, num_threads, options)."""
        from repro.api.plan import LogicalPlan
        kwargs = dict(kwargs)
        num_threads = kwargs.pop("num_threads", None)
        querier = kwargs.pop("querier", 0)
        owner_ids = kwargs.pop("owner_ids", None)
        plan = LogicalPlan(
            set_op=set_op, attribute=attribute, aggregates=aggregates,
            verify=verify, reveal_holders=reveal_holders,
            bucketized=bucketized,
            owner_ids=tuple(owner_ids) if owner_ids is not None else None,
            querier=querier,
        )
        return plan, num_threads, kwargs

    def _summary(self, set_op, fn, attribute, agg_attributes, verify,
                 kwargs) -> dict[str, AggregateResult]:
        """Shared shim for the SUM/AVG methods (attribute-keyed dict)."""
        if isinstance(agg_attributes, str):
            agg_attributes = [agg_attributes]
        if not agg_attributes:
            raise ProtocolError("no aggregation attributes given")
        plan, num_threads, options = self._lower(
            set_op, attribute, kwargs,
            aggregates=tuple((fn, a) for a in agg_attributes), verify=verify)
        out = self.executor.execute(plan, num_threads=num_threads, **options)
        attrs = list(dict.fromkeys(agg_attributes))
        if len(attrs) == 1:
            return {attrs[0]: out}
        return {a: out[plan.result_key(fn, a)] for a in attrs}

    # -- set queries -----------------------------------------------------------

    def psi(self, attribute, verify: bool = False, **kwargs) -> SetResult:
        """Private set intersection over ``attribute`` (§5.1/§5.2)."""
        plan, num_threads, options = self._lower("psi", attribute, kwargs,
                                                 verify=verify)
        return self.executor.execute(plan, num_threads=num_threads, **options)

    def psu(self, attribute, verify: bool = False, **kwargs) -> SetResult:
        """Private set union over ``attribute`` (§7), optionally verified.

        ``query_nonce`` (a legacy escape hatch for pinning the Eq. 18
        mask stream) routes through the sequential runner; every other
        call takes the unified batched path.
        """
        query_nonce = kwargs.pop("query_nonce", None)
        if query_nonce is not None:
            return run_psu(self, attribute, verify=verify,
                           query_nonce=query_nonce, **kwargs)
        plan, num_threads, options = self._lower("psu", attribute, kwargs,
                                                 verify=verify)
        return self.executor.execute(plan, num_threads=num_threads, **options)

    def psi_count(self, attribute, verify: bool = False, **kwargs) -> CountResult:
        """Intersection cardinality only (§6.5)."""
        plan, num_threads, options = self._lower(
            "psi", attribute, kwargs, aggregates=(("COUNT", None),),
            verify=verify)
        return self.executor.execute(plan, num_threads=num_threads, **options)

    def psu_count(self, attribute, **kwargs) -> CountResult:
        """Union cardinality only (§6.5 applied to PSU)."""
        plan, num_threads, options = self._lower(
            "psu", attribute, kwargs, aggregates=(("COUNT", None),))
        return self.executor.execute(plan, num_threads=num_threads, **options)

    # -- summary aggregations ----------------------------------------------------

    def psi_sum(self, attribute, agg_attributes, verify: bool = False,
                **kwargs) -> dict[str, AggregateResult]:
        """Sum per common value (§6.1); multi-attribute per Table 12."""
        return self._summary("psi", "SUM", attribute, agg_attributes,
                             verify, kwargs)

    def psi_average(self, attribute, agg_attributes, verify: bool = False,
                    **kwargs) -> dict[str, AggregateResult]:
        """Average per common value (§6.2)."""
        return self._summary("psi", "AVG", attribute, agg_attributes,
                             verify, kwargs)

    def psu_sum(self, attribute, agg_attributes, verify: bool = False,
                **kwargs) -> dict[str, AggregateResult]:
        """Sum per union value (aggregation over PSU, §2)."""
        return self._summary("psu", "SUM", attribute, agg_attributes,
                             verify, kwargs)

    def psu_average(self, attribute, agg_attributes, verify: bool = False,
                    **kwargs) -> dict[str, AggregateResult]:
        """Average per union value (aggregation over PSU)."""
        return self._summary("psu", "AVG", attribute, agg_attributes,
                             verify, kwargs)

    # -- exemplar aggregations -----------------------------------------------------

    def psi_max(self, attribute, agg_attribute, reveal_holders: bool = True,
                verify: bool = False, **kwargs) -> ExtremaResult:
        """Maximum per common value, with optional holder identities (§6.3).

        ``verify=True`` reruns the announcer round under fresh blinding
        and requires agreement (the re-blinding consistency check).
        """
        plan, num_threads, options = self._lower(
            "psi", attribute, kwargs, aggregates=(("MAX", agg_attribute),),
            verify=verify, reveal_holders=reveal_holders)
        return self.executor.execute(plan, num_threads=num_threads, **options)

    def psi_min(self, attribute, agg_attribute, reveal_holders: bool = True,
                verify: bool = False, **kwargs) -> ExtremaResult:
        """Minimum per common value (§6.3 with FindMin)."""
        plan, num_threads, options = self._lower(
            "psi", attribute, kwargs, aggregates=(("MIN", agg_attribute),),
            verify=verify, reveal_holders=reveal_holders)
        return self.executor.execute(plan, num_threads=num_threads, **options)

    def psi_median(self, attribute, agg_attribute, verify: bool = False,
                   **kwargs) -> MedianResult:
        """Median across owners of per-owner group totals (§6.4).

        ``verify=True`` raises :class:`~repro.exceptions.QueryError`
        ("MEDIAN has no verification stream") — the same typed rejection
        the plan IR and :func:`~repro.core.extrema.run_median` produce,
        so every path fails alike.
        """
        plan, num_threads, options = self._lower(
            "psi", attribute, kwargs, aggregates=(("MEDIAN", agg_attribute),),
            verify=verify)
        return self.executor.execute(plan, num_threads=num_threads, **options)

    # -- bucketized PSI -------------------------------------------------------------

    def bucketized_psi(self, attribute, **kwargs) -> tuple[SetResult, dict]:
        """Bucketized PSI (§6.6); requires :meth:`outsource_bucketized`."""
        plan, num_threads, options = self._lower("psi", attribute, kwargs,
                                                 bucketized=True)
        return self.executor.execute(plan, num_threads=num_threads, **options)
