"""A small SQL dialect for Prism queries (the Table 4 statement shapes).

The paper expresses its operations as multi-branch ``INTERSECT``/``UNION``
statements (Table 4).  This module parses a compact, equivalent dialect
into a :class:`QueryPlan` and executes it against a
:class:`~repro.core.system.PrismSystem`:

* ``SELECT disease FROM h1 INTERSECT SELECT disease FROM h2 ...`` → PSI
* ``SELECT disease FROM h1 UNION SELECT disease FROM h2 ...`` → PSU
* ``SELECT COUNT(disease) FROM h1 INTERSECT ...`` → PSI-Count
* ``SELECT disease, SUM(cost) FROM h1 INTERSECT ...`` → PSI-Sum
* ``SELECT disease, MAX(age) FROM h1 INTERSECT ...`` → PSI-Max

Supported aggregate functions: COUNT, SUM, AVG, MAX, MIN, MEDIAN.  All
branches must project the same attribute(s) — Prism's set operations are
defined over a common attribute (§2).  Append ``VERIFY`` to request result
verification where supported.
"""

from __future__ import annotations

import dataclasses
import re

from repro.exceptions import QueryError

_AGG_FUNCTIONS = ("COUNT", "SUM", "AVG", "MAX", "MIN", "MEDIAN")

_BRANCH_RE = re.compile(
    r"^\s*SELECT\s+(?P<projection>.+?)\s+FROM\s+(?P<table>\w+)\s*$",
    re.IGNORECASE,
)
_AGG_RE = re.compile(
    r"^(?P<fn>" + "|".join(_AGG_FUNCTIONS) + r")\s*\(\s*(?P<attr>\w+)\s*\)$",
    re.IGNORECASE,
)


@dataclasses.dataclass(frozen=True)
class QueryPlan:
    """A parsed Prism query.

    Attributes:
        set_op: ``"psi"`` or ``"psu"``.
        attribute: the set-operation attribute ``A_c``.
        aggregate: ``(function, attribute)`` or None for a plain set query.
        tables: branch table names, in order (informational — the system's
            owner order is positional).
        verify: whether result verification was requested.
    """

    set_op: str
    attribute: str
    aggregate: tuple[str, str] | None
    tables: tuple[str, ...]
    verify: bool = False

    def describe(self) -> str:
        """One-line human-readable plan (an EXPLAIN of sorts)."""
        op = {"psi": "PSI", "psu": "PSU"}[self.set_op]
        if self.aggregate is None:
            core = op
        elif self.aggregate[0] == "COUNT":
            core = f"{op} Count"
        else:
            core = f"{op} {self.aggregate[0].title()}({self.aggregate[1]})"
        suffix = " with verification" if self.verify else ""
        return (f"{core} on {self.attribute!r} across "
                f"{len(self.tables)} owners{suffix}")

    def execute(self, system):
        """Run the plan against a :class:`PrismSystem`.

        Returns the protocol result object matching the plan kind.
        """
        if self.aggregate is None:
            if self.set_op == "psi":
                return system.psi(self.attribute, verify=self.verify)
            return system.psu(self.attribute)
        fn, attr = self.aggregate
        if fn == "COUNT":
            if self.set_op == "psi":
                return system.psi_count(self.attribute, verify=self.verify)
            return system.psu_count(self.attribute)
        if fn == "SUM":
            runner = system.psi_sum if self.set_op == "psi" else system.psu_sum
            return runner(self.attribute, attr, verify=self.verify)[attr]
        if fn == "AVG":
            runner = (system.psi_average if self.set_op == "psi"
                      else system.psu_average)
            return runner(self.attribute, attr, verify=self.verify)[attr]
        if self.set_op != "psi":
            raise QueryError(f"{fn} is only supported over PSI")
        if fn == "MAX":
            return system.psi_max(self.attribute, attr)
        if fn == "MIN":
            return system.psi_min(self.attribute, attr)
        return system.psi_median(self.attribute, attr)


def parse_query(sql: str) -> QueryPlan:
    """Parse a Table-4-style statement into a :class:`QueryPlan`.

    Raises:
        QueryError: on malformed input, mixed set operators, inconsistent
            projections across branches, or unsupported aggregates.
    """
    text = " ".join(sql.strip().rstrip(";").split())
    verify = False
    if text.upper().endswith(" VERIFY"):
        verify = True
        text = text[: -len(" VERIFY")]

    upper = text.upper()
    has_intersect = " INTERSECT " in f" {upper} "
    has_union = " UNION " in f" {upper} "
    if has_intersect and has_union:
        raise QueryError("cannot mix INTERSECT and UNION in one query")
    if not has_intersect and not has_union:
        raise QueryError(
            "Prism queries are multi-owner set operations: expected at "
            "least one INTERSECT or UNION branch"
        )
    set_op = "psi" if has_intersect else "psu"
    splitter = re.compile(r"\s+INTERSECT\s+|\s+UNION\s+", re.IGNORECASE)
    branches = splitter.split(text)
    if len(branches) < 2:
        raise QueryError("need at least two branches")

    parsed = [_parse_branch(b) for b in branches]
    first_projection = parsed[0][0]
    for projection, _ in parsed[1:]:
        if projection.upper() != first_projection.upper():
            raise QueryError(
                f"all branches must project the same expression; got "
                f"{first_projection!r} vs {projection!r}"
            )
    attribute, aggregate = _interpret_projection(first_projection)
    tables = tuple(table for _, table in parsed)
    return QueryPlan(set_op=set_op, attribute=attribute, aggregate=aggregate,
                     tables=tables, verify=verify)


def _parse_branch(branch: str) -> tuple[str, str]:
    match = _BRANCH_RE.match(branch)
    if not match:
        raise QueryError(f"malformed branch: {branch!r}")
    projection = "".join(match.group("projection").split())
    return projection, match.group("table")


def _interpret_projection(projection: str) -> tuple[str, tuple[str, str] | None]:
    """Split ``"disease,SUM(cost)"`` into attribute + aggregate spec."""
    parts = projection.split(",")
    if len(parts) == 1:
        agg = _AGG_RE.match(parts[0])
        if agg is None:
            return parts[0], None
        if agg.group("fn").upper() != "COUNT":
            raise QueryError(
                f"{agg.group('fn').upper()} needs a set attribute too, e.g. "
                f"SELECT disease, {agg.group('fn').upper()}(cost) ..."
            )
        return agg.group("attr"), ("COUNT", agg.group("attr"))
    if len(parts) == 2:
        agg = _AGG_RE.match(parts[1])
        if not agg:
            raise QueryError(
                f"second projection item must be an aggregate: {parts[1]!r}"
            )
        return parts[0], _agg_tuple(agg)
    raise QueryError(f"too many projection items in {projection!r}")


def _agg_tuple(match: re.Match) -> tuple[str, str]:
    return match.group("fn").upper(), match.group("attr")


def run_query(system, sql: str):
    """Parse and execute in one call."""
    return parse_query(sql).execute(system)
