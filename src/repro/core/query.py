"""Legacy SQL-dialect surface (superseded by :mod:`repro.api`).

Historically this module owned both the Table-4 SQL grammar and a
per-kind ``QueryPlan.execute`` dispatch.  The grammar now lives in
:mod:`repro.api.sql` (where it gained multi-aggregate projections and
the ``EXPLAIN`` prefix) and execution is the unified
:class:`~repro.api.executor.Executor`; what remains here is the
backwards-compatible surface:

* :func:`parse_query` — parse into the legacy single-aggregate
  :class:`QueryPlan` view (multi-aggregate statements need the new API).
* :func:`run_query` — parse + execute through the unified path.  Unlike
  the old dispatch, the ``VERIFY`` suffix is honoured for *every* kind
  that supports verification (PSU and MAX/MIN included), and the
  ``EXPLAIN`` prefix returns the plan's description without executing.

New code should use :class:`repro.api.PrismClient` (or
:func:`repro.api.parse_sql` for the full dialect).
"""

from __future__ import annotations

import dataclasses

from repro.exceptions import QueryError


@dataclasses.dataclass(frozen=True)
class QueryPlan:
    """A parsed Prism query (legacy single-aggregate view).

    Superseded by :class:`repro.api.LogicalPlan`, which carries several
    aggregates, owner subsets, and the bucketized flag; kept because the
    one-aggregate shape is a convenient stable surface for existing
    callers.

    Attributes:
        set_op: ``"psi"`` or ``"psu"``.
        attribute: the set-operation attribute ``A_c``.
        aggregate: ``(function, attribute)`` or None for a plain set query.
        tables: branch table names, in order (informational — the system's
            owner order is positional).
        verify: whether result verification was requested.
    """

    set_op: str
    attribute: str
    aggregate: tuple[str, str] | None
    tables: tuple[str, ...]
    verify: bool = False

    def to_logical(self):
        """Lower to the unified IR (carries ``verify`` for every kind)."""
        from repro.api.planner import Planner
        return Planner().lower(self)

    def describe(self) -> str:
        """One-line human-readable plan (an EXPLAIN of sorts)."""
        return self.to_logical().describe()

    def execute(self, system):
        """Run the plan through the unified executor.

        Returns the protocol result object matching the plan kind.  The
        ``verify`` flag is honoured everywhere it is supported — the old
        per-kind dispatch silently dropped it for PSU and MAX/MIN.
        """
        return _executor_for(system).execute(self.to_logical())


def parse_query(sql: str) -> QueryPlan:
    """Parse a Table-4-style statement into a legacy :class:`QueryPlan`.

    Raises:
        QueryError: on malformed input, mixed set operators, inconsistent
            projections across branches, unsupported aggregates, or a
            multi-aggregate projection (which the legacy plan shape
            cannot carry — use :func:`repro.api.parse_sql`).
    """
    from repro.api.sql import parse_sql
    plan = parse_sql(sql)
    if len(plan.aggregates) > 1:
        raise QueryError(
            "the legacy QueryPlan holds a single aggregate; parse "
            "multi-aggregate statements with repro.api.parse_sql (or "
            "execute them via run_query / PrismClient)"
        )
    if not plan.aggregates:
        aggregate = None
    else:
        fn, attr = plan.aggregates[0]
        # The legacy view spells COUNT with the set attribute repeated.
        aggregate = (fn, attr if attr is not None else plan.attribute)
    return QueryPlan(set_op=plan.set_op, attribute=plan.attribute,
                     aggregate=aggregate, tables=plan.tables,
                     verify=plan.verify)


def _executor_for(system):
    """The system's cached executor (fresh one for duck-typed systems)."""
    executor = getattr(system, "executor", None)
    if executor is not None:
        return executor
    from repro.api.executor import Executor
    return Executor(system)


def run_query(system, sql: str):
    """Parse and execute in one call, through the unified path.

    Supports the full dialect (multi-aggregate projections included) and
    the ``EXPLAIN`` prefix, which returns the plan's description string
    without executing anything.
    """
    from repro.api.sql import parse_sql, split_explain
    explain, text = split_explain(sql)
    executor = _executor_for(system)
    if explain:
        return executor.explain(parse_sql(text))
    return executor.execute(parse_sql(text))
