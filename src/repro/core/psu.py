"""PSU query execution (§7) and its verification.

One communication round: each server sums all owners' χ shares per cell,
multiplies by a pseudorandom mask derived from the common PRG seed and a
query nonce (Eq. 18), and broadcasts.  Owners add the two vectors modulo
``delta`` (Eq. 19): zero means no owner holds the value; any nonzero
(masked) value means at least one does — without revealing *how many*,
which is the PSU privacy requirement of §2.

**Verification** (reconstructed from the full version's per-operation
verification promise): in the same round the servers also run the Eq. 3
kernel — *with* the ``⊖ A(m)`` term — over the ``PF_db1``-permuted
complement table ``vA``.  That stream's cell equals 1 **iff every owner
holds the complement**, i.e. iff *no* owner holds the value.  The owner
un-permutes it and checks, cell by cell, that union membership is the
exact negation.  A server tampering with the PSU stream cannot patch the
complement stream consistently because the complement's cell positions
are hidden by ``PF_db1`` (the same 1/b² argument as §5.2).
"""

from __future__ import annotations

import numpy as np

from repro.core.psi import psi_column_name
from repro.core.results import PhaseTimings, SetResult
from repro.exceptions import ProtocolError, VerificationError


def run_psu(system, attribute: str | tuple, verify: bool = False,
            num_threads: int | None = None,
            querier: int = 0, owner_ids: list[int] | None = None,
            query_nonce: int | None = None) -> SetResult:
    """Execute a PSU query over the outsourced χ shares.

    Args:
        system: a :class:`~repro.core.system.PrismSystem`.
        attribute: the PSU attribute ``A_c`` (or tuple).
        verify: also run the complement-stream consistency check; raises
            :class:`~repro.exceptions.VerificationError` on tampering.
            Requires outsourcing ``with_verification``.
        num_threads: server-side thread count (default: system setting).
        querier: owner that finalises the result.
        owner_ids: restrict to a subset of owners.
        query_nonce: freshness value for the mask stream; defaults to a
            per-system counter so repeated queries use fresh masks.

    Returns:
        A :class:`SetResult` whose ``values`` are the union.
    """
    threads = num_threads if num_threads is not None else system.num_threads
    column = psi_column_name(attribute)
    nonce = query_nonce if query_nonce is not None else system.next_nonce()
    timings = PhaseTimings()
    transport = system.transport
    owner = system.owners[querier]

    transport.begin_round("psu")
    outputs = []
    vouts = []
    for server in system.servers[:2]:
        with timings.measure("fetch"):
            shares = server.fetch_additive(column, owner_ids)
            vshares = (server.fetch_additive("v" + column, owner_ids)
                       if verify else None)
        with timings.measure("server"):
            out = server.psu_round(column, nonce, threads, owner_ids, shares)
            # The "nobody holds it" stream: Eq. 3 over the complement.
            vout = (server.psi_round("v" + column, threads, owner_ids,
                                     vshares)
                    if verify else None)
        receivers = [o.endpoint for o in system.owners]
        transport.broadcast(server.endpoint, receivers, "psu-output", out)
        outputs.append(out)
        if verify:
            transport.broadcast(server.endpoint, receivers, "psu-vout", vout)
            vouts.append(vout)

    with timings.measure("owner"):
        member = owner.finalize_psu(outputs[0], outputs[1])
        verified = False
        if verify:
            absent_fop = owner.finalize_psi(vouts[0], vouts[1])
            absent = owner.params.pf_db1.invert(absent_fop) == 1
            bad = np.nonzero(member == absent)[0]
            if bad.size:
                raise VerificationError(
                    f"PSU verification failed at {bad.size} of "
                    f"{member.size} cells",
                    failed_cells=bad.tolist(),
                )
            verified = True
        values = owner.decode_cells(member, attribute)

    return SetResult(values=values, membership=member, timings=timings,
                     traffic=transport.stats.summary(), verified=verified)


def psu_reference(relations, attribute: str | tuple) -> set:
    """Plaintext oracle: the true union, for tests and benches."""
    out: set = set()
    if not relations:
        raise ProtocolError("no relations supplied")
    for rel in relations:
        if isinstance(attribute, str):
            out |= set(rel.distinct(attribute))
        else:
            columns = [rel.column(a) for a in attribute]
            out |= set(zip(*columns))
    return out
