"""System parameters and per-entity knowledge views (§4).

The initiator knows everything; every other entity receives a *view* that
contains exactly the parameters §4 grants it:

* **Owners** know ``m``, ``delta``, ``eta``, the hash/domain, ``PF``,
  ``PF_db1``/``PF_db2``, the polynomial ``F`` and the extrema modulus —
  but **not** the generator ``g`` and **not** the servers' PRG seed
  (unawareness of ``g`` is what hides "how many owners hold value v",
  see the §5.1 lemma).
* **Servers** know ``m``, ``delta``, ``g``, ``eta'``, ``PF``,
  ``PF_s1``/``PF_s2``, and the common PRG seed — but **not** ``eta``
  (they cannot reduce into the real group) and **not** ``PF_db*``
  (which is what makes verification unforgeable).
* The **announcer** knows only the extrema modulus.

Tests assert these views structurally withhold the forbidden parameters.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.crypto.permutation import Permutation
from repro.crypto.polynomial import OrderPreservingPolynomial
from repro.data.domain import Domain, ProductDomain


@dataclasses.dataclass(frozen=True)
class ServerGroupView:
    """What a server knows of the cyclic group: ``g``, ``delta``, ``eta'``.

    Deliberately excludes ``eta``.  Exponentiation uses the precomputed
    power table ``g^k mod eta'`` for ``k in [0, delta)``.
    """

    delta: int
    eta_prime: int
    g: int
    power_table: np.ndarray

    def pow_vector(self, exponents: np.ndarray) -> np.ndarray:
        """Vectorised ``g ** (e mod delta) mod eta'`` — the Eq. 3 kernel."""
        return self.power_table[np.mod(exponents, self.delta)]


@dataclasses.dataclass(frozen=True)
class OwnerParams:
    """Parameters dealt to every DB owner (assumptions i–viii of §4)."""

    num_owners: int
    delta: int
    eta: int
    field_prime: int
    domain: Domain | ProductDomain
    pf: Permutation
    pf_owners: Permutation
    pf_db1: Permutation
    pf_db2: Permutation
    polynomial: OrderPreservingPolynomial
    extrema_modulus: int
    hash_seed: int


@dataclasses.dataclass(frozen=True)
class ServerParams:
    """Parameters dealt to every server (§4, 'parameters known to servers')."""

    num_owners: int
    delta: int
    group: ServerGroupView
    field_prime: int
    pf: Permutation
    pf_owners: Permutation
    pf_s1: Permutation
    pf_s2: Permutation
    prg_seed: int
    extrema_modulus: int
    m_share: int  # this server's additive share of m (provided once, §4)


@dataclasses.dataclass(frozen=True)
class AnnouncerParams:
    """The announcer's knowledge (§3.2): the extrema-share modulus, plus —
    only when the deployment opts into announcer-driven bucket traversal
    (the §6.6 note "the role of DB owners in traversing the tree can be
    eliminated by involving S_a") — the group modulus ``eta`` it needs to
    recognise common bucket nodes.  Granting ``eta`` lets the announcer
    learn *which bucket nodes* are common (not the data); deployments that
    must not leak that keep the default owner-driven traversal.
    """

    extrema_modulus: int
    eta: int | None = None
