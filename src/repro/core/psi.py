"""PSI query execution (§5.1) and result verification (§5.2).

One communication round: the two additive-share servers sweep all owners'
χ shares through the Eq. 3 kernel and broadcast their length-``b`` output
vectors to the owners; each owner multiplies pointwise modulo ``eta``
(Eq. 4) and reads off the cells equal to 1.

With ``verify=True`` the servers additionally sweep the complement table
(Eq. 7) in the same round; owners un-permute with ``PF_db1`` and check
``r1 * r2 == 1 (mod eta)`` per cell (Eq. 8–10), which detects skipped
cells, replayed cells and injected values (§5.2).
"""

from __future__ import annotations

import numpy as np

from repro.core.results import PhaseTimings, SetResult
from repro.exceptions import ProtocolError


def psi_column_name(attribute: str | tuple, prefix: str = "") -> str:
    """Canonical stored-column name for a PSI attribute (or tuple)."""
    if isinstance(attribute, str):
        return prefix + attribute
    return prefix + "*".join(attribute)


def run_psi(system, attribute: str | tuple, verify: bool = False,
            num_threads: int | None = None, querier: int = 0,
            owner_ids: list[int] | None = None) -> SetResult:
    """Execute a PSI query over the outsourced χ shares.

    Args:
        system: a :class:`~repro.core.system.PrismSystem` (or anything with
            owners/servers/transport/num_threads).
        attribute: the PSI attribute ``A_c`` (or attribute tuple for
            multi-attribute PSI, §6.6).
        verify: also run and check the §5.2 verification stream; raises
            :class:`~repro.exceptions.VerificationError` on tampering.
        num_threads: server-side thread count (default: system setting).
        querier: which owner finalises/decodes the result (all owners
            receive it; one representative does the bookkeeping here).
        owner_ids: restrict the query to a subset of owners (m becomes the
            subset size).

    Returns:
        A :class:`SetResult` whose ``values`` are the intersection.
    """
    threads = num_threads if num_threads is not None else system.num_threads
    column = psi_column_name(attribute)
    timings = PhaseTimings()
    transport = system.transport
    servers = system.servers[:2]
    owner = system.owners[querier]

    transport.begin_round("psi")
    outputs = []
    vouts = []
    for server in servers:
        with timings.measure("fetch"):
            shares = server.fetch_additive(column, owner_ids)
            vshares = (server.fetch_additive("v" + column, owner_ids)
                       if verify else None)
        with timings.measure("server"):
            out = server.psi_round(column, threads, owner_ids, shares)
            vout = (server.verification_round("v" + column, threads,
                                              owner_ids, vshares)
                    if verify else None)
        receivers = [o.endpoint for o in system.owners]
        transport.broadcast(server.endpoint, receivers, "psi-output", out)
        outputs.append(out)
        if verify:
            transport.broadcast(server.endpoint, receivers, "psi-vout", vout)
            vouts.append(vout)

    with timings.measure("owner"):
        fop = owner.finalize_psi(outputs[0], outputs[1])
        member = owner.psi_membership(fop)
        verified = False
        if verify:
            owner.verify_psi(fop, vouts[0], vouts[1])
            verified = True
        values = owner.decode_cells(member, attribute)

    return SetResult(values=values, membership=member, timings=timings,
                     traffic=transport.stats.summary(), verified=verified)


def psi_reference(relations, attribute: str | tuple) -> set:
    """Plaintext oracle: the true intersection, for tests and benches."""
    sets = []
    for rel in relations:
        if isinstance(attribute, str):
            sets.append(set(rel.distinct(attribute)))
        else:
            columns = [rel.column(a) for a in attribute]
            sets.append(set(zip(*columns)))
    if not sets:
        raise ProtocolError("no relations supplied")
    out = sets[0]
    for s in sets[1:]:
        out &= s
    return out


def membership_vector(values, domain) -> np.ndarray:
    """Boolean membership vector of a value collection over a domain."""
    member = np.zeros(domain.size, dtype=bool)
    for v in values:
        member[domain.cell_of(v)] = True
    return member
