"""The gateway session protocol: kinds and wire forms.

Gateway sessions speak the same framed envelope as entity RPCs
(:func:`repro.network.codec.encode_frame`), but in a dedicated message
namespace (:data:`repro.network.codec.GATEWAY_PREFIX`): a frame kind of
``gw:<verb>`` is a session request to the gateway, never an entity
method — an entity host refuses them, and the gateway refuses
un-prefixed kinds.  This module defines the verbs and the wire forms of
everything a session moves:

* **queries** — SQL strings travel verbatim; every richer form (fluent
  :class:`~repro.api.builder.Q` builders, dicts, legacy specs) is
  lowered client-side to the frozen :class:`~repro.api.plan.LogicalPlan`
  IR and shipped as its field dict (:func:`plan_to_wire`), so the
  gateway re-hydrates exactly the plan the client built;
* **results** — every canonical result shape
  (:class:`~repro.core.results.SetResult` and friends, multi-aggregate
  dicts, the bucketized ``(SetResult, stats)`` pair, ``EXPLAIN``
  strings) round-trips through :func:`result_to_wire` /
  :func:`result_from_wire` bit-identically in its values (timings stay
  informational);
* **dataset definitions** — relations and enumerated domains for the
  ``gw:register`` outsourcing path.

Errors need no session-specific treatment: the gateway replies with the
standard ``__error__`` frame carrying the exception's type name, and
:func:`repro.network.rpc._remote_exception` rebuilds it client-side —
which is how :class:`~repro.exceptions.AuthError` and
:class:`~repro.exceptions.AdmissionError` surface as the same types on
both sides of the socket.
"""

from __future__ import annotations

import numpy as np

from repro.api.plan import LogicalPlan
from repro.core.results import (
    AggregateResult,
    CountResult,
    ExtremaResult,
    MedianResult,
    PhaseTimings,
    SetResult,
)
from repro.data.domain import Domain
from repro.data.relation import Relation
from repro.exceptions import ProtocolError
from repro.network.codec import gateway_kind

#: Session verbs (the gateway's dispatch table keys).
HELLO = gateway_kind("hello")
REGISTER = gateway_kind("register")
DATASETS = gateway_kind("datasets")
QUERY = gateway_kind("query")
EXPLAIN = gateway_kind("explain")
STATS = gateway_kind("stats")
HEALTHZ = gateway_kind("healthz")

#: Protocol revision carried in the hello exchange.
PROTOCOL_VERSION = 1


# -- queries ------------------------------------------------------------------


def plan_to_wire(plan: LogicalPlan) -> dict:
    """The codec-encodable field dict of a lowered plan."""
    return {
        "set_op": plan.set_op,
        "attribute": plan.attribute,
        "aggregates": [list(pair) for pair in plan.aggregates],
        "verify": plan.verify,
        "reveal_holders": plan.reveal_holders,
        "bucketized": plan.bucketized,
        "owner_ids": (list(plan.owner_ids)
                      if plan.owner_ids is not None else None),
        "querier": plan.querier,
    }


def plan_from_wire(data: dict) -> LogicalPlan:
    """Re-hydrate a :class:`LogicalPlan` shipped by :func:`plan_to_wire`.

    Raises:
        ProtocolError: when required fields are missing or malformed
            (:class:`~repro.exceptions.QueryError` still propagates for
            plans that are well-formed on the wire but semantically
            invalid — the validation lives in the IR, not here).
    """
    try:
        attribute = data["attribute"]
        if isinstance(attribute, (list, tuple)):
            attribute = tuple(str(a) for a in attribute)
        owner_ids = data.get("owner_ids")
        return LogicalPlan(
            set_op=str(data["set_op"]),
            attribute=attribute,
            aggregates=tuple(
                (str(fn), None if attr is None else str(attr))
                for fn, attr in data.get("aggregates", ())),
            verify=bool(data.get("verify", False)),
            reveal_holders=bool(data.get("reveal_holders", True)),
            bucketized=bool(data.get("bucketized", False)),
            owner_ids=(tuple(int(i) for i in owner_ids)
                       if owner_ids is not None else None),
            querier=int(data.get("querier", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed wire plan: {exc}") from exc


def query_to_wire(query, planner) -> object:
    """One query in wire form: SQL verbatim, anything else as its plan."""
    if isinstance(query, str):
        return query
    return {"plan": plan_to_wire(planner.lower(query))}


def query_from_wire(payload):
    """Inverse of :func:`query_to_wire` (SQL string or plan dict)."""
    if isinstance(payload, str):
        return payload
    if isinstance(payload, dict) and "plan" in payload:
        return plan_from_wire(payload["plan"])
    raise ProtocolError(
        f"malformed wire query: expected SQL text or a plan dict, got "
        f"{type(payload).__name__}")


# -- results ------------------------------------------------------------------


def _timings_to_wire(timings) -> dict:
    return dict(getattr(timings, "seconds", {}) or {})


def _timings_from_wire(data) -> PhaseTimings:
    timings = PhaseTimings()
    for phase, seconds in (data or {}).items():
        timings.add(str(phase), float(seconds))
    return timings


def result_to_wire(result) -> dict:
    """Encode one canonical query result for the session wire.

    Raises:
        ProtocolError: for result shapes no session verb produces.
    """
    if result is None:
        return {"type": "None"}
    if isinstance(result, str):
        return {"type": "str", "value": result}
    if isinstance(result, SetResult):
        return {
            "type": "SetResult",
            "values": list(result.values),
            "membership": np.asarray(result.membership).astype(np.int64),
            "timings": _timings_to_wire(result.timings),
            "traffic": dict(result.traffic or {}),
            "verified": bool(result.verified),
        }
    if isinstance(result, CountResult):
        return {
            "type": "CountResult",
            "count": int(result.count),
            "timings": _timings_to_wire(result.timings),
            "traffic": dict(result.traffic or {}),
        }
    if isinstance(result, AggregateResult):
        return {
            "type": "AggregateResult",
            "per_value": dict(result.per_value),
            "timings": _timings_to_wire(result.timings),
            "traffic": dict(result.traffic or {}),
            "verified": bool(result.verified),
        }
    if isinstance(result, ExtremaResult):
        return {
            "type": "ExtremaResult",
            "per_value": dict(result.per_value),
            "holders": {value: [int(o) for o in owners]
                        for value, owners in (result.holders or {}).items()},
            "timings": _timings_to_wire(result.timings),
            "traffic": dict(result.traffic or {}),
        }
    if isinstance(result, MedianResult):
        return {
            "type": "MedianResult",
            "per_value": dict(result.per_value),
            "timings": _timings_to_wire(result.timings),
            "traffic": dict(result.traffic or {}),
        }
    if isinstance(result, dict):
        # A multi-aggregate plan: an ordered dict keyed "SUM(cost)"-style.
        return {
            "type": "ResultMap",
            "keys": list(result.keys()),
            "items": {str(key): result_to_wire(value)
                      for key, value in result.items()},
        }
    if isinstance(result, tuple) and len(result) == 2:
        # Bucketized PSI: (SetResult, traversal-stats dict).
        return {
            "type": "Bucketized",
            "set": result_to_wire(result[0]),
            "stats": dict(result[1] or {}),
        }
    raise ProtocolError(
        f"cannot ship result of type {type(result).__name__} over a "
        f"gateway session")


def result_from_wire(data):
    """Inverse of :func:`result_to_wire`.

    Raises:
        ProtocolError: on an unknown result type or malformed body.
    """
    if not isinstance(data, dict) or "type" not in data:
        raise ProtocolError(f"malformed wire result: {data!r}")
    kind = data["type"]
    try:
        if kind == "None":
            return None
        if kind == "str":
            return str(data["value"])
        if kind == "SetResult":
            return SetResult(
                values=list(data["values"]),
                membership=np.asarray(data["membership"]).astype(bool),
                timings=_timings_from_wire(data.get("timings")),
                traffic=dict(data.get("traffic") or {}),
                verified=bool(data.get("verified", False)),
            )
        if kind == "CountResult":
            return CountResult(
                count=int(data["count"]),
                timings=_timings_from_wire(data.get("timings")),
                traffic=dict(data.get("traffic") or {}),
            )
        if kind == "AggregateResult":
            return AggregateResult(
                per_value=dict(data["per_value"]),
                timings=_timings_from_wire(data.get("timings")),
                traffic=dict(data.get("traffic") or {}),
                verified=bool(data.get("verified", False)),
            )
        if kind == "ExtremaResult":
            return ExtremaResult(
                per_value=dict(data["per_value"]),
                holders={value: [int(o) for o in owners]
                         for value, owners in dict(data["holders"]).items()},
                timings=_timings_from_wire(data.get("timings")),
                traffic=dict(data.get("traffic") or {}),
            )
        if kind == "MedianResult":
            return MedianResult(
                per_value=dict(data["per_value"]),
                timings=_timings_from_wire(data.get("timings")),
                traffic=dict(data.get("traffic") or {}),
            )
        if kind == "ResultMap":
            items = dict(data["items"])
            return {str(key): result_from_wire(items[str(key)])
                    for key in data["keys"]}
        if kind == "Bucketized":
            return (result_from_wire(data["set"]),
                    dict(data.get("stats") or {}))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed wire result: {exc}") from exc
    raise ProtocolError(f"unknown wire result type {kind!r}")


# -- dataset definitions ------------------------------------------------------


def relations_to_wire(relations) -> list:
    """Relations as ``{"name", "columns"}`` dicts for ``gw:register``."""
    out = []
    for relation in relations:
        out.append({
            "name": relation.name,
            "columns": {name: list(relation.column(name))
                        for name in relation.column_names},
        })
    return out


def relations_from_wire(data) -> list:
    """Inverse of :func:`relations_to_wire`.

    Raises:
        ProtocolError: on a malformed relation body
            (:class:`~repro.exceptions.QueryError` propagates for
            structurally valid but empty/ragged relations).
    """
    relations = []
    try:
        for item in data:
            relations.append(Relation(str(item["name"]),
                                      dict(item["columns"])))
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed wire relation: {exc}") from exc
    return relations


def domain_to_wire(domain) -> dict:
    """An enumerated domain as its attribute + value list.

    Only plain enumerated :class:`~repro.data.domain.Domain` instances
    register over the wire (hashed/product domains are a server-side
    configuration choice — register those through the gateway's Python
    surface).
    """
    if not isinstance(domain, Domain):
        raise ProtocolError(
            f"only enumerated domains register over a session; got "
            f"{type(domain).__name__}")
    return {"attribute": domain.attribute, "values": list(domain.values())}


def domain_from_wire(data) -> Domain:
    """Inverse of :func:`domain_to_wire`."""
    try:
        return Domain(str(data["attribute"]), list(data["values"]))
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed wire domain: {exc}") from exc
