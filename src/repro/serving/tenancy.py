"""Tenancy for the serving gateway: tokens, namespaces, datasets.

The model mirrors a schema-per-tenant warehouse:

* every session authenticates with a **bearer token**; the
  :class:`TenantDirectory` maps it to a tenant name, and that name —
  never the token — scopes everything else;
* each tenant owns a **namespace** of named datasets; a bare dataset
  name (``"hospital"``) resolves inside the caller's own namespace
  only;
* cross-tenant reads use a qualified ``"owner/name"`` reference and
  succeed only when the owner registered the dataset as ``shared`` or
  granted the caller explicitly — anything else is a typed
  :class:`~repro.exceptions.AuthError`, raised in the gateway's
  dispatch layer before a handler ever sees the request.

A :class:`Dataset` bundles the resident :class:`~repro.core.system
.PrismSystem` (outsourced once at registration) with the *single*
:class:`~repro.api.client.PrismClient` every session's submissions
funnel through — which is what lets queries from different tenants
against the same shared dataset coalesce into one fused batch tick.
"""

from __future__ import annotations

import threading

from repro.exceptions import AuthError, QueryError


def reap_processes(processes, timeout: float = 5.0) -> None:
    """Terminate and join forked entity hosts; escalate to kill.

    Works for both :class:`multiprocessing.Process` children (from
    :func:`~repro.network.host.launch_forked_hosts`) and
    ``subprocess.Popen`` handles — no forked host may outlive its
    gateway.
    """
    for process in processes:
        alive = (process.is_alive() if hasattr(process, "is_alive")
                 else process.poll() is None)
        if alive:
            process.terminate()
    for process in processes:
        try:
            if hasattr(process, "join"):
                process.join(timeout)
                if process.is_alive():
                    process.kill()
                    process.join(timeout)
            else:
                process.wait(timeout=timeout)
        except Exception:
            process.kill()


class TenantDirectory:
    """Bearer-token → tenant-name authentication table."""

    def __init__(self, tokens: dict | None = None):
        #: ``{token: tenant}``; tokens are opaque strings.
        self._tokens = dict(tokens or {})

    def add(self, token: str, tenant: str) -> None:
        self._tokens[str(token)] = str(tenant)

    def authenticate(self, token) -> str:
        """The tenant owning ``token``.

        Raises:
            AuthError: unknown or missing token.
        """
        tenant = self._tokens.get(token)
        if tenant is None:
            raise AuthError("unknown or missing tenant token")
        return tenant

    @property
    def tenants(self) -> list:
        return sorted(set(self._tokens.values()))


class Dataset:
    """One registered dataset: a resident system + its shared funnel."""

    def __init__(self, owner: str, name: str, system, client,
                 shared: bool = False, grants=(), processes=()):
        self.owner = owner
        self.name = name
        self.system = system
        #: The one PrismClient all sessions' submissions go through.
        self.client = client
        self.shared = bool(shared)
        self.grants = frozenset(grants)
        #: Forked entity-host processes backing this dataset, if any.
        self.processes = list(processes)
        self._queries_by_tenant: dict[str, int] = {}
        self._lock = threading.Lock()

    def accessible_by(self, tenant: str) -> bool:
        return (tenant == self.owner or self.shared
                or tenant in self.grants)

    def count_query(self, tenant: str, n: int = 1) -> None:
        with self._lock:
            self._queries_by_tenant[tenant] = (
                self._queries_by_tenant.get(tenant, 0) + n)

    @property
    def ref(self) -> str:
        return f"{self.owner}/{self.name}"

    @property
    def stats(self) -> dict:
        with self._lock:
            by_tenant = dict(self._queries_by_tenant)
        scheduler = self.client.stats.get("scheduler", {})
        fusion = self.client.stats.get("fusion", {})
        return {
            "owner": self.owner,
            "shared": self.shared,
            "grants": sorted(self.grants),
            "queries_by_tenant": by_tenant,
            "scheduler": dict(scheduler),
            "fusion": dict(fusion),
            "pool_health": self.system.pool_health()["status"],
        }

    def close(self) -> None:
        self.client.close()
        self.system.close()
        reap_processes(self.processes)
        self.processes.clear()


class DatasetRegistry:
    """Named datasets keyed ``(owner-tenant, name)``.

    Resolution and authorization happen together in :meth:`resolve`, so
    the dispatch layer makes exactly one call per request and handlers
    only ever see datasets the caller may touch.
    """

    def __init__(self):
        self._datasets: dict[tuple[str, str], Dataset] = {}
        self._lock = threading.Lock()

    def register(self, dataset: Dataset) -> None:
        """Add a dataset under its owner's namespace.

        Raises:
            QueryError: the owner already has a dataset of that name.
        """
        key = (dataset.owner, dataset.name)
        with self._lock:
            if key in self._datasets:
                raise QueryError(
                    f"tenant {dataset.owner!r} already has a dataset "
                    f"named {dataset.name!r}")
            self._datasets[key] = dataset

    def resolve(self, tenant: str, ref: str) -> Dataset:
        """The dataset ``ref`` names, if ``tenant`` may use it.

        ``ref`` is either a bare name (the caller's own namespace) or
        ``"owner/name"`` for a cross-tenant reference.

        Raises:
            AuthError: the dataset exists but ``tenant`` has no access
                (not shared with it, not granted).  Deliberately raised
                *before* existence is revealed for foreign namespaces:
                probing another tenant's namespace for a missing name
                gets the same AuthError as a real-but-refused dataset.
            QueryError: no such dataset in the caller's own namespace.
        """
        owner, _, name = str(ref).rpartition("/")
        if not owner:
            owner = tenant
        with self._lock:
            dataset = self._datasets.get((owner, name))
        if owner != tenant:
            if dataset is None or not dataset.accessible_by(tenant):
                raise AuthError(
                    f"tenant {tenant!r} may not access dataset "
                    f"{owner}/{name}")
            return dataset
        if dataset is None:
            raise QueryError(
                f"tenant {tenant!r} has no dataset named {name!r}")
        return dataset

    def visible_to(self, tenant: str) -> list:
        """Refs ``tenant`` may query: its own + shared/granted foreign."""
        with self._lock:
            datasets = list(self._datasets.values())
        refs = []
        for dataset in datasets:
            if dataset.owner == tenant:
                refs.append(dataset.name)
            elif dataset.accessible_by(tenant):
                refs.append(dataset.ref)
        return sorted(refs)

    def all(self) -> list:
        with self._lock:
            return list(self._datasets.values())

    def close(self) -> None:
        for dataset in self.all():
            dataset.close()
        with self._lock:
            self._datasets.clear()
