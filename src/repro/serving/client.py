"""The gateway-session client: PrismClient's surface over a socket.

:class:`GatewayClient` mirrors the :class:`~repro.api.client.PrismClient`
query surface — ``execute`` / ``execute_many`` / ``submit`` / ``explain``
— but sends every call to a resident :class:`~repro.serving.gateway
.Gateway` instead of owning a deployment.  Rich query forms lower to the
:class:`~repro.api.plan.LogicalPlan` IR *client-side* (the same
:class:`~repro.api.planner.Planner` a direct client uses), so the
gateway executes exactly the plan the caller built; SQL travels
verbatim.

Transport is one multiplexed connection on the process-wide
:class:`~repro.network.dispatch.DispatchLoop` — the same selector
thread that drives TCP entity channels — so ``submit`` pipelines:
requests go out immediately, replies route back by correlation id in
whatever order the gateway finishes them, and many in-flight
submissions from one client coalesce gateway-side just like
submissions from many clients.

Typed errors cross the socket: a tenancy violation raises
:class:`~repro.exceptions.AuthError` here, over-limit traffic raises
:class:`~repro.exceptions.AdmissionError` (with ``retry_after`` when
the gateway provided one), exactly as if raised in-process.  And the
gateway itself dying mid-call raises
:class:`~repro.exceptions.GatewayDisconnected` carrying the last known
gateway address — never a bare transport error.
"""

from __future__ import annotations

from repro.api.planner import Planner
from repro.api.sql import split_explain
from repro.exceptions import GatewayDisconnected, QueryError
from repro.network.dispatch import (
    ConnectionLost,
    DispatchLoop,
    _connect_retry,
    _lifecycle_timeout,
    _MuxConnection,
)
from repro.network.rpc import PING, RpcMessage
from repro.serving import session as proto


class GatewayFuture:
    """Handle for one pipelined gateway query's eventual result."""

    def __init__(self, pending, timeout: float | None = None,
                 address: str | None = None):
        self._pending = pending
        self._timeout = timeout
        self._address = address

    def result(self, timeout: float | None = None):
        """Block for the query result; raises what the gateway raised."""
        try:
            reply = self._pending.result(
                self._timeout if timeout is None else timeout)
        except ConnectionLost as exc:
            raise GatewayDisconnected(
                f"gateway at {self._address} disconnected mid-call: {exc}",
                address=self._address) from exc
        return proto.result_from_wire(reply.payload)


class GatewayClient:
    """A tenant session against a running serving gateway.

    Args:
        host, port: the gateway's listen address.
        token: bearer token identifying the tenant (see
            :class:`~repro.serving.tenancy.TenantDirectory`).
        dataset: default dataset reference for queries (a bare name in
            this tenant's namespace, or ``"owner/name"``); any call may
            override it.
        connect_timeout: seconds to retry the TCP connect (the gateway
            may still be booting).
        request_timeout: per-request reply deadline (``None``: wait
            forever — matching entity channels).
        probe_timeout: reply deadline for lifecycle calls (``ping`` /
            ``healthz``) — bounded even when queries may take minutes.
    """

    def __init__(self, host: str, port: int, token: str,
                 dataset: str | None = None,
                 connect_timeout: float = 10.0,
                 request_timeout: float | None = None,
                 probe_timeout: float | None = 5.0):
        self.request_timeout = request_timeout
        self.probe_timeout = probe_timeout
        self.default_dataset = dataset
        #: Last known gateway address (carried on GatewayDisconnected).
        self.address = f"{host}:{port}"
        self.planner = Planner()
        self._queries = 0
        self._explains = 0
        sock = _connect_retry(host, port, connect_timeout)
        self._conn = _MuxConnection(sock, f"gateway {host}:{port}",
                                    DispatchLoop.shared())
        hello = self._call(proto.HELLO,
                           {"token": token,
                            "protocol": proto.PROTOCOL_VERSION})
        #: The tenant this session authenticated as.
        self.tenant = hello["tenant"]

    # -- datasets -------------------------------------------------------------

    def register(self, name: str, relations, domain, psi_attribute,
                 agg_attributes=(), with_verification: bool = False,
                 shared: bool = False, grants=(), seed: int = 0) -> dict:
        """Outsource a named dataset into this tenant's namespace."""
        return self._call(proto.REGISTER, {
            "name": name,
            "relations": proto.relations_to_wire(relations),
            "domain": proto.domain_to_wire(domain),
            "psi_attribute": psi_attribute,
            "agg_attributes": list(agg_attributes),
            "with_verification": with_verification,
            "shared": shared,
            "grants": list(grants),
            "seed": seed,
        })

    def datasets(self) -> list:
        """Dataset refs this tenant may query (own + shared/granted)."""
        return list(self._call(proto.DATASETS, None))

    # -- queries --------------------------------------------------------------

    def submit(self, query, dataset: str | None = None,
               num_threads: int | None = None,
               num_shards: int | None = None) -> GatewayFuture:
        """Pipeline one query; returns a future-like reply handle.

        All submissions in flight at the gateway dataset's next drain
        tick — this client's and every other session's — execute as one
        fused batch.
        """
        payload = {"dataset": self._dataset(dataset),
                   "query": proto.query_to_wire(query, self.planner)}
        if num_threads is not None:
            payload["num_threads"] = int(num_threads)
        if num_shards is not None:
            payload["num_shards"] = num_shards
        try:
            pending = self._conn.request(RpcMessage(proto.QUERY, payload))
        except ConnectionLost as exc:
            raise GatewayDisconnected(
                f"gateway at {self.address} is gone: {exc}",
                address=self.address) from exc
        self._queries += 1
        return GatewayFuture(pending, self.request_timeout, self.address)

    def execute(self, query, dataset: str | None = None,
                num_threads: int | None = None,
                num_shards: int | None = None):
        """Run one query of any supported form, blocking for its result.

        SQL strings may carry an ``EXPLAIN`` prefix, in which case the
        plan's description is returned and nothing executes — same
        contract as :meth:`PrismClient.execute`.
        """
        if isinstance(query, str):
            was_explain, rest = split_explain(query)
            if was_explain:
                return self.explain(rest, dataset=dataset)
        return self.submit(query, dataset=dataset, num_threads=num_threads,
                           num_shards=num_shards).result()

    def execute_many(self, queries, dataset: str | None = None) -> list:
        """Run many queries; all are pipelined before any reply is read."""
        futures = [self.submit(query, dataset=dataset) for query in queries]
        return [future.result() for future in futures]

    def explain(self, query, dataset: str | None = None) -> str:
        """The plan's description + dispatch routes, without executing."""
        text = self._call(proto.EXPLAIN,
                          {"dataset": self._dataset(dataset),
                           "query": proto.query_to_wire(query,
                                                        self.planner)})
        self._explains += 1
        return text

    # -- ops surface ----------------------------------------------------------

    def gateway_stats(self) -> dict:
        """The gateway's ops counters: sessions, admission, tenants,
        per-dataset scheduler/fusion stats."""
        return self._call(proto.STATS, None)

    def healthz(self) -> dict:
        """The gateway's liveness report (short probe deadline)."""
        return self._call(proto.HEALTHZ, None,
                          timeout=_lifecycle_timeout(self.request_timeout,
                                                     self.probe_timeout))

    def ping(self) -> bool:
        return self._call(PING, None,
                          timeout=_lifecycle_timeout(
                              self.request_timeout,
                              self.probe_timeout)) == "pong"

    @property
    def stats(self) -> dict:
        """This session's local counters."""
        return {"tenant": self.tenant, "queries": self._queries,
                "explains": self._explains,
                "transport": dict(self._conn.stats)}

    # -- plumbing -------------------------------------------------------------

    def _dataset(self, override: str | None) -> str:
        dataset = override or self.default_dataset
        if dataset is None:
            raise QueryError(
                "no dataset named: pass dataset= or set a default on the "
                "client")
        return str(dataset)

    _UNSET = object()

    def _call(self, kind: str, payload, timeout=_UNSET):
        if timeout is self._UNSET:
            timeout = self.request_timeout
        try:
            reply = self._conn.request(RpcMessage(kind, payload)).result(
                timeout)
        except ConnectionLost as exc:
            raise GatewayDisconnected(
                f"gateway at {self.address} disconnected mid-call: {exc}",
                address=self.address) from exc
        return reply.payload

    def close(self) -> None:
        """Close the session connection (idempotent)."""
        if not self._conn.closed:
            self._conn.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
