"""The multi-tenant serving gateway (PR 7).

One resident :class:`~repro.serving.gateway.Gateway` process owns Prism
deployments — datasets registered and outsourced once, queried many
times by name — and serves many concurrent client sessions over the
framed RPC wire, with per-tenant namespaces, token-bucket admission
control, and cross-client query fusion.  :class:`GatewayClient` is the
session-side mirror of :class:`~repro.api.client.PrismClient`.
"""

from repro.serving.admission import AdmissionController, TokenBucket
from repro.serving.client import GatewayClient, GatewayFuture
from repro.serving.gateway import Gateway
from repro.serving.tenancy import Dataset, DatasetRegistry, TenantDirectory

__all__ = [
    "AdmissionController",
    "Dataset",
    "DatasetRegistry",
    "Gateway",
    "GatewayClient",
    "GatewayFuture",
    "TenantDirectory",
    "TokenBucket",
]
