"""The multi-tenant serving gateway: one resident deployment, many clients.

``repro-gateway`` (also ``python -m repro.serving.gateway``) runs a
resident process that owns Prism deployments and serves many concurrent
client sessions over the framed RPC protocol of
:mod:`repro.network.rpc`, in the ``gw:`` message namespace of
:mod:`repro.serving.session`.  The lifecycle the paper's one-shot
harness collapses into a single call — build, outsource, query, tear
down — here splits the way a warehouse serves it: datasets are
registered (outsourced) **once** and queried **many** times by name,
from any number of sessions, until the gateway retires them.

Layering of one request, top to bottom — tenancy and admission live in
the *dispatch* layer, so no handler ever sees a request it should not:

1. **session** — a thread per connection reads frames; the first must
   be ``gw:hello`` carrying a bearer token, which pins the session to a
   tenant (:class:`~repro.serving.tenancy.TenantDirectory`);
2. **admission** — per-tenant token buckets and the gateway-wide
   in-flight bound (:class:`~repro.serving.admission
   .AdmissionController`) refuse over-limit traffic with a typed
   :class:`~repro.exceptions.AdmissionError` before any work starts;
3. **tenancy** — the dataset reference resolves in the caller's
   namespace (:class:`~repro.serving.tenancy.DatasetRegistry`);
   cross-tenant refs are refused with a typed
   :class:`~repro.exceptions.AuthError` unless shared or granted;
4. **fusion** — the admitted query goes into the *dataset's* single
   :class:`~repro.api.client.PrismClient` coalescing scheduler, where
   submissions from different sessions — and different tenants, for a
   shared dataset — fuse into one :class:`~repro.core.batch.QueryBatch`
   tick; replies return out-of-order by correlation id as futures
   complete.

Shutdown is graceful: SIGTERM/SIGINT (or :meth:`Gateway.shutdown`)
stops accepting sessions, refuses new work with ``AdmissionError``,
drains admitted in-flight requests, then closes every dataset — which
terminates any entity-host processes the gateway forked, so no orphan
survives the gateway.
"""

from __future__ import annotations

import argparse
import signal
import socket
import sys
import threading
import time

from repro.api.client import PrismClient
from repro.core.system import PrismSystem
from repro.exceptions import (
    AdmissionError,
    AuthError,
    ProtocolError,
)
from repro.network.codec import (
    FULL_SPAN,
    decode_frame,
    encode_frame,
    is_gateway_kind,
)
from repro.network.host import (
    launch_forked_hosts,
    launch_forked_pools,
    pools_spec,
)
from repro.network.supervisor import HostSupervisor
from repro.network.rpc import (
    ERROR,
    PING,
    RESULT,
    recv_frame,
    send_frame,
)
from repro.serving import session as proto
from repro.serving.admission import AdmissionController
from repro.serving.tenancy import (
    Dataset,
    DatasetRegistry,
    TenantDirectory,
    reap_processes,
)


class _Session:
    """One connected client: socket, reply lock, authenticated tenant."""

    _ids = iter(range(1, 1 << 62))

    def __init__(self, sock: socket.socket, address):
        self.sock = sock
        self.address = address
        self.tenant: str | None = None
        self.send_lock = threading.Lock()
        self.id = next(self._ids)


class Gateway:
    """A resident serving gateway over one deployment mode.

    Args:
        tenants: ``{token: tenant-name}`` bearer-token directory.
        deployment: where each dataset's entities live — any
            :class:`~repro.core.system.PrismSystem` deployment spec
            (``"local"``, ``"subprocess"``, ``"tcp://..."`` including
            pooled forms), ``"forked-tcp"`` to have the gateway fork
            three entity-host processes per dataset and tear them down
            with it, or ``"forked-tcp:N"`` (N ≥ 2) for N supervised
            replicas per server role — members that die are failed
            over, respawned, and warm-rejoined automatically.
        host, port: listen address (``port=0``: ephemeral, see
            :attr:`port` after :meth:`start`).
        max_inflight: gateway-wide concurrent-query bound.
        rate_limit, burst: default per-tenant token-bucket parameters
            (requests/second and bucket capacity; ``None`` disables).
        tenant_rates: per-tenant ``{tenant: rate}`` or
            ``{tenant: (rate, burst)}`` overrides.
        coalesce_window: scheduler drain window of each dataset's
            shared :class:`~repro.api.client.PrismClient`.
        drain_timeout: seconds :meth:`shutdown` waits for in-flight
            requests before closing anyway.
    """

    def __init__(self, tenants: dict, deployment: str = "local",
                 host: str = "127.0.0.1", port: int = 0,
                 max_inflight: int | None = 64,
                 rate_limit: float | None = None,
                 burst: float | None = None,
                 tenant_rates: dict | None = None,
                 coalesce_window: float = 0.002,
                 drain_timeout: float = 10.0):
        self.directory = TenantDirectory(tenants)
        self.registry = DatasetRegistry()
        self.admission = AdmissionController(
            max_inflight=max_inflight, default_rate=rate_limit,
            default_burst=burst, tenant_rates=tenant_rates)
        self.deployment = deployment
        self.bind_host = host
        self.bind_port = port
        self.coalesce_window = coalesce_window
        self.drain_timeout = drain_timeout
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._session_threads: list[threading.Thread] = []
        self._sessions: set[_Session] = set()
        self._lock = threading.Lock()
        self._closing = False
        self._closed = False
        self._started = time.monotonic()
        self._sessions_total = 0
        self._tenant_counters: dict[str, dict] = {}

    # -- datasets -------------------------------------------------------------

    def register_dataset(self, tenant: str, name: str, relations, domain,
                         psi_attribute, agg_attributes=(),
                         with_verification: bool = False,
                         shared: bool = False, grants=(), seed: int = 0,
                         **system_options) -> Dataset:
        """Build + outsource a named dataset under ``tenant``'s namespace.

        The expensive Phase-1 outsourcing runs exactly once, here; every
        later query hits the resident system.  With the gateway's
        ``"forked-tcp"`` deployment this forks three entity hosts whose
        lifetime is tied to the dataset (and therefore the gateway).
        """
        deployment = self.deployment
        processes = []
        pools = None
        pool_size = 1
        if isinstance(deployment, str) and deployment.startswith("forked-tcp"):
            _, _, suffix = deployment.partition(":")
            pool_size = int(suffix) if suffix else 1
            if pool_size <= 1:
                deployment, processes = launch_forked_hosts(3)
            else:
                pools, processes = launch_forked_pools([pool_size] * 3)
                deployment = pools_spec(pools)
        system = None
        try:
            system = PrismSystem.build(
                relations, domain, psi_attribute,
                agg_attributes=agg_attributes,
                with_verification=with_verification,
                seed=seed, deployment=deployment, **system_options)
            if pools is not None:
                # Self-healing pools: the supervisor owns the forked
                # processes from here (system.close() reaps through it).
                HostSupervisor(system, pools, processes).start()
                processes = []
            client = PrismClient(system,
                                 coalesce_window=self.coalesce_window)
            dataset = Dataset(tenant, name, system, client,
                              shared=shared, grants=grants,
                              processes=processes)
            self.registry.register(dataset)
        except BaseException:
            if system is not None:
                system.close()
            reap_processes(processes)
            raise
        return dataset

    # -- lifecycle ------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._listener is None:
            raise ProtocolError("gateway is not listening (call start())")
        return self._listener.getsockname()[1]

    def start(self) -> "Gateway":
        """Bind the listener and start accepting sessions."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.bind_host, self.bind_port))
        listener.listen()
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="gateway-accept", daemon=True)
        self._accept_thread.start()
        return self

    def __enter__(self) -> "Gateway":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self, drain_timeout: float | None = None) -> None:
        """Graceful teardown: refuse, drain, then close everything.

        Idempotent.  New sessions and new work are refused immediately
        (typed ``AdmissionError``); requests already admitted get up to
        ``drain_timeout`` seconds to finish; then every dataset closes —
        terminating any forked entity hosts — and session sockets shut.
        """
        with self._lock:
            if self._closed:
                return
            already_closing = self._closing
            self._closing = True
        if already_closing:
            return
        if self._listener is not None:
            # Closing an fd does not reliably wake a thread blocked in
            # accept(); poke the listener so the accept loop observes
            # _closing, then close it.
            try:
                address = self._listener.getsockname()
                with socket.create_connection(address, timeout=1):
                    pass
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        timeout = self.drain_timeout if drain_timeout is None else drain_timeout
        self.admission.drain(timeout)
        self.registry.close()
        with self._lock:
            sessions = list(self._sessions)
        for session in sessions:
            try:
                session.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                session.sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for thread in list(self._session_threads):
            thread.join(timeout=5)
        with self._lock:
            self._closed = True

    # -- the serving loop -----------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, address = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            with self._lock:
                if self._closing:
                    conn.close()
                    continue
                session = _Session(conn, address)
                self._sessions.add(session)
                self._sessions_total += 1
                thread = threading.Thread(
                    target=self._serve_session, args=(session,),
                    name=f"gateway-session-{session.id}", daemon=True)
                self._session_threads.append(thread)
            thread.start()

    def _serve_session(self, session: _Session) -> None:
        sock = session.sock
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                blob = recv_frame(sock)
                if blob is None:
                    return
                try:
                    frame = decode_frame(blob)
                except ProtocolError as exc:
                    # No decodable correlation id: 0 routes the error to
                    # the oldest pending request client-side.
                    self._send(session, ERROR, 0, _error_payload(exc))
                    continue
                self._handle(session, frame)
        except (ProtocolError, OSError):
            return  # peer vanished mid-frame; the session just ends
        finally:
            with self._lock:
                self._sessions.discard(session)
            try:
                sock.close()
            except OSError:
                pass

    def _handle(self, session: _Session, frame) -> None:
        cid = frame.correlation_id
        try:
            if frame.kind == PING:
                self._send(session, RESULT, cid, "pong")
                return
            if not is_gateway_kind(frame.kind):
                raise ProtocolError(
                    f"kind {frame.kind!r} is not a gateway session verb; "
                    f"entity RPCs are not served here")
            if frame.kind == proto.HELLO:
                self._send(session, RESULT, cid, self._hello(session,
                                                             frame.payload))
                return
            if session.tenant is None:
                raise AuthError(
                    "session is not authenticated: send gw:hello with a "
                    "tenant token first")
            self._count(session.tenant, "requests")
            if frame.kind == proto.HEALTHZ:
                self._send(session, RESULT, cid, self._healthz())
                return
            if frame.kind == proto.STATS:
                self._send(session, RESULT, cid, self._stats())
                return
            if self._closing:
                raise AdmissionError(
                    "gateway is shutting down; not accepting new work")
            if frame.kind == proto.DATASETS:
                self._send(session, RESULT, cid,
                           self.registry.visible_to(session.tenant))
                return
            if frame.kind == proto.REGISTER:
                self._send(session, RESULT, cid,
                           self._register(session.tenant, frame.payload))
                return
            if frame.kind == proto.EXPLAIN:
                self._send(session, RESULT, cid,
                           self._explain(session.tenant, frame.payload))
                return
            if frame.kind == proto.QUERY:
                self._query(session, cid, frame.payload)
                return
            raise ProtocolError(f"unknown gateway verb {frame.kind!r}")
        except Exception as exc:
            tenant = session.tenant or "?"
            if isinstance(exc, AuthError):
                self._count(tenant, "rejected_auth")
            elif isinstance(exc, AdmissionError):
                self._count(tenant, "rejected_admission")
            self._send(session, ERROR, cid, _error_payload(exc))

    # -- handlers -------------------------------------------------------------

    def _hello(self, session: _Session, payload) -> dict:
        if not isinstance(payload, dict):
            raise ProtocolError("gw:hello payload must be a dict")
        version = payload.get("protocol", proto.PROTOCOL_VERSION)
        if version != proto.PROTOCOL_VERSION:
            raise ProtocolError(
                f"gateway speaks session protocol "
                f"{proto.PROTOCOL_VERSION}, client sent {version}")
        if self._closing:
            raise AdmissionError(
                "gateway is shutting down; refusing new sessions")
        session.tenant = self.directory.authenticate(payload.get("token"))
        self._count(session.tenant, "hellos")
        return {"tenant": session.tenant,
                "protocol": proto.PROTOCOL_VERSION,
                "gateway": "repro-gateway"}

    def _register(self, tenant: str, payload) -> dict:
        if not isinstance(payload, dict) or "name" not in payload:
            raise ProtocolError("gw:register payload must name the dataset")
        self.admission.admit(tenant)
        try:
            dataset = self.register_dataset(
                tenant, str(payload["name"]),
                proto.relations_from_wire(payload.get("relations") or []),
                proto.domain_from_wire(payload.get("domain") or {}),
                payload.get("psi_attribute"),
                agg_attributes=tuple(payload.get("agg_attributes") or ()),
                with_verification=bool(payload.get("with_verification",
                                                   False)),
                shared=bool(payload.get("shared", False)),
                grants=tuple(payload.get("grants") or ()),
                seed=int(payload.get("seed", 0)))
        finally:
            self.admission.release()
        self._count(tenant, "registers")
        return {"dataset": dataset.name, "owner": dataset.owner,
                "owners": len(dataset.system.owners),
                "shared": dataset.shared}

    def _explain(self, tenant: str, payload) -> str:
        dataset, query = self._resolve_query(tenant, payload)
        self.admission.admit(tenant)
        try:
            text = dataset.client.explain(query)
        finally:
            self.admission.release()
        self._count(tenant, "explains")
        return text

    def _query(self, session: _Session, cid: int, payload) -> None:
        tenant = session.tenant
        dataset, query = self._resolve_query(tenant, payload)
        self.admission.admit(tenant)
        try:
            future = dataset.client.submit(
                query,
                num_threads=payload.get("num_threads"),
                num_shards=payload.get("num_shards"))
        except BaseException:
            self.admission.release()
            raise
        dataset.count_query(tenant)
        self._count(tenant, "queries")

        def _reply(fut) -> None:
            try:
                try:
                    wire = proto.result_to_wire(fut.result())
                except Exception as exc:
                    self._send(session, ERROR, cid, _error_payload(exc))
                else:
                    self._send(session, RESULT, cid, wire)
            finally:
                self.admission.release()

        future.add_done_callback(_reply)

    def _resolve_query(self, tenant: str, payload):
        """Authorize the dataset ref and re-hydrate the wire query."""
        if not isinstance(payload, dict) or "dataset" not in payload:
            raise ProtocolError("query payload must name a dataset")
        dataset = self.registry.resolve(tenant, payload["dataset"])
        return dataset, proto.query_from_wire(payload.get("query"))

    def _healthz(self) -> dict:
        pools = {}
        degraded = False
        for dataset in self.registry.all():
            health = dataset.system.pool_health()
            pools[dataset.ref] = health
            degraded = degraded or health["status"] != "ok"
        if self._closing:
            status = "draining"
        elif degraded:
            # Queries still succeed via failover, but the report must
            # not lie "ok" while a pool runs ejected members.
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "protocol": proto.PROTOCOL_VERSION,
            "uptime": time.monotonic() - self._started,
            "accepting": not self._closing,
            "inflight": self.admission.inflight,
            "datasets": len(self.registry.all()),
            "pools": pools,
        }

    def _stats(self) -> dict:
        with self._lock:
            active = len(self._sessions)
            total = self._sessions_total
            tenants = {tenant: dict(counters)
                       for tenant, counters in self._tenant_counters.items()}
        return {
            "gateway": {"sessions_active": active, "sessions_total": total,
                        "deployment": self.deployment,
                        "uptime": time.monotonic() - self._started},
            "admission": self.admission.stats,
            "tenants": tenants,
            "datasets": {dataset.ref: dataset.stats
                         for dataset in self.registry.all()},
        }

    # -- plumbing -------------------------------------------------------------

    def _count(self, tenant: str, key: str, n: int = 1) -> None:
        with self._lock:
            counters = self._tenant_counters.setdefault(tenant, {})
            counters[key] = counters.get(key, 0) + n

    @staticmethod
    def _send(session: _Session, kind: str, cid: int, payload) -> None:
        try:
            blob = encode_frame(kind, cid, FULL_SPAN, payload)
        except ProtocolError as exc:
            blob = encode_frame(ERROR, cid, FULL_SPAN, _error_payload(exc))
        try:
            with session.send_lock:
                send_frame(session.sock, blob)
        except OSError:
            pass  # session died; its reader thread is winding down


def _error_payload(exc: Exception) -> dict:
    payload = {"type": type(exc).__name__, "message": str(exc)}
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        payload["retry_after"] = float(retry_after)
    address = getattr(exc, "address", None)
    if address is not None:
        payload["address"] = str(address)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Serve Prism deployments to many tenants over TCP.")
    parser.add_argument("--port", type=int, default=9061,
                        help="TCP port (0 = ephemeral; announced on stdout)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: loopback)")
    parser.add_argument("--deployment", default="local",
                        help="dataset deployment: local, subprocess, "
                             "forked-tcp, forked-tcp:N (N supervised "
                             "replicas per role), or a tcp:// spec")
    parser.add_argument("--tenant", action="append", default=[],
                        metavar="TOKEN=NAME",
                        help="tenant token mapping (repeatable); default "
                             "demo-token=demo")
    parser.add_argument("--rate-limit", type=float, default=None,
                        help="per-tenant requests/second (default: none)")
    parser.add_argument("--burst", type=float, default=None,
                        help="per-tenant bucket capacity (default: the rate)")
    parser.add_argument("--max-inflight", type=int, default=64,
                        help="gateway-wide concurrent query bound")
    parser.add_argument("--drain-timeout", type=float, default=10.0,
                        help="seconds to drain in-flight work on shutdown")
    args = parser.parse_args(argv)

    tenants = {}
    for item in args.tenant or ["demo-token=demo"]:
        token, sep, name = item.partition("=")
        if not sep or not token or not name:
            parser.error(f"--tenant wants TOKEN=NAME, got {item!r}")
        tenants[token] = name

    gateway = Gateway(tenants, deployment=args.deployment, host=args.host,
                      port=args.port, max_inflight=args.max_inflight,
                      rate_limit=args.rate_limit, burst=args.burst,
                      drain_timeout=args.drain_timeout)
    stop = threading.Event()

    def _on_signal(signum, _frame) -> None:
        print(f"GATEWAY DRAINING (signal {signum})", flush=True)
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    gateway.start()
    print(f"GATEWAY LISTENING {gateway.port}", flush=True)
    try:
        stop.wait()
    finally:
        gateway.shutdown()
        print("GATEWAY STOPPED", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
