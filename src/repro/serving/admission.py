"""Admission control for the serving gateway.

Two independent guards, both enforced in the gateway's dispatch layer
*before* a request reaches a handler or the coalescing scheduler:

* **Per-tenant token buckets** (:class:`TokenBucket`) — each tenant
  refills at ``rate`` requests/second up to a ``burst`` ceiling; an
  empty bucket rejects immediately with a typed
  :class:`~repro.exceptions.AdmissionError` carrying ``retry_after``.
* **A bounded in-flight queue** (:class:`AdmissionController`) — the
  gateway admits at most ``max_inflight`` concurrent queries across all
  sessions; request ``max_inflight + 1`` is refused, not queued, so a
  traffic spike can neither drop work silently nor grow memory without
  bound (the coalescing scheduler's pending list is capped by the same
  number).

Every decision is counted (admitted / rate-limited / queue-full, per
tenant), feeding the ``gw:stats`` surface.
"""

from __future__ import annotations

import threading
import time

from repro.exceptions import AdmissionError


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Thread-safe; time comes from :func:`time.monotonic`.  ``rate=None``
    disables the limit (every acquire succeeds).
    """

    def __init__(self, rate: float | None, burst: float | None = None):
        self.rate = None if rate is None else float(rate)
        if self.rate is not None and self.rate <= 0:
            raise ValueError("token bucket rate must be positive")
        self.burst = (float(burst) if burst is not None
                      else (self.rate if self.rate is not None else 0.0))
        self._tokens = self.burst
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> float | None:
        """Take ``tokens`` if available; returns ``None`` on success.

        On refusal returns the seconds until the bucket would admit the
        request (the ``retry_after`` hint) without consuming anything.
        """
        if self.rate is None:
            return None
        now = time.monotonic()
        with self._lock:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._updated) * self.rate)
            self._updated = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return None
            return (tokens - self._tokens) / self.rate


class AdmissionController:
    """The gateway's combined rate-limit + in-flight-bound gate.

    Args:
        max_inflight: concurrent queries admitted across all sessions
            (``None``: unbounded).
        default_rate: per-tenant token refill rate in requests/second
            (``None``: no rate limiting unless a tenant has an
            override).
        default_burst: per-tenant bucket capacity (``None``: the rate).
        tenant_rates: per-tenant ``{tenant: rate}`` or
            ``{tenant: (rate, burst)}`` overrides.
    """

    def __init__(self, max_inflight: int | None = None,
                 default_rate: float | None = None,
                 default_burst: float | None = None,
                 tenant_rates: dict | None = None):
        self.max_inflight = (None if max_inflight is None
                             else max(0, int(max_inflight)))
        self._default = (default_rate, default_burst)
        self._overrides = dict(tenant_rates or {})
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight = 0
        self._rejected_rate = 0
        self._rejected_queue = 0
        self._admitted = 0
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)

    def _bucket(self, tenant: str) -> TokenBucket:
        # Called under self._lock.
        bucket = self._buckets.get(tenant)
        if bucket is None:
            spec = self._overrides.get(tenant, self._default)
            if not isinstance(spec, tuple):
                spec = (spec, None)
            bucket = TokenBucket(*spec)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str) -> None:
        """Admit one request for ``tenant`` or raise.

        Raises:
            AdmissionError: the tenant's bucket is empty (carries
                ``retry_after``) or the in-flight queue is full.  The
                queue check runs first so an overloaded gateway never
                burns a tenant's tokens on a request it cannot take.
        """
        with self._lock:
            if (self.max_inflight is not None
                    and self._inflight >= self.max_inflight):
                self._rejected_queue += 1
                raise AdmissionError(
                    f"gateway in-flight queue is full "
                    f"({self._inflight}/{self.max_inflight} queries in "
                    f"flight); retry later")
            retry_after = self._bucket(tenant).try_acquire()
            if retry_after is not None:
                self._rejected_rate += 1
                raise AdmissionError(
                    f"tenant {tenant!r} is over its rate limit; retry in "
                    f"{retry_after:.3f}s", retry_after=retry_after)
            self._inflight += 1
            self._admitted += 1

    def release(self) -> None:
        """One admitted request finished (reply sent or failed)."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            if self._inflight == 0:
                self._drained.notify_all()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no admitted request is in flight.

        Returns ``False`` when ``timeout`` elapsed first.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._lock:
            while self._inflight:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._drained.wait(remaining)
            return True

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "inflight": self._inflight,
                "admitted": self._admitted,
                "rejected_rate_limit": self._rejected_rate,
                "rejected_queue_full": self._rejected_queue,
            }
