"""CSV import/export for relations.

Real deployments load owner data from files; this keeps the examples and
any downstream use honest without pulling in pandas.  Integer-looking
fields are parsed as ints (the protocols aggregate integers; §4 handles
decimals by scaling), everything else stays a string.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.data.relation import Relation
from repro.exceptions import QueryError


def _parse_field(text: str):
    """Int when it looks like one (incl. negatives), else the raw string."""
    stripped = text.strip()
    if stripped and (stripped.isdigit()
                     or (stripped[0] in "+-" and stripped[1:].isdigit())):
        return int(stripped)
    return stripped


def read_relation_csv(path: str | Path, name: str | None = None,
                      delimiter: str = ",") -> Relation:
    """Load a relation from a CSV file with a header row.

    Args:
        path: CSV file path.
        name: relation name (default: the file stem).
        delimiter: field separator.

    Raises:
        QueryError: on a missing/empty header or ragged rows.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as f:
        reader = csv.reader(f, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise QueryError(f"{path} is empty (no header row)") from None
        header = [h.strip() for h in header]
        if not header or any(not h for h in header):
            raise QueryError(f"{path} has a blank column name in its header")
        columns: dict[str, list] = {h: [] for h in header}
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue  # tolerate blank lines
            if len(row) != len(header):
                raise QueryError(
                    f"{path}:{line_no} has {len(row)} fields, "
                    f"expected {len(header)}"
                )
            for h, field in zip(header, row):
                columns[h].append(_parse_field(field))
    return Relation(name or path.stem, columns)


def write_relation_csv(relation: Relation, path: str | Path,
                       delimiter: str = ",") -> None:
    """Write a relation to CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f, delimiter=delimiter)
        writer.writerow(relation.column_names)
        writer.writerows(relation.rows())
