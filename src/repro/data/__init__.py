"""Data substrate: relations, domains, synthetic TPC-H data, share stores."""

from repro.data.csv_io import read_relation_csv, write_relation_csv
from repro.data.domain import Domain, HashedDomain, ProductDomain
from repro.data.relation import Relation
from repro.data.storage import ServerStore, ShareKind
from repro.data.tpch import (
    LINEITEM_COLUMNS,
    generate_fleet,
    generate_lineitem,
    lineitem_domain,
)

__all__ = [
    "Domain",
    "HashedDomain",
    "LINEITEM_COLUMNS",
    "ProductDomain",
    "Relation",
    "ServerStore",
    "ShareKind",
    "generate_fleet",
    "generate_lineitem",
    "lineitem_domain",
    "read_relation_csv",
    "write_relation_csv",
]
