"""Server-side secret-share storage, modelling the paper's Table 11.

Each owner outsources, per attribute, either an *additive* share vector
(the χ indicator tables, length ``b``) or a *Shamir* share vector (the
aggregation columns).  A server's :class:`ServerStore` holds its share of
every owner's every column; the paper's layout (five data columns, five
verification columns prefixed ``v``, plus the count column ``aOK``) maps
directly onto column names here (``OK``, ``vOK``, ``PK``, ..., ``aOK``).

The store also exposes the "data fetch" operation measured in Exp 1: the
servers read all owners' share vectors for a column before computing.
Fetches are memoised per ``(column, kind, owner set)`` — a batch whose
row groups all resolve to the same owner set (``owner_ids=None`` and the
explicit full-owner tuple hash to the same resolved key) assembles each
share list once, not once per row group — and the cache is dropped on
every :meth:`~ServerStore.put`, which also bumps :attr:`~ServerStore.version`
so sharded worker pools re-fork instead of computing over a stale
copy-on-write snapshot.

A store can additionally be marked *shard-aware*
(:meth:`~ServerStore.configure_sharding`): the sharded execution layer
(:mod:`repro.core.sharding`) then reads every χ-length vector as
``num_shards`` contiguous partitions through
:meth:`~ServerStore.shard_slice`.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.exceptions import ProtocolError


class ShareKind(enum.Enum):
    """How a stored column is shared (determines the legal operations)."""

    ADDITIVE = "additive"
    SHAMIR = "shamir"


class StoredColumn:
    """One owner's share of one column, plus its sharing kind."""

    __slots__ = ("values", "kind")

    def __init__(self, values: np.ndarray, kind: ShareKind):
        # Stored columns are the long-lived kernel inputs: require an
        # aligned, contiguous int64 copy *here* — the single retention
        # point — so the wire codec can hand out zero-copy views (which
        # may be unaligned and frame-backed) on the hot decode path
        # without pinning whole receive blobs in the store.
        self.values = np.require(values, dtype=np.int64,
                                 requirements=["ALIGNED", "C_CONTIGUOUS"])
        self.kind = kind

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes)


class ServerStore:
    """All share vectors held by a single server.

    Keys are ``(owner_id, column_name)``.  The protocols fetch *columns
    across owners* (e.g. every owner's ``OK`` share) — :meth:`fetch_column`
    returns them ordered by owner id, which is the layout the vectorised
    server kernels consume.
    """

    def __init__(self):
        self._data: dict[tuple[int, str], StoredColumn] = {}
        self._version = 0
        self._num_shards = 1  # deployment bookkeeping; see configure_sharding
        # (column, kind, resolved owner tuple) -> list of share vectors.
        self._fetch_cache: dict[tuple, list[np.ndarray]] = {}
        self._fetch_hits = 0
        self._fetch_misses = 0

    @property
    def version(self) -> int:
        """Mutation counter; bumps on every :meth:`put`.

        Consumers that snapshot the store (the fetch memo below, forked
        shard workers) compare versions to decide whether their view is
        stale.
        """
        return self._version

    @property
    def num_shards(self) -> int:
        """Contiguous χ partitions this store is configured for."""
        return self._num_shards

    def configure_sharding(self, num_shards: int) -> None:
        """Mark the store shard-aware: reads arrive as ``num_shards``
        contiguous partitions per vector (see :meth:`shard_slice`).  The
        span *decomposition* itself lives in the execution layer
        (:func:`repro.core.sharding.shard_bounds`), which sits above the
        data layer."""
        self._num_shards = max(1, int(num_shards))

    def shard_slice(self, owner_id: int, column: str, lo: int,
                    hi: int) -> np.ndarray:
        """One contiguous χ span of one owner's column (zero-copy view).

        The read the sharded workers perform: each shard-span task reads
        exactly its ``[lo, hi)`` partition of every input vector.
        """
        return self.get(owner_id, column).values[lo:hi]

    def put(self, owner_id: int, column: str, values: np.ndarray,
            kind: ShareKind) -> None:
        """Store (or overwrite) one owner's share of one column."""
        self._data[(owner_id, column)] = StoredColumn(values, kind)
        self._version += 1
        # Puts happen in bursts (outsourcing) and queries in between;
        # dropping the whole memo on write keeps reads trivially fresh.
        self._fetch_cache.clear()

    def get(self, owner_id: int, column: str) -> StoredColumn:
        try:
            return self._data[(owner_id, column)]
        except KeyError:
            raise ProtocolError(
                f"server holds no share of column {column!r} for owner {owner_id}"
            ) from None

    def has(self, owner_id: int, column: str) -> bool:
        return (owner_id, column) in self._data

    def owners_with(self, column: str) -> list[int]:
        """Owner ids that have outsourced the named column, sorted."""
        return sorted(o for (o, c) in self._data if c == column)

    def columns_of(self, owner_id: int) -> list[str]:
        """Column names outsourced by one owner, sorted."""
        return sorted(c for (o, c) in self._data if o == owner_id)

    def fetch_column(self, column: str, kind: ShareKind,
                     owner_ids: list[int] | None = None) -> list[np.ndarray]:
        """All owners' shares of ``column``, ordered by owner id.

        This is the Exp-1 "data fetch" step.  Raises if any owner's column
        was stored with a different :class:`ShareKind` than requested —
        mixing additive and Shamir shares is a protocol bug.

        Results are memoised per ``(column, kind, resolved owner set)``
        (``owner_ids=None`` resolves to the full owner tuple, so it
        shares an entry with the explicit full set); the memo is dropped
        on every :meth:`put`.  The returned list is a fresh copy, but
        the share vectors themselves are the stored arrays, exactly as
        before memoisation.
        """
        owners = owner_ids if owner_ids is not None else self.owners_with(column)
        if not owners:
            raise ProtocolError(f"no owner outsourced column {column!r}")
        key = (column, kind, tuple(owners))
        cached = self._fetch_cache.get(key)
        if cached is not None:
            self._fetch_hits += 1
            return list(cached)
        self._fetch_misses += 1
        out = []
        for owner in owners:
            stored = self.get(owner, column)
            if stored.kind is not kind:
                raise ProtocolError(
                    f"column {column!r} of owner {owner} is {stored.kind.value}-"
                    f"shared but the protocol expected {kind.value}"
                )
            out.append(stored.values)
        self._fetch_cache[key] = out
        return list(out)

    def fetch_cache_info(self) -> dict[str, int]:
        """Fetch-memo counters: entries, hits, misses."""
        return {
            "entries": len(self._fetch_cache),
            "hits": self._fetch_hits,
            "misses": self._fetch_misses,
        }

    @property
    def nbytes(self) -> int:
        """Total bytes of share data at this server."""
        return sum(col.nbytes for col in self._data.values())

    def __len__(self) -> int:
        return len(self._data)
