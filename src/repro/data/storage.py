"""Server-side secret-share storage, modelling the paper's Table 11.

Each owner outsources, per attribute, either an *additive* share vector
(the χ indicator tables, length ``b``) or a *Shamir* share vector (the
aggregation columns).  A server's :class:`ServerStore` holds its share of
every owner's every column; the paper's layout (five data columns, five
verification columns prefixed ``v``, plus the count column ``aOK``) maps
directly onto column names here (``OK``, ``vOK``, ``PK``, ..., ``aOK``).

The store also exposes the "data fetch" operation measured in Exp 1: the
servers read all owners' share vectors for a column before computing.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.exceptions import ProtocolError


class ShareKind(enum.Enum):
    """How a stored column is shared (determines the legal operations)."""

    ADDITIVE = "additive"
    SHAMIR = "shamir"


class StoredColumn:
    """One owner's share of one column, plus its sharing kind."""

    __slots__ = ("values", "kind")

    def __init__(self, values: np.ndarray, kind: ShareKind):
        self.values = np.asarray(values, dtype=np.int64)
        self.kind = kind

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes)


class ServerStore:
    """All share vectors held by a single server.

    Keys are ``(owner_id, column_name)``.  The protocols fetch *columns
    across owners* (e.g. every owner's ``OK`` share) — :meth:`fetch_column`
    returns them ordered by owner id, which is the layout the vectorised
    server kernels consume.
    """

    def __init__(self):
        self._data: dict[tuple[int, str], StoredColumn] = {}

    def put(self, owner_id: int, column: str, values: np.ndarray,
            kind: ShareKind) -> None:
        """Store (or overwrite) one owner's share of one column."""
        self._data[(owner_id, column)] = StoredColumn(values, kind)

    def get(self, owner_id: int, column: str) -> StoredColumn:
        try:
            return self._data[(owner_id, column)]
        except KeyError:
            raise ProtocolError(
                f"server holds no share of column {column!r} for owner {owner_id}"
            ) from None

    def has(self, owner_id: int, column: str) -> bool:
        return (owner_id, column) in self._data

    def owners_with(self, column: str) -> list[int]:
        """Owner ids that have outsourced the named column, sorted."""
        return sorted(o for (o, c) in self._data if c == column)

    def columns_of(self, owner_id: int) -> list[str]:
        """Column names outsourced by one owner, sorted."""
        return sorted(c for (o, c) in self._data if o == owner_id)

    def fetch_column(self, column: str, kind: ShareKind,
                     owner_ids: list[int] | None = None) -> list[np.ndarray]:
        """All owners' shares of ``column``, ordered by owner id.

        This is the Exp-1 "data fetch" step.  Raises if any owner's column
        was stored with a different :class:`ShareKind` than requested —
        mixing additive and Shamir shares is a protocol bug.
        """
        owners = owner_ids if owner_ids is not None else self.owners_with(column)
        if not owners:
            raise ProtocolError(f"no owner outsourced column {column!r}")
        out = []
        for owner in owners:
            stored = self.get(owner, column)
            if stored.kind is not kind:
                raise ProtocolError(
                    f"column {column!r} of owner {owner} is {stored.kind.value}-"
                    f"shared but the protocol expected {kind.value}"
                )
            out.append(stored.values)
        return out

    @property
    def nbytes(self) -> int:
        """Total bytes of share data at this server."""
        return sum(col.nbytes for col in self._data.values())

    def __len__(self) -> int:
        return len(self._data)
