"""Synthetic TPC-H-style ``LineItem`` data (§8.1).

The paper's evaluation uses five columns of the TPC-H ``LineItem`` table:
Orderkey (OK), Partkey (PK), Linenumber (LN), Suppkey (SK) and Discount
(DT).  PSI/PSU run over OK; the others feed the aggregation protocols.
Since TPC-H dumps are not shipped here, we generate statistically similar
data deterministically: each owner holds a subset of the OK domain (with a
configurable overlap fraction so intersections are non-trivial) and random
positive values in the remaining columns.
"""

from __future__ import annotations

import numpy as np

from repro.data.domain import Domain
from repro.data.relation import Relation
from repro.exceptions import ParameterError

#: Column names mirroring the paper's Table 11 data columns.
LINEITEM_COLUMNS = ("OK", "PK", "LN", "SK", "DT")

#: Value bounds for the non-key columns (kept small so PSI-Sum totals stay
#: far below the Shamir field prime even at 50 owners x 4 attributes).
_VALUE_BOUNDS = {"PK": 200, "LN": 7, "SK": 100, "DT": 10}


def lineitem_domain(size: int) -> Domain:
    """The OK domain ``{1, ..., size}`` used for PSI/PSU."""
    return Domain.integer_range("OK", size)


def guaranteed_common_keys(domain: Domain) -> list[int]:
    """The OK keys present at every generated owner (the known m-way core)."""
    b = domain.size
    count = max(2, min(b, b // 1000 or 2))
    return list(range(1, count + 1))


def generate_lineitem(owner_index: int, domain: Domain, rows: int,
                      seed: int = 7, common_fraction: float = 0.2) -> Relation:
    """Generate one owner's LineItem fragment.

    A small key prefix (:func:`guaranteed_common_keys`) appears at *every*
    owner, so the m-way intersection is non-empty at any fleet size; a
    further ``common_fraction`` of rows is drawn from a shared pool (so
    pairwise overlaps are realistic) and the rest is an owner-private
    sample.  Rows may repeat an OK value (multiple line items per order),
    which exercises the owner-side group-by preparation of Table 11.

    Args:
        owner_index: which owner (seeds the private part of the sample).
        domain: the OK :class:`Domain`.
        rows: number of rows to generate.
        seed: experiment-level seed shared by all owners.
        common_fraction: fraction of rows drawn from the shared key pool.

    Raises:
        ParameterError: if ``rows`` is not positive.
    """
    if rows < 1:
        raise ParameterError("need at least one row")
    if not 0.0 <= common_fraction <= 1.0:
        raise ParameterError("common_fraction must lie in [0, 1]")
    b = domain.size
    guaranteed = np.asarray(guaranteed_common_keys(domain), dtype=np.int64)
    guaranteed = guaranteed[: max(1, min(len(guaranteed), rows))]
    common_pool = max(1, min(b, int(b * 0.1) or 1))
    rng = np.random.default_rng((seed, owner_index))
    remaining = rows - guaranteed.size
    n_common = int(remaining * common_fraction)
    n_private = remaining - n_common
    # Keys 1..common_pool are shared; every owner samples from them.
    common_keys = rng.integers(1, common_pool + 1, size=n_common)
    private_keys = rng.integers(1, b + 1, size=n_private)
    ok = np.concatenate([guaranteed, common_keys, private_keys])
    rng.shuffle(ok)
    columns = {"OK": ok.tolist()}
    for name in LINEITEM_COLUMNS[1:]:
        bound = _VALUE_BOUNDS[name]
        columns[name] = rng.integers(1, bound + 1, size=rows).tolist()
    return Relation(f"lineitem_owner{owner_index}", columns)


def generate_fleet(num_owners: int, domain: Domain, rows_per_owner: int,
                   seed: int = 7, common_fraction: float = 0.2) -> list[Relation]:
    """LineItem fragments for a whole fleet of owners."""
    if num_owners < 2:
        raise ParameterError("Prism needs at least two owners")
    return [
        generate_lineitem(i, domain, rows_per_owner, seed, common_fraction)
        for i in range(num_owners)
    ]
