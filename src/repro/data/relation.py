"""In-memory relational substrate.

Each Prism DB owner holds an ordinary relation (e.g. a hospital's patient
table, or a TPC-H ``LineItem`` fragment).  The protocols only ever consume
a handful of relational primitives — distinct values of a column, group-by
sum / count / max / min — so rather than depending on an external database
we implement a small, well-tested columnar relation here.  This mirrors the
paper's setup where owners run the Table 11 preparation queries
(``select OK, sum(PK) from LineItem group by OK``) locally before sharing.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import QueryError


class Relation:
    """A named, column-oriented relation.

    Columns are stored as Python lists (values may be strings or ints);
    numeric columns can be viewed as numpy arrays via :meth:`column_array`.

    Args:
        name: relation name (for error messages and plans).
        columns: mapping of column name → sequence of values; all columns
            must have equal length.
    """

    def __init__(self, name: str, columns: Mapping[str, Sequence]):
        if not columns:
            raise QueryError(f"relation {name!r} needs at least one column")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise QueryError(
                f"relation {name!r} has ragged columns: lengths {sorted(lengths)}"
            )
        self.name = name
        self._columns: dict[str, list] = {k: list(v) for k, v in columns.items()}
        self._num_rows = lengths.pop()

    # -- shape --------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def _require(self, name: str) -> list:
        try:
            return self._columns[name]
        except KeyError:
            raise QueryError(
                f"relation {self.name!r} has no column {name!r}; "
                f"available: {sorted(self._columns)}"
            ) from None

    # -- access -------------------------------------------------------------

    def column(self, name: str) -> list:
        """Values of a column as a list (copy-free view is not guaranteed)."""
        return self._require(name)

    def column_array(self, name: str) -> np.ndarray:
        """Numeric column as an int64 numpy array."""
        return np.asarray(self._require(name), dtype=np.int64)

    def rows(self) -> Iterable[tuple]:
        """Iterate rows as tuples in column order."""
        cols = list(self._columns.values())
        return zip(*cols) if cols else iter(())

    def distinct(self, name: str) -> list:
        """Distinct values of a column, in first-appearance order."""
        return list(dict.fromkeys(self._require(name)))

    # -- relational primitives used by the protocols ------------------------

    def group_by_sum(self, key: str, value: str) -> dict:
        """``select key, sum(value) group by key`` as a dict."""
        out: dict = {}
        for k, v in zip(self._require(key), self._require(value)):
            out[k] = out.get(k, 0) + v
        return out

    def group_by_count(self, key: str) -> dict:
        """``select key, count(*) group by key`` as a dict."""
        out: dict = {}
        for k in self._require(key):
            out[k] = out.get(k, 0) + 1
        return out

    def group_by_max(self, key: str, value: str) -> dict:
        """``select key, max(value) group by key`` as a dict."""
        out: dict = {}
        for k, v in zip(self._require(key), self._require(value)):
            if k not in out or v > out[k]:
                out[k] = v
        return out

    def group_by_min(self, key: str, value: str) -> dict:
        """``select key, min(value) group by key`` as a dict."""
        out: dict = {}
        for k, v in zip(self._require(key), self._require(value)):
            if k not in out or v < out[k]:
                out[k] = v
        return out

    def select(self, columns: Sequence[str]) -> "Relation":
        """Projection onto the named columns."""
        return Relation(self.name, {c: self._require(c) for c in columns})

    def filter_equals(self, column: str, value) -> "Relation":
        """Rows where ``column == value`` (used by examples, not protocols)."""
        keep = [i for i, v in enumerate(self._require(column)) if v == value]
        return Relation(
            self.name,
            {c: [vals[i] for i in keep] for c, vals in self._columns.items()},
        )

    def __len__(self) -> int:
        return self._num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Relation({self.name!r}, rows={self._num_rows}, "
                f"columns={self.column_names})")
