"""Attribute domains, including product domains for multi-attribute PSI.

A :class:`Domain` fixes the canonical value ↔ cell bijection that every
owner uses to build its χ table (§5.1).  The initiator distributes the
domain once; knowing the domain of ``A_c`` does not reveal which owner has
which value (§4, assumption v).

For PSI over several attributes (§6.6), the χ table ranges over the
cartesian product of the individual domains; :class:`ProductDomain` keeps
the factored representation so cells can be decoded back into value tuples
without materialising the full product.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.crypto.hashing import EnumeratedDomainMapper, HashedDomainMapper
from repro.exceptions import DomainError


class Domain:
    """An explicit attribute domain with a canonical cell ordering.

    Args:
        attribute: attribute name (e.g. ``"disease"`` or ``"OK"``).
        values: domain values in canonical order.
    """

    #: Whether cells decode back to values (enumerated domains do).
    invertible = True

    def __init__(self, attribute: str, values: Sequence):
        self.attribute = attribute
        self._mapper = EnumeratedDomainMapper(values)

    @classmethod
    def integer_range(cls, attribute: str, size: int, start: int = 1) -> "Domain":
        """Domain ``{start, ..., start + size - 1}`` (the paper's OK domain)."""
        if size < 1:
            raise DomainError("domain size must be positive")
        return cls(attribute, range(start, start + size))

    @property
    def size(self) -> int:
        """``b = |Dom(A_c)|`` — the χ-table length."""
        return self._mapper.size

    def cell_of(self, value) -> int:
        return self._mapper.cell_of(value)

    def value_of(self, cell: int):
        return self._mapper.value_of(cell)

    def cells_of(self, values) -> list[int]:
        return self._mapper.cells_of(values)

    def values(self) -> list:
        return self._mapper.values()

    def contains(self, value) -> bool:
        try:
            self._mapper.cell_of(value)
            return True
        except DomainError:
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Domain({self.attribute!r}, size={self.size})"


class HashedDomain:
    """An implicit attribute domain mapped by a seeded hash (§5.1's general
    hash-table construction, for domains too large or open to enumerate).

    Cells are not invertible: the PSI result is decoded owner-side against
    the owner's *own* values (the intersection is always a subset of every
    owner's set).  Distinct values may collide into one cell with
    probability ~``n²/(2·num_cells)`` overall; a collision can surface a
    false-positive member.  Size ``num_cells`` generously (or use the
    bucketized protocol) when that matters.

    Args:
        attribute: attribute name.
        num_cells: χ-table length ``b``.
        seed: common hash seed dealt by the initiator (§4).
    """

    invertible = False

    def __init__(self, attribute: str, num_cells: int, seed: int = 0):
        self.attribute = attribute
        self._mapper = HashedDomainMapper(num_cells, seed)

    @property
    def size(self) -> int:
        return self._mapper.size

    def cell_of(self, value) -> int:
        return self._mapper.cell_of(value)

    def cells_of(self, values) -> list[int]:
        return self._mapper.cells_of(values)

    def value_of(self, cell: int):
        raise DomainError(
            "hashed domains are not invertible; decode against a candidate "
            "value set (owners use their own values)"
        )

    def contains(self, value) -> bool:
        """Every hashable value maps somewhere; membership is not checked."""
        try:
            self._mapper.cell_of(value)
            return True
        except DomainError:
            return False

    def collisions(self, values) -> dict[int, list]:
        """Cells where multiple of the given values collide."""
        return self._mapper.collisions(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashedDomain({self.attribute!r}, size={self.size})"


class ProductDomain:
    """Cartesian product of attribute domains (multi-attribute PSI, §6.6).

    Cell numbering is row-major over the factor order: the tuple
    ``(v_1, ..., v_k)`` maps to ``sum_i cell_i * stride_i``.

    Args:
        factors: the component :class:`Domain` objects, in attribute order.
    """

    invertible = True

    def __init__(self, factors: Sequence[Domain]):
        if not factors:
            raise DomainError("product domain needs at least one factor")
        self.factors = list(factors)
        self.attribute = "*".join(d.attribute for d in self.factors)
        self._strides = []
        stride = 1
        for d in reversed(self.factors):
            self._strides.append(stride)
            stride *= d.size
        self._strides.reverse()
        self._size = stride

    @property
    def size(self) -> int:
        return self._size

    def cell_of(self, value_tuple) -> int:
        """Cell of a value tuple; raises on arity or membership mismatch."""
        if len(value_tuple) != len(self.factors):
            raise DomainError(
                f"expected a {len(self.factors)}-tuple, got {len(value_tuple)}"
            )
        return sum(d.cell_of(v) * s
                   for d, v, s in zip(self.factors, value_tuple, self._strides))

    def value_of(self, cell: int) -> tuple:
        """Decode a cell index back into its value tuple."""
        if not 0 <= cell < self._size:
            raise DomainError(f"cell {cell} out of range [0, {self._size})")
        parts = []
        for d, s in zip(self.factors, self._strides):
            idx, cell = divmod(cell, s)
            parts.append(d.value_of(idx))
        return tuple(parts)

    def cells_of(self, tuples) -> list[int]:
        return [self.cell_of(t) for t in tuples]

    def contains(self, value_tuple) -> bool:
        try:
            self.cell_of(value_tuple)
            return True
        except DomainError:
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProductDomain({self.attribute!r}, size={self.size})"
