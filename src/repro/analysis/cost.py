"""Analytical cost model for Prism queries (the O(m·X) column of Table 13).

Predicts, from the deployment parameters alone, the exact query-time
communication volume and the dominant server-side operation counts for
each operator.  The byte predictions are *exact* for the set-membership
operators (tests assert equality against the transport's measurements);
the operation counts are the asymptotic terms the paper reports.

Word size is 8 bytes (int64 share vectors) throughout.
"""

from __future__ import annotations

import dataclasses

from repro.exceptions import QueryError

WORD = 8  # bytes per share-vector element


@dataclasses.dataclass(frozen=True)
class CostEstimate:
    """Predicted per-query costs.

    Attributes:
        server_to_owner_bytes: query-time result traffic.
        owner_to_server_bytes: query-time request traffic (z shares etc.).
        server_ops: dominant per-server operation count (adds + lookups).
        rounds: owner↔server communication rounds.
    """

    server_to_owner_bytes: int
    owner_to_server_bytes: int
    server_ops: int
    rounds: int

    @property
    def total_bytes(self) -> int:
        return self.server_to_owner_bytes + self.owner_to_server_bytes


class CostModel:
    """Cost formulas for a deployment of ``m`` owners over ``b`` cells.

    Args:
        num_owners: ``m``.
        domain_size: ``b`` (χ-table length).
    """

    def __init__(self, num_owners: int, domain_size: int):
        if num_owners < 2 or domain_size < 1:
            raise QueryError("need m >= 2 owners and a non-empty domain")
        self.m = num_owners
        self.b = domain_size

    # -- query-time costs ---------------------------------------------------

    def psi(self, verify: bool = False) -> CostEstimate:
        """PSI (§5.1): 2 servers broadcast b words to m owners; the
        verification stream doubles the result traffic."""
        streams = 2 if verify else 1
        return CostEstimate(
            server_to_owner_bytes=streams * 2 * self.m * self.b * WORD,
            owner_to_server_bytes=0,
            server_ops=streams * self.m * self.b,
            rounds=1,
        )

    def psu(self, verify: bool = False) -> CostEstimate:
        """PSU (§7): identical traffic shape to PSI."""
        return self.psi(verify)

    def count(self, verify: bool = False) -> CostEstimate:
        """PSI-Count (§6.5): PSI plus a server-side permutation."""
        base = self.psi(verify)
        return dataclasses.replace(base, server_ops=base.server_ops + self.b)

    def aggregate(self, num_attributes: int = 1, average: bool = False,
                  verify: bool = False) -> CostEstimate:
        """PSI/PSU sum or average (§6.1–6.2), over k attributes.

        Round 1 is a PSI; round 2 ships 3 z-share vectors up and one
        result vector per (server, attribute[, count column][, verified
        copy]) down.
        """
        if num_attributes < 1:
            raise QueryError("need at least one aggregation attribute")
        psi = self.psi()
        columns = num_attributes * (2 if verify else 1) + (1 if average else 0)
        z_vectors = 2 if verify else 1
        return CostEstimate(
            server_to_owner_bytes=(psi.server_to_owner_bytes
                                   + 3 * columns * self.m * self.b * WORD),
            owner_to_server_bytes=3 * z_vectors * self.b * WORD,
            server_ops=psi.server_ops + 3 * columns * self.m * self.b,
            rounds=2,
        )

    def extrema(self, num_common: int = 1, reveal_holders: bool = True
                ) -> CostEstimate:
        """PSI max/min (§6.3): PSI plus per-common-value announcer rounds.

        Blinded values are big ints of data-dependent width, so the
        extrema bytes are an *estimate* (each counted as one word).
        """
        psi = self.psi()
        per_value_up = 2 * self.m * WORD          # owner shares to servers
        per_value_down = 2 * self.m * WORD * 2    # value+index via servers
        if reveal_holders:
            per_value_up += 2 * self.m * WORD     # alpha shares
            per_value_down += 2 * self.m * self.m * WORD  # fpos vectors
        return CostEstimate(
            server_to_owner_bytes=(psi.server_to_owner_bytes
                                   + num_common * per_value_down),
            owner_to_server_bytes=num_common * per_value_up,
            server_ops=psi.server_ops + num_common * self.m,
            rounds=1 + (2 if reveal_holders else 1) * num_common,
        )

    def outsourcing(self, num_agg_attributes: int = 0,
                    with_verification: bool = False) -> int:
        """One-time Phase-1 upload bytes across all owners.

        χ to 2 servers; with verification also χ̄, the two count-stream
        tables, and permuted copies of every aggregation column; every
        aggregation column and the count column go to 3 servers.
        """
        additive_tables = 1 + (3 if with_verification else 0)
        per_owner = additive_tables * 2 * self.b * WORD
        if num_agg_attributes:
            shamir_columns = num_agg_attributes * (2 if with_verification
                                                   else 1) + 1
            per_owner += shamir_columns * 3 * self.b * WORD
        return self.m * per_owner

    def complexity_class(self) -> str:
        """The Table 13 asymptotic: O(m · X) with X the domain size."""
        return f"O(m*X) = O({self.m} * {self.b})"
