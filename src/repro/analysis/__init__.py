"""Security-claim validation and cost analysis.

* :mod:`repro.analysis.uniformity` — statistical checks that shares are
  uniform and independent of the secrets (§3.4's secrecy).
* :mod:`repro.analysis.access` — access-pattern obliviousness traces.
* :mod:`repro.analysis.cost` — the analytical communication/operation
  cost model (validated to the byte by tests).
"""

from repro.analysis.access import (
    AccessEvent,
    RecordingServer,
    access_trace,
    recording_factories,
    reset_traces,
    traces_identical,
)
from repro.analysis.cost import CostEstimate, CostModel
from repro.analysis.uniformity import (
    chi_squared_uniformity,
    generator_ambiguity,
    indicator_share_leakage,
    shares_independent_of_secret,
)

__all__ = [
    "AccessEvent",
    "CostEstimate",
    "CostModel",
    "RecordingServer",
    "access_trace",
    "chi_squared_uniformity",
    "generator_ambiguity",
    "indicator_share_leakage",
    "recording_factories",
    "reset_traces",
    "shares_independent_of_secret",
    "traces_identical",
]
