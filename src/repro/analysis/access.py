"""Access-pattern obliviousness checks (§3.4).

Prism's servers must behave identically regardless of the data: same
columns fetched, same lengths swept, same output sizes — so a server
(or a network observer) learns nothing from *how* a query executes.
:class:`RecordingServer` instruments the fetch layer; :func:`access_trace`
and :func:`traces_identical` turn that into a testable property: run the
same query over *different* datasets and require byte-identical traces.
"""

from __future__ import annotations

import dataclasses

from repro.entities.server import PrismServer


@dataclasses.dataclass(frozen=True)
class AccessEvent:
    """One observable server-side data access."""

    kind: str        # "fetch-additive" | "fetch-shamir"
    column: str
    num_owners: int
    vector_length: int


class RecordingServer(PrismServer):
    """A server that logs every share fetch it performs."""

    def __init__(self, index, params):
        super().__init__(index, params)
        self.trace: list[AccessEvent] = []

    def fetch_additive(self, column, owner_ids=None):
        shares = super().fetch_additive(column, owner_ids)
        self.trace.append(AccessEvent(
            "fetch-additive", column, len(shares), int(shares[0].shape[0])))
        return shares

    def fetch_shamir(self, column, owner_ids=None):
        shares = super().fetch_shamir(column, owner_ids)
        self.trace.append(AccessEvent(
            "fetch-shamir", column, len(shares), int(shares[0].shape[0])))
        return shares

    def reset_trace(self) -> None:
        self.trace = []


def recording_factories(indices=(0, 1, 2)) -> dict:
    """``server_factories`` mapping that installs recording servers."""
    return {i: RecordingServer for i in indices}


def access_trace(system) -> list[list[AccessEvent]]:
    """The per-server access traces of a deployment (recording servers)."""
    traces = []
    for server in system.servers:
        if isinstance(server, RecordingServer):
            traces.append(list(server.trace))
    return traces


def reset_traces(system) -> None:
    """Clear all recording servers' traces (between queries)."""
    for server in system.servers:
        if isinstance(server, RecordingServer):
            server.reset_trace()


def traces_identical(system_a, system_b) -> bool:
    """True iff both deployments produced byte-identical access traces.

    The obliviousness property: executing the same query shape over
    different *data* must be indistinguishable at the servers.
    """
    return access_trace(system_a) == access_trace(system_b)
