"""Statistical validation of the secrecy claims (§3.4).

Secret-sharing security rests on individual shares being uniform and
independent of the secret.  These helpers let tests (and paranoid users)
check that *empirically* on this implementation:

* :func:`chi_squared_uniformity` — are observed share values uniform over
  the group?
* :func:`shares_independent_of_secret` — do the share distributions for
  two different secrets coincide (two-sample Kolmogorov–Smirnov)?
* :func:`indicator_share_leakage` — the Prism-specific question: can a
  single server distinguish χ cells holding 1 from cells holding 0 by
  looking at its share vector?
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.exceptions import ParameterError


def chi_squared_uniformity(values: np.ndarray, modulus: int) -> float:
    """P-value of a chi-squared test of uniformity over ``Z_modulus``.

    A healthy sharing scheme yields p-values that are themselves uniform;
    tests assert ``p > alpha`` for a small ``alpha`` (a *low* p-value
    means the distribution visibly deviates from uniform).

    Args:
        values: observed share values.
        modulus: group order.

    Raises:
        ParameterError: if there are too few observations per bucket for
            the chi-squared approximation (< 5 expected per value).
    """
    values = np.asarray(values)
    if values.size < 5 * modulus:
        raise ParameterError(
            f"need at least {5 * modulus} observations for modulus "
            f"{modulus}, got {values.size}"
        )
    counts = np.bincount(np.mod(values, modulus).astype(np.int64),
                         minlength=modulus)
    return float(stats.chisquare(counts).pvalue)


def shares_independent_of_secret(shares_for_a: np.ndarray,
                                 shares_for_b: np.ndarray) -> float:
    """KS-test p-value that two share samples come from one distribution.

    Feed it share vectors generated for two *different* secrets: a high
    p-value means a share reveals nothing about which secret it hides.
    """
    return float(stats.ks_2samp(np.asarray(shares_for_a),
                                np.asarray(shares_for_b)).pvalue)


def indicator_share_leakage(owner, attributes) -> float:
    """Can one server's χ share vector distinguish 1-cells from 0-cells?

    Splits the owner's first additive share by the true indicator value
    and KS-tests the two samples.  Returns the p-value; values far below
    0.01 would indicate the share encodes the indicator — the share
    randomness is broken.

    Args:
        owner: a :class:`~repro.entities.owner.DBOwner` with a relation.
        attributes: the PSI attribute(s) to build χ from.
    """
    chi = owner.build_indicator(attributes)
    share = owner.additive_shares_of(chi)[0]
    ones = share[chi == 1]
    zeros = share[chi == 0]
    if ones.size == 0 or zeros.size == 0:
        raise ParameterError(
            "need both present and absent cells to compare distributions"
        )
    return float(stats.ks_2samp(ones, zeros).pvalue)


def generator_ambiguity(fop_value: int, eta: int, delta: int) -> int:
    """How many (generator, count) hypotheses explain one PSI output cell.

    The §5.1 lemma: an owner seeing a non-1 value ``beta = g^(k - m)``
    cannot learn ``k`` (how many owners hold the value) without knowing
    ``g``.  This counts, over every candidate generator of the
    order-``delta`` subgroup, the exponent it would imply — each distinct
    candidate yields a different ``k``, so the hypothesis count equals
    the number of generators the owner cannot tell apart.

    Returns the number of distinct exponents consistent with
    ``fop_value``; security expects ``delta - 1`` (all non-zero shifts).
    """
    from repro.crypto.groups import find_subgroup_generator, subgroup_elements

    g = find_subgroup_generator(eta, delta)
    elements = subgroup_elements(g, delta, eta)
    if fop_value % eta not in elements:
        raise ParameterError(f"{fop_value} is not in the order-{delta} "
                             f"subgroup mod {eta}")
    consistent_exponents = set()
    for candidate in elements:
        # candidate generates the subgroup iff its order is delta
        # (every non-identity element of a prime-order group does).
        if candidate == 1:
            continue
        # Find the exponent of fop_value base `candidate`.
        x = 1
        for exponent in range(delta):
            if x == fop_value % eta:
                consistent_exponents.add(exponent)
                break
            x = (x * candidate) % eta
    return len(consistent_exponents)
