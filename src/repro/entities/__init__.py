"""Prism entities: initiator, DB owners, servers, announcer, adversaries."""

from repro.entities.adversary import (
    DropAggregateServer,
    FalsifyVerificationServer,
    InjectFakeServer,
    ReplaySwapServer,
    SkipCellsServer,
)
from repro.entities.announcer import Announcer
from repro.entities.initiator import Initiator
from repro.entities.owner import DBOwner
from repro.entities.remote import RemoteServer
from repro.entities.server import PrismServer

__all__ = [
    "Announcer",
    "DBOwner",
    "DropAggregateServer",
    "FalsifyVerificationServer",
    "Initiator",
    "InjectFakeServer",
    "PrismServer",
    "RemoteServer",
    "ReplaySwapServer",
    "SkipCellsServer",
]
