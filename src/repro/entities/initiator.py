"""The initiator (§3.2 entity 3, §4 "parameters known to the initiator").

A trusted parameter-dealing entity — analogous to a PKI certificate
authority.  It never touches data or results.  Its jobs:

* choose the moduli: a prime ``delta > m``, a prime ``eta`` with
  ``delta | eta - 1``, the server-side modulus ``eta' = alpha * eta``,
  the Shamir field prime, and the extrema modulus (a prime exceeding any
  blinded value ``F(M) + r``);
* find the generator ``g`` of the order-``delta`` subgroup;
* pick the permutation functions, including the Eq. (1) quadruple;
* pick the order-preserving polynomial ``F`` of degree ``m + 1``;
* deal additive shares of ``m`` to the servers;
* hand every entity its knowledge view (:mod:`repro.core.params`).
"""

from __future__ import annotations

import numpy as np

from repro.core.params import (
    AnnouncerParams,
    OwnerParams,
    ServerGroupView,
    ServerParams,
)
from repro.crypto.groups import CyclicGroup
from repro.crypto.permutation import Permutation, equation1_quadruple
from repro.crypto.polynomial import OrderPreservingPolynomial
from repro.crypto.primes import find_eta_for_delta, is_prime, next_prime
from repro.crypto.prg import derive_seed
from repro.crypto.shamir import DEFAULT_FIELD_PRIME
from repro.data.domain import Domain, ProductDomain
from repro.exceptions import ParameterError


class Initiator:
    """Generates and deals all Prism system parameters.

    Args:
        num_owners: ``m`` (> 2 per the paper; >= 2 accepted for the
            two-owner comparison experiment of Table 13).
        domain: the PSI/PSU attribute domain (length ``b`` of the χ table).
        seed: master seed; every derived secret (permutations, PRG seed,
            share randomness) comes from it, so whole protocol runs are
            reproducible.
        delta: additive-group prime; default: smallest prime > max(m, 100).
        alpha: multiplier hiding ``eta`` inside ``eta' = alpha * eta``.
        field_prime: Shamir field prime for aggregation columns.
        value_bound: inclusive upper bound for aggregation-attribute values;
            sizes the extrema modulus so ``F(M) + r`` never wraps.
    """

    def __init__(self, num_owners: int, domain: Domain | ProductDomain,
                 seed: int = 0, delta: int | None = None, alpha: int = 13,
                 field_prime: int = DEFAULT_FIELD_PRIME,
                 value_bound: int = 10_000):
        if num_owners < 2:
            raise ParameterError("Prism needs at least two DB owners")
        self.num_owners = num_owners
        self.domain = domain
        self.seed = seed
        self.delta = delta if delta is not None else next_prime(max(num_owners, 100))
        if not is_prime(self.delta):
            raise ParameterError(f"delta={self.delta} must be prime")
        if self.delta <= num_owners:
            raise ParameterError(
                f"delta={self.delta} must exceed the owner count {num_owners} "
                f"(the χ-cell sums live in [0, m])"
            )
        eta = find_eta_for_delta(self.delta, minimum=self.delta)
        self.group = CyclicGroup(self.delta, eta, alpha=alpha)
        self.field_prime = field_prime
        self.value_bound = value_bound

        self.polynomial = OrderPreservingPolynomial.for_owner_count(
            num_owners, seed=derive_seed(seed, "F")
        )
        self.extrema_modulus = next_prime(
            self.polynomial.max_blinded_value(value_bound)
        )

        b = domain.size
        self.pf = Permutation.random(b, derive_seed(seed, "PF"), "PF")
        # PF over owner slots for the §6.3 extrema rounds — the paper's PF
        # is "known to DB owners and servers" (§4 assumption viii).
        self.pf_owners = Permutation.random(
            num_owners, derive_seed(seed, "PF-owners"), "PF-owners"
        )
        self._quadruple = equation1_quadruple(b, derive_seed(seed, "EQ1"))
        self.prg_seed = derive_seed(seed, "server-prg")
        self.hash_seed = derive_seed(seed, "domain-hash")

        # Additive shares of m for the servers (any trusted party may deal
        # these, §4); drawn deterministically from the master seed.
        rng = np.random.default_rng(derive_seed(seed, "m-shares"))
        first = int(rng.integers(0, self.delta))
        self._m_shares = [first, (num_owners - first) % self.delta]

    # -- dealing ------------------------------------------------------------

    def owner_params(self) -> OwnerParams:
        """The knowledge view dealt to every DB owner."""
        return OwnerParams(
            num_owners=self.num_owners,
            delta=self.delta,
            eta=self.group.eta,
            field_prime=self.field_prime,
            domain=self.domain,
            pf=self.pf,
            pf_owners=self.pf_owners,
            pf_db1=self._quadruple["pf_db1"],
            pf_db2=self._quadruple["pf_db2"],
            polynomial=self.polynomial,
            extrema_modulus=self.extrema_modulus,
            hash_seed=self.hash_seed,
        )

    def server_params(self, server_index: int) -> ServerParams:
        """The knowledge view dealt to server ``server_index`` (0-based).

        Only the two additive-share servers (indices 0 and 1) receive a
        share of ``m``; the third (Shamir-only) server gets share 0, which
        it never uses.
        """
        m_share = self._m_shares[server_index] if server_index < 2 else 0
        return ServerParams(
            num_owners=self.num_owners,
            delta=self.delta,
            group=ServerGroupView(
                delta=self.delta,
                eta_prime=self.group.eta_prime,
                g=self.group.g,
                power_table=self.group.power_table,
            ),
            field_prime=self.field_prime,
            pf=self.pf,
            pf_owners=self.pf_owners,
            pf_s1=self._quadruple["pf_s1"],
            pf_s2=self._quadruple["pf_s2"],
            prg_seed=self.prg_seed,
            extrema_modulus=self.extrema_modulus,
            m_share=m_share,
        )

    def announcer_params(self, include_eta: bool = False) -> AnnouncerParams:
        """The knowledge view dealt to the announcer.

        ``include_eta`` opts into announcer-driven bucket traversal
        (§6.6's note); see :class:`AnnouncerParams` for the leakage
        trade-off.
        """
        return AnnouncerParams(
            extrema_modulus=self.extrema_modulus,
            eta=self.group.eta if include_eta else None,
        )
