"""The initiator (§3.2 entity 3, §4 "parameters known to the initiator").

A trusted parameter-dealing entity — analogous to a PKI certificate
authority.  It never touches data or results.  Its jobs:

* choose the moduli: a prime ``delta > m``, a prime ``eta`` with
  ``delta | eta - 1``, the server-side modulus ``eta' = alpha * eta``,
  the Shamir field prime, and the extrema modulus (a prime exceeding any
  blinded value ``F(M) + r``);
* find the generator ``g`` of the order-``delta`` subgroup;
* pick the permutation functions, including the Eq. (1) quadruple;
* pick the order-preserving polynomial ``F`` of degree ``m + 1``;
* deal additive shares of ``m`` to the servers;
* hand every entity its knowledge view (:mod:`repro.core.params`).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.params import (
    AnnouncerParams,
    OwnerParams,
    ServerGroupView,
    ServerParams,
)
from repro.crypto.groups import CyclicGroup
from repro.crypto.permutation import Permutation, equation1_quadruple
from repro.crypto.polynomial import OrderPreservingPolynomial
from repro.crypto.primes import find_eta_for_delta, is_prime, next_prime
from repro.crypto.prg import derive_seed
from repro.crypto.shamir import DEFAULT_FIELD_PRIME
from repro.data.domain import Domain, ProductDomain
from repro.exceptions import ParameterError


class IndicatorShareCache:
    """Memoised querier indicator-share vectors (Phase-2 skip cache).

    Aggregation queries spend an owner-side round Shamir-sharing the 0/1
    intersection-indicator vector ``z`` (§6.1 Step 3).  Repeated or
    overlapping queries — several aggregation attributes over the same
    set attribute, a dashboard refreshing the same query — regenerate
    byte-identical-purpose shares every time.  This cache, held by the
    initiator as part of the deployment's query session state, memoises
    the dealt share triple keyed by

    ``(stream, querier, column, owner-subset, digest(membership))``

    so a repeated query reuses the already-dealt shares instead of
    re-running share generation.  Keying on a digest of the membership
    vector makes staleness impossible within one outsourced snapshot
    (different results can never collide), and the system invalidates the
    whole cache whenever owners re-outsource (the snapshot changes).

    Reusing indicator shares across queries is safe in the semi-honest
    model reproduced here: the shares are information-theoretically
    hiding, and reuse reveals only that two queries used the same
    indicator — which the access pattern (same column, same round shape)
    reveals anyway.

    Args:
        max_entries: size cap; the oldest entry is evicted when a put
            would exceed it.  Each entry pins three full-domain int64
            vectors (24·b bytes), so an unbounded cache would grow with
            every distinct (querier, owner subset, membership) shape a
            long-lived deployment serves.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ParameterError("indicator cache needs at least one slot")
        self.max_entries = max_entries
        self._entries: dict[tuple, list[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    @staticmethod
    def key(stream: str, querier: int, column: str, owner_ids,
            member: np.ndarray) -> tuple:
        """Cache key for one indicator stream of one query."""
        owner_key = tuple(owner_ids) if owner_ids is not None else None
        digest = hashlib.blake2b(np.ascontiguousarray(member).tobytes(),
                                 digest_size=16).digest()
        return (stream, querier, column, owner_key, digest)

    def get(self, key: tuple) -> list[np.ndarray] | None:
        """The cached share triple, counting the hit/miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: tuple, shares: list[np.ndarray]) -> None:
        """Store a dealt share triple (arrays are frozen against mutation).

        Evicts the oldest entry when the cap is reached (dicts iterate in
        insertion order, so the first key is the oldest).
        """
        for share in shares:
            share.setflags(write=False)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1
        self._entries[key] = list(shares)

    def invalidate(self) -> None:
        """Drop every entry (owners re-outsourced; the snapshot changed)."""
        self._entries.clear()
        self.invalidations += 1

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "invalidations": self.invalidations,
                "evictions": self.evictions}


class Initiator:
    """Generates and deals all Prism system parameters.

    Args:
        num_owners: ``m`` (> 2 per the paper; >= 2 accepted for the
            two-owner comparison experiment of Table 13).
        domain: the PSI/PSU attribute domain (length ``b`` of the χ table).
        seed: master seed; every derived secret (permutations, PRG seed,
            share randomness) comes from it, so whole protocol runs are
            reproducible.
        delta: additive-group prime; default: smallest prime > max(m, 100).
        alpha: multiplier hiding ``eta`` inside ``eta' = alpha * eta``.
        field_prime: Shamir field prime for aggregation columns.
        value_bound: inclusive upper bound for aggregation-attribute values;
            sizes the extrema modulus so ``F(M) + r`` never wraps.
    """

    def __init__(self, num_owners: int, domain: Domain | ProductDomain,
                 seed: int = 0, delta: int | None = None, alpha: int = 13,
                 field_prime: int = DEFAULT_FIELD_PRIME,
                 value_bound: int = 10_000):
        if num_owners < 2:
            raise ParameterError("Prism needs at least two DB owners")
        self.num_owners = num_owners
        self.domain = domain
        self.seed = seed
        self.delta = delta if delta is not None else next_prime(max(num_owners, 100))
        if not is_prime(self.delta):
            raise ParameterError(f"delta={self.delta} must be prime")
        if self.delta <= num_owners:
            raise ParameterError(
                f"delta={self.delta} must exceed the owner count {num_owners} "
                f"(the χ-cell sums live in [0, m])"
            )
        eta = find_eta_for_delta(self.delta, minimum=self.delta)
        self.group = CyclicGroup(self.delta, eta, alpha=alpha)
        self.field_prime = field_prime
        self.value_bound = value_bound

        self.polynomial = OrderPreservingPolynomial.for_owner_count(
            num_owners, seed=derive_seed(seed, "F")
        )
        self.extrema_modulus = next_prime(
            self.polynomial.max_blinded_value(value_bound)
        )

        b = domain.size
        self.pf = Permutation.random(b, derive_seed(seed, "PF"), "PF")
        # PF over owner slots for the §6.3 extrema rounds — the paper's PF
        # is "known to DB owners and servers" (§4 assumption viii).
        self.pf_owners = Permutation.random(
            num_owners, derive_seed(seed, "PF-owners"), "PF-owners"
        )
        self._quadruple = equation1_quadruple(b, derive_seed(seed, "EQ1"))
        self.prg_seed = derive_seed(seed, "server-prg")
        self.hash_seed = derive_seed(seed, "domain-hash")

        # Additive shares of m for the servers (any trusted party may deal
        # these, §4); drawn deterministically from the master seed.
        rng = np.random.default_rng(derive_seed(seed, "m-shares"))
        first = int(rng.integers(0, self.delta))
        self._m_shares = [first, (num_owners - first) % self.delta]

        # Query-session state: memoised indicator shares for Phase-2 reuse
        # (batched and repeated aggregation queries).
        self.indicator_cache = IndicatorShareCache()

    # -- dealing ------------------------------------------------------------

    def owner_params(self) -> OwnerParams:
        """The knowledge view dealt to every DB owner."""
        return OwnerParams(
            num_owners=self.num_owners,
            delta=self.delta,
            eta=self.group.eta,
            field_prime=self.field_prime,
            domain=self.domain,
            pf=self.pf,
            pf_owners=self.pf_owners,
            pf_db1=self._quadruple["pf_db1"],
            pf_db2=self._quadruple["pf_db2"],
            polynomial=self.polynomial,
            extrema_modulus=self.extrema_modulus,
            hash_seed=self.hash_seed,
        )

    def server_params(self, server_index: int) -> ServerParams:
        """The knowledge view dealt to server ``server_index`` (0-based).

        Only the two additive-share servers (indices 0 and 1) receive a
        share of ``m``; the third (Shamir-only) server gets share 0, which
        it never uses.
        """
        m_share = self._m_shares[server_index] if server_index < 2 else 0
        return ServerParams(
            num_owners=self.num_owners,
            delta=self.delta,
            group=ServerGroupView(
                delta=self.delta,
                eta_prime=self.group.eta_prime,
                g=self.group.g,
                power_table=self.group.power_table,
            ),
            field_prime=self.field_prime,
            pf=self.pf,
            pf_owners=self.pf_owners,
            pf_s1=self._quadruple["pf_s1"],
            pf_s2=self._quadruple["pf_s2"],
            prg_seed=self.prg_seed,
            extrema_modulus=self.extrema_modulus,
            m_share=m_share,
        )

    def announcer_params(self, include_eta: bool = False) -> AnnouncerParams:
        """The knowledge view dealt to the announcer.

        ``include_eta`` opts into announcer-driven bucket traversal
        (§6.6's note); see :class:`AnnouncerParams` for the leakage
        trade-off.
        """
        return AnnouncerParams(
            extrema_modulus=self.extrema_modulus,
            eta=self.group.eta if include_eta else None,
        )
