"""The Prism server (§3.2 entity 2).

A server stores secret shares and runs the per-query kernels.  It never
sees cleartext, never addresses another server, and executes identical
instruction sequences regardless of the data (access-pattern hiding): all
kernels are branch-free sweeps over the full χ length ``b``.

Kernels implemented here:

* :meth:`psi_round` — Eq. 3: ``g^((Σ_j A(x_i)_j ⊖ A(m)) mod δ) mod η'``.
* :meth:`verification_round` — Eq. 7 over the complement table.
* :meth:`psu_round` — Eq. 18: masked additive sums with common PRG.
* :meth:`count_round` — PSI output permuted with ``PF_s1`` (§6.5).
* :meth:`aggregate_round` — Eq. 11: Σ_j Shamir(x2)·Shamir(z) per cell.
* :meth:`extrema_collect` / :meth:`fpos_round` — the §6.3 max machinery.

The heavy kernels accept a ``num_threads`` argument and chunk the χ table
across a *persistent* per-server thread pool (numpy releases the GIL
inside vector ops), which is what Exp 1 (Fig. 3) sweeps.  The batched
2-D kernels additionally accept a
:class:`~repro.core.sharding.ShardPlan`: when the plan names more than
one shard and the server is an unmodified base-class instance, the sweep
is dispatched shard-parallel to the deployment's forked worker pool
(:class:`~repro.core.sharding.ShardRuntime`), falling back to the thread
pool — with ``num_shards`` chunks — when worker processes are
unavailable, and to the per-row 1-D kernels when a subclass overrides
them (so malicious / instrumented servers keep misbehaving per shard).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import kernels
from repro.core.params import ServerParams
from repro.crypto.prg import SeededPRG
from repro.data.storage import ServerStore, ShareKind
from repro.exceptions import ProtocolError
from repro.network.message import Endpoint, Role


def _chunk_bounds(n: int, num_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most ``num_chunks`` contiguous slices."""
    num_chunks = max(1, min(num_chunks, n)) if n else 1
    step = (n + num_chunks - 1) // num_chunks if n else 1
    return [(lo, min(lo + step, n)) for lo in range(0, n, step)] or [(0, 0)]


class PrismServer:
    """An honest Prism server.

    Args:
        index: server id (0 and 1 hold additive shares; 2 joins for Shamir).
        params: the knowledge view dealt by the initiator.
    """

    def __init__(self, index: int, params: ServerParams):
        self.index = index
        self.params = params
        self.store = ServerStore()
        self.endpoint = Endpoint(Role.SERVER, index)
        #: Default :class:`~repro.core.sharding.ShardPlan` for the batched
        #: kernels (set by ``attach_sharding``; ``None`` = thread sweeps).
        self.shard_plan = None
        self._pool: ThreadPoolExecutor | None = None
        self._pool_workers = 0
        self._pool_cond = threading.Condition()
        self._retired_pools: list[ThreadPoolExecutor] = []
        self._active_sweeps = 0

    # -- execution machinery --------------------------------------------------

    def _thread_pool(self, num_workers: int) -> ThreadPoolExecutor:
        """The persistent chunk pool, grown (never shrunk) on demand.

        One pool lives for the server's lifetime instead of being rebuilt
        inside every chunked kernel call — pool construction/teardown was
        pure per-call overhead on the serving path.  Growth *retires* the
        old pool rather than shutting it down: a concurrent kernel call
        may still be submitting to it, and retired pools (bounded by the
        handful of growth events) are reaped in :meth:`close`.

        Called under ``_pool_cond``.
        """
        if self._pool is None or self._pool_workers < num_workers:
            if self._pool is not None:
                self._retired_pools.append(self._pool)
            self._pool = ThreadPoolExecutor(
                max_workers=num_workers,
                thread_name_prefix=f"prism-server{self.index}")
            self._pool_workers = num_workers
        return self._pool

    def _run_chunked(self, kernel, n: int, num_threads: int) -> None:
        """Run ``kernel(lo, hi)`` over chunks, threaded when requested."""
        bounds = _chunk_bounds(n, num_threads)
        if num_threads <= 1 or len(bounds) == 1:
            for lo, hi in bounds:
                kernel(lo, hi)
            return
        with self._pool_cond:
            pool = self._thread_pool(min(num_threads, len(bounds)))
            self._active_sweeps += 1
        try:
            list(pool.map(lambda span: kernel(*span), bounds))
        finally:
            with self._pool_cond:
                self._active_sweeps -= 1
                self._pool_cond.notify_all()

    def close(self) -> None:
        """Quiesce and release the persistent thread pools (idempotent).

        Waits for in-flight chunked sweeps to finish rather than pulling
        their pool out from under them; the server stays usable
        afterwards (a later kernel call builds a fresh pool).
        """
        with self._pool_cond:
            while self._active_sweeps:
                self._pool_cond.wait()
            pools = list(self._retired_pools)
            if self._pool is not None:
                pools.append(self._pool)
            self._pool = None
            self._pool_workers = 0
            self._retired_pools = []
        for pool in pools:
            pool.shutdown(wait=True)

    def _active_shard_plan(self, shard_plan):
        """The effective plan for a batched call (``None`` = unsharded)."""
        plan = shard_plan if shard_plan is not None else self.shard_plan
        if plan is None or plan.num_shards <= 1:
            return None
        return plan

    def _process_plan(self, plan):
        """``plan`` if its worker pool may execute this server's sweeps.

        Process dispatch bypasses Python-level methods entirely, so it is
        reserved for unmodified base-class behaviour: any override of the
        fetch layer (instrumented servers tracing access patterns) keeps
        the sweep in-process where the override still fires.  Kernel
        overrides are checked by each caller before reaching this point.
        """
        if plan is None or plan.runtime is None or not plan.runtime.available:
            return None
        if self._kernel_overridden("fetch_additive", "fetch_shamir"):
            return None
        if type(self.store) is not ServerStore:
            return None
        return plan

    def _sweep_chunks(self, num_threads: int, plan) -> int:
        """Thread-fallback chunk count: honour the shard plan via threads."""
        return max(num_threads, plan.num_shards if plan is not None else 1)

    def _owners_by_column(self, columns, owner_ids) -> list[list[int]]:
        """Resolved per-column owner lists, mirroring ``fetch_column``."""
        if owner_ids is not None:
            owners = list(owner_ids)
            return [owners for _ in columns]
        return [self.store.owners_with(column) for column in columns]

    # -- storage ------------------------------------------------------------

    def receive_shares(self, owner_id: int, column: str, values: np.ndarray,
                       kind: ShareKind) -> None:
        """Accept an outsourced share vector from an owner (Phase 1)."""
        self.store.put(owner_id, column, values, kind)

    def owners_with(self, column: str) -> list[int]:
        """Owner ids that have outsourced ``column``.

        Part of the deployment-facing surface (mirrored by
        :class:`~repro.entities.remote.RemoteServer`), so orchestration
        code never reaches into :attr:`store` directly — a remote
        server's store lives in another process.
        """
        return self.store.owners_with(column)

    def fetch_additive(self, column: str,
                       owner_ids: list[int] | None = None) -> list[np.ndarray]:
        """Data-fetch step: all owners' additive shares of a column."""
        return self.store.fetch_column(column, ShareKind.ADDITIVE, owner_ids)

    def fetch_shamir(self, column: str,
                     owner_ids: list[int] | None = None) -> list[np.ndarray]:
        """Data-fetch step: all owners' Shamir shares of a column."""
        return self.store.fetch_column(column, ShareKind.SHAMIR, owner_ids)

    # -- additive-share kernels ----------------------------------------------

    def _sum_shares(self, shares: list[np.ndarray], num_threads: int) -> np.ndarray:
        """Σ_j shares_j mod δ, chunk-threaded over the χ length."""
        delta = self.params.delta
        n = shares[0].shape[0]
        acc = np.zeros(n, dtype=np.int64)

        def kernel(lo: int, hi: int) -> None:
            local = acc[lo:hi]
            for s in shares:
                local += s[lo:hi]
            np.mod(local, delta, out=local)

        # Sum of m shares each < delta stays far below int64 overflow for
        # every supported (m, delta), so one final mod per chunk suffices.
        self._run_chunked(kernel, n, num_threads)
        return acc

    def psi_round(self, column: str, num_threads: int = 1,
                  owner_ids: list[int] | None = None,
                  shares: list[np.ndarray] | None = None) -> np.ndarray:
        """Eq. 3: the oblivious PSI kernel over all owners' χ shares.

        ``shares`` may be pre-fetched (via :meth:`fetch_additive`) so the
        caller can time the data-fetch step separately, as Exp 1 does.
        """
        if shares is None:
            shares = self.fetch_additive(column, owner_ids)
        num_owners = len(shares)
        exponents = self._sum_shares(shares, num_threads)
        # ⊖ A(m): subtract this server's additive share of the owner count.
        # When the query spans a subset of owners, m is that subset's size;
        # shares of it are deal with the same split ratio.
        m_share = self.params.m_share
        if owner_ids is not None and num_owners != self.params.num_owners:
            m_share = self._subset_m_share(num_owners)
        exponents = np.mod(exponents - m_share, self.params.delta)
        return self._pow_chunked(exponents, num_threads)

    def _subset_m_share(self, subset_size: int) -> int:
        """Additive share of a subset owner count, derived like A(m).

        Both servers derive their share from the common PRG seed so the
        shares still sum to ``subset_size`` without any coordination.
        """
        prg = SeededPRG(self.params.prg_seed, f"m-share-{subset_size}")
        first = prg.integer(0, self.params.delta)
        if self.index == 0:
            return first
        return (subset_size - first) % self.params.delta

    def _pow_chunked(self, exponents: np.ndarray, num_threads: int) -> np.ndarray:
        table = self.params.group.power_table
        delta = self.params.delta
        out = np.empty_like(exponents)

        def kernel(lo: int, hi: int) -> None:
            out[lo:hi] = table[np.mod(exponents[lo:hi], delta)]

        self._run_chunked(kernel, exponents.shape[0], num_threads)
        return out

    def verification_round(self, column: str, num_threads: int = 1,
                           owner_ids: list[int] | None = None,
                           shares: list[np.ndarray] | None = None) -> np.ndarray:
        """Eq. 7: ``g^(Σ_j A(x̄_i)_j) mod η'`` over the complement table.

        Identical sweep shape as :meth:`psi_round` (no ⊖ A(m) term), so a
        server cannot distinguish verification traffic from PSI traffic.
        """
        if shares is None:
            shares = self.fetch_additive(column, owner_ids)
        exponents = self._sum_shares(shares, num_threads)
        return self._pow_chunked(exponents, num_threads)

    def psu_round(self, column: str, query_nonce: int, num_threads: int = 1,
                  owner_ids: list[int] | None = None,
                  shares: list[np.ndarray] | None = None) -> np.ndarray:
        """Eq. 18: the PSU kernel.

        Both servers derive the same mask vector ``rand[i] ∈ [1, δ)`` from
        the common PRG seed and the query nonce, multiply the summed shares
        by it and reduce modulo δ.  Owners adding the two outputs get
        ``(Σ_j x_ij) * rand[i] mod δ`` — zero iff no owner holds the value.
        """
        if shares is None:
            shares = self.fetch_additive(column, owner_ids)
        summed = self._sum_shares(shares, num_threads)
        prg = SeededPRG(self.params.prg_seed, f"psu-{query_nonce}")
        rand = prg.integers(summed.shape[0], 1, self.params.delta)
        out = np.empty_like(summed)

        def kernel(lo: int, hi: int) -> None:
            out[lo:hi] = np.mod(summed[lo:hi] * rand[lo:hi], self.params.delta)

        self._run_chunked(kernel, summed.shape[0], num_threads)
        return out

    def count_round(self, column: str, num_threads: int = 1,
                    owner_ids: list[int] | None = None,
                    shares: list[np.ndarray] | None = None,
                    use_pf_s2: bool = False) -> np.ndarray:
        """§6.5: PSI output permuted server-side before leaving the server.

        Owners can still count the ones (the cardinality) but can no longer
        map positions back to domain values, because ``PF_s1`` is unknown
        to them.  Count *verification* pairs a ``PF_s1``-permuted data
        stream (over χ pre-permuted with ``PF_db1``) with a
        ``PF_s2``-permuted complement stream (over χ̄ pre-permuted with
        ``PF_db2``): by Eq. (1) both arrive permuted by the same unknown
        ``PF_i``, so the owner can pair cells without learning positions.
        """
        out = self.psi_round(column, num_threads, owner_ids, shares)
        pf = self.params.pf_s2 if use_pf_s2 else self.params.pf_s1
        return pf.apply(out)

    def count_verification_round(self, column: str, num_threads: int = 1,
                                 owner_ids: list[int] | None = None,
                                 shares: list[np.ndarray] | None = None
                                 ) -> np.ndarray:
        """Complement stream for count verification, permuted by ``PF_s2``."""
        out = self.verification_round(column, num_threads, owner_ids, shares)
        return self.params.pf_s2.apply(out)

    # -- Shamir kernels (aggregation round 2) ---------------------------------

    def aggregate_round(self, column: str, z_share: np.ndarray,
                        num_threads: int = 1,
                        owner_ids: list[int] | None = None,
                        shares: list[np.ndarray] | None = None) -> np.ndarray:
        """Eq. 11: ``Σ_j S(x_i2)_j × S(z_i)`` per cell, mod the field prime.

        ``z_share`` is this server's Shamir share of the querier's 0/1
        intersection-indicator vector.  The product of two degree-1 shares
        is a degree-2 share; owners reconstruct with all three servers.
        """
        if shares is None:
            shares = self.fetch_shamir(column, owner_ids)
        p = self.params.field_prime
        n = z_share.shape[0]
        if shares[0].shape[0] != n:
            raise ProtocolError(
                f"z vector length {n} does not match column length "
                f"{shares[0].shape[0]}"
            )
        acc = np.zeros(n, dtype=np.int64)

        def kernel(lo: int, hi: int) -> None:
            z = z_share[lo:hi]
            local = acc[lo:hi]
            for s in shares:
                # p < 2**31 keeps each product below 2**62; reduce per term.
                local += np.mod(s[lo:hi] * z, p)
                np.mod(local, p, out=local)

        self._run_chunked(kernel, n, num_threads)
        return acc

    # -- batched 2-D kernels (multi-query fused sweeps) ------------------------

    def _kernel_overridden(self, *names: str) -> bool:
        """True when a subclass replaced any of the named 1-D kernels.

        The unified execution path routes *every* query through the
        fused 2-D kernels, including queries against deployments with
        injected malicious/instrumented servers (subclasses overriding
        the 1-D kernels).  A fused base-class sweep would silently
        bypass those overrides — the tampering would never happen and
        verification tests would vacuously pass — so the batch kernels
        fall back to stacking per-row 1-D outputs whenever a relevant
        kernel is overridden.  Honest deployments never take this path.
        """
        return any(
            getattr(type(self), name) is not getattr(PrismServer, name)
            or name in vars(self)  # instance-level monkeypatch
            for name in names
        )

    @staticmethod
    def _check_uniform(columns, share_lists) -> tuple[int, int]:
        """Validate a fused sweep's inputs; returns (num_owners, b).

        Every column must be held by the same owner set and have the same
        χ length — a fused sweep sums a fixed set of share vectors per
        row, so mixed shapes are a planner bug.  The kernels slice the
        stored 1-D vectors chunk by chunk rather than stacking them into
        per-owner matrices: no copies of the χ table are materialised.
        """
        counts = {len(s) for s in share_lists}
        if len(counts) != 1:
            raise ProtocolError(
                f"batched sweep needs a uniform owner set across columns "
                f"{list(columns)!r}; got share counts {sorted(counts)}"
            )
        lengths = {s[0].shape[0] for s in share_lists}
        if len(lengths) != 1:
            raise ProtocolError(
                f"batched sweep needs equal-length columns; got {sorted(lengths)}"
            )
        return counts.pop(), lengths.pop()

    def _batch_m_shares(self, subtract_m, num_owners, owner_ids) -> np.ndarray:
        """Per-row ``A(m)`` column vector for a fused Eq. 3/Eq. 7 sweep."""
        m_share = self.params.m_share
        if owner_ids is not None and num_owners != self.params.num_owners:
            m_share = self._subset_m_share(num_owners)
        rows = np.fromiter((m_share if flag else 0 for flag in subtract_m),
                           dtype=np.int64, count=len(subtract_m))
        return rows[:, None]

    def psi_round_batch(self, columns, num_threads: int = 1,
                        owner_ids: list[int] | None = None,
                        subtract_m=None, shard_plan=None) -> np.ndarray:
        """Fused multi-query Eq. 3 / Eq. 7 sweep (2-D :meth:`psi_round`).

        Row ``q`` of the returned ``(Q, b)`` matrix is bit-identical to
        ``psi_round(columns[q])`` when ``subtract_m[q]`` is true (the
        default) and to ``verification_round(columns[q])`` otherwise, but
        all rows are produced by a *single* chunked pass over the χ length:
        every row's per-owner share vectors are summed into one 2-D
        accumulator, then reduced and exponentiated together.  The sweep
        stays
        branch-free over the full table, so access-pattern hiding is
        preserved — the instruction sequence depends only on the batch
        shape, never on the data.

        ``shard_plan`` (default: the server's own plan) runs the sweep
        shard-parallel on the deployment's worker pool; outputs stay
        bit-identical to the unsharded sweep for every shard count.
        """
        if not len(columns):
            raise ProtocolError("batched PSI sweep needs at least one column")
        if subtract_m is None:
            subtract_m = [True] * len(columns)
        if len(subtract_m) != len(columns):
            raise ProtocolError("subtract_m flags must match the column count")
        if self._kernel_overridden("psi_round", "verification_round"):
            return np.stack([
                self.psi_round(column, num_threads, owner_ids) if subtract
                else self.verification_round(column, num_threads, owner_ids)
                for column, subtract in zip(columns, subtract_m)
            ])
        share_lists = [self.fetch_additive(c, owner_ids) for c in columns]
        num_owners, n = self._check_uniform(columns, share_lists)
        delta = self.params.delta
        table = self.params.group.power_table
        m_rows = self._batch_m_shares(subtract_m, num_owners, owner_ids)
        plan = self._active_shard_plan(shard_plan)
        if self._process_plan(plan) is not None:
            out = plan.runtime.run_psi(
                self, columns, self._owners_by_column(columns, owner_ids),
                m_rows, n, plan.num_shards)
            if out is not None:
                return out
        out = np.empty((len(columns), n), dtype=np.int64)
        kernel = kernels.psi_sweep(share_lists, m_rows, delta, table, out)
        if kernel is None:
            acc = np.zeros_like(out)

            def kernel(lo: int, hi: int) -> None:
                local = acc[:, lo:hi]
                for q, row_shares in enumerate(share_lists):
                    row = local[q]
                    for s in row_shares:
                        row += s[lo:hi]
                local -= m_rows
                np.mod(local, delta, out=local)
                out[:, lo:hi] = table[local]

        self._run_chunked(kernel, n, self._sweep_chunks(num_threads, plan))
        return out

    def psi_cells_round_batch(self, columns, cells, num_threads: int = 1,
                              owner_ids: list[int] | None = None,
                              subtract_m=None, shard_plan=None) -> np.ndarray:
        """Fused Eq. 3 / Eq. 7 sweep restricted to a subset of χ cells.

        Row ``q`` of the returned ``(Q, len(cells))`` matrix equals
        ``psi_round_batch(columns)[q][cells]`` — the kernel is
        cell-local, so restricting the sweep to the named cells is
        bit-identical to slicing the full sweep (and to the historical
        slice-then-``psi_round`` path the bucketized runner used).  This
        is the per-level sweep of bucketized PSI (§6.6): only the active
        bucket nodes are computed, which is the whole point of the
        bucket tree.

        ``cells`` is a 1-D array of χ cell indices, in output order.
        ``shard_plan`` decomposes the *cells array* into contiguous
        shards and runs them on the deployment's worker pool, with the
        same fallback ladder as :meth:`psi_round_batch`; subclasses that
        override the 1-D kernels fall back to the per-row slice-and-sweep
        path, so malicious / instrumented servers keep misbehaving on
        exactly the active cells.
        """
        cells = np.asarray(cells, dtype=np.int64)
        if cells.ndim != 1:
            raise ProtocolError(
                f"cell index array must be 1-D, got shape {cells.shape}")
        if not len(columns):
            raise ProtocolError("cell-restricted sweep needs at least one "
                                "column")
        if subtract_m is None:
            subtract_m = [True] * len(columns)
        if len(subtract_m) != len(columns):
            raise ProtocolError("subtract_m flags must match the column count")
        def check_cells(b: int) -> None:
            if cells.size and (int(cells.min()) < 0 or int(cells.max()) >= b):
                raise ProtocolError(
                    f"cell indices out of range for χ length {b}")

        if self._kernel_overridden("psi_round", "verification_round"):
            rows = []
            for column, subtract in zip(columns, subtract_m):
                full = self.fetch_additive(column, owner_ids)
                check_cells(full[0].shape[0])
                shares = [s[cells] for s in full]
                rows.append(
                    self.psi_round(column, num_threads, owner_ids, shares)
                    if subtract else
                    self.verification_round(column, num_threads, owner_ids,
                                            shares))
            return np.stack(rows)
        share_lists = [self.fetch_additive(c, owner_ids) for c in columns]
        num_owners, b = self._check_uniform(columns, share_lists)
        check_cells(b)
        n = cells.shape[0]
        if n == 0:
            return np.empty((len(columns), 0), dtype=np.int64)
        delta = self.params.delta
        table = self.params.group.power_table
        m_rows = self._batch_m_shares(subtract_m, num_owners, owner_ids)
        plan = self._active_shard_plan(shard_plan)
        if self._process_plan(plan) is not None:
            out = plan.runtime.run_psi_cells(
                self, columns, self._owners_by_column(columns, owner_ids),
                m_rows, cells, plan.num_shards)
            if out is not None:
                return out
        out = np.empty((len(columns), n), dtype=np.int64)
        kernel = kernels.psi_sweep(share_lists, m_rows, delta, table, out,
                                   cells=cells)
        if kernel is None:
            acc = np.zeros_like(out)

            def kernel(lo: int, hi: int) -> None:
                span = cells[lo:hi]
                local = acc[:, lo:hi]
                for q, row_shares in enumerate(share_lists):
                    row = local[q]
                    for s in row_shares:
                        row += s[span]
                local -= m_rows
                np.mod(local, delta, out=local)
                out[:, lo:hi] = table[local]

        self._run_chunked(kernel, n, self._sweep_chunks(num_threads, plan))
        return out

    def count_round_batch(self, columns, num_threads: int = 1,
                          owner_ids: list[int] | None = None,
                          subtract_m=None, use_pf_s2=None,
                          shard_plan=None) -> np.ndarray:
        """Fused multi-query §6.5 sweep (2-D :meth:`count_round`).

        Data-stream rows (``subtract_m`` true, the default) leave permuted
        by ``PF_s1``; complement-proof rows (``subtract_m`` false with
        ``use_pf_s2`` true) by ``PF_s2`` — exactly the Eq. (1) pairing of
        :meth:`count_round` / :meth:`count_verification_round`, per row.
        """
        if not len(columns):
            raise ProtocolError("batched count sweep needs at least one column")
        if subtract_m is None:
            subtract_m = [True] * len(columns)
        if len(subtract_m) != len(columns):
            raise ProtocolError("subtract_m flags must match the column count")
        if use_pf_s2 is None:
            use_pf_s2 = [False] * len(columns)
        if len(use_pf_s2) != len(columns):
            raise ProtocolError("use_pf_s2 flags must match the column count")
        if self._kernel_overridden("count_round", "count_verification_round"):
            rows = []
            for column, subtract, pf2 in zip(columns, subtract_m, use_pf_s2):
                if subtract and not pf2:
                    rows.append(self.count_round(column, num_threads,
                                                 owner_ids))
                elif pf2 and not subtract:
                    rows.append(self.count_verification_round(
                        column, num_threads, owner_ids))
                else:
                    raise ProtocolError(
                        "per-row count fallback supports only the §6.5 "
                        "data/proof row shapes"
                    )
            return np.stack(rows)
        out = self.psi_round_batch(columns, num_threads, owner_ids, subtract_m,
                                   shard_plan=shard_plan)
        for row, flag in enumerate(use_pf_s2):
            pf = self.params.pf_s2 if flag else self.params.pf_s1
            out[row] = pf.apply(out[row])
        return out

    def psu_round_batch(self, columns, query_nonces, num_threads: int = 1,
                        owner_ids: list[int] | None = None,
                        permute=None, shard_plan=None) -> np.ndarray:
        """Fused multi-query Eq. 18 sweep (2-D :meth:`psu_round`).

        Row ``q`` equals ``psu_round(columns[q], query_nonces[q])`` — each
        query keeps its own fresh mask stream — but the owner-share sums
        are computed once per *distinct* column and broadcast across the
        rows that reference it.  ``permute[q]`` additionally applies
        ``PF_s1`` to row ``q`` (the PSU-Count path).

        Under a ``shard_plan``, each worker seeks the common counter-mode
        PRG to its own span of every row's Eq. 18 mask stream
        (:meth:`~repro.crypto.prg.SeededPRG.integers_at`), so mask
        generation — the dominant PSU cost — shards along with the
        sweep, bit-identically to slicing the full-length stream.
        """
        if not len(columns):
            raise ProtocolError("batched PSU sweep needs at least one column")
        if len(query_nonces) != len(columns):
            raise ProtocolError("query_nonces must match the column count")
        if permute is not None and len(permute) != len(columns):
            raise ProtocolError("permute flags must match the column count")
        if self._kernel_overridden("psu_round"):
            out = np.stack([
                self.psu_round(column, nonce, num_threads, owner_ids)
                for column, nonce in zip(columns, query_nonces)
            ])
            return self._apply_psu_permute(out, permute)
        uniq = list(dict.fromkeys(columns))
        row_map = np.fromiter((uniq.index(c) for c in columns),
                              dtype=np.int64, count=len(columns))
        share_lists = [self.fetch_additive(c, owner_ids) for c in uniq]
        _, n = self._check_uniform(uniq, share_lists)
        delta = self.params.delta
        plan = self._active_shard_plan(shard_plan)
        if self._process_plan(plan) is not None:
            # Workers derive their own span of each row's Eq. 18 mask
            # stream (counter-mode PRG is seekable), so the dominant
            # serial cost of PSU — full-length mask generation — shards
            # along with the sweep.
            out = plan.runtime.run_psu(
                self, uniq, self._owners_by_column(uniq, owner_ids),
                row_map, list(query_nonces), n, plan.num_shards)
            if out is not None:
                return self._apply_psu_permute(out, permute)
        acc = np.zeros((len(uniq), n), dtype=np.int64)
        out = np.empty((len(columns), n), dtype=np.int64)
        keys = [SeededPRG(self.params.prg_seed, f"psu-{nonce}").key_bytes
                for nonce in query_nonces]
        kernel = kernels.psu_sweep(share_lists, acc, row_map, keys, delta,
                                   out)
        if kernel is None:
            rand = np.stack([
                SeededPRG(self.params.prg_seed,
                          f"psu-{nonce}").integers(n, 1, delta)
                for nonce in query_nonces
            ])

            def kernel(lo: int, hi: int) -> None:
                local = acc[:, lo:hi]
                for u, col_shares in enumerate(share_lists):
                    row = local[u]
                    for s in col_shares:
                        row += s[lo:hi]
                np.mod(local, delta, out=local)
                out[:, lo:hi] = np.mod(local[row_map] * rand[:, lo:hi], delta)

        self._run_chunked(kernel, n, self._sweep_chunks(num_threads, plan))
        return self._apply_psu_permute(out, permute)

    def _apply_psu_permute(self, out: np.ndarray, permute) -> np.ndarray:
        """Apply per-row ``PF_s1`` to the flagged rows (the PSU-Count path)."""
        if permute is not None:
            for row, flag in enumerate(permute):
                if flag:
                    out[row] = self.params.pf_s1.apply(out[row])
        return out

    def aggregate_round_batch(self, columns, z_matrix: np.ndarray,
                              num_threads: int = 1,
                              owner_ids: list[int] | None = None,
                              shard_plan=None) -> np.ndarray:
        """Fused multi-query Eq. 11 sweep (2-D :meth:`aggregate_round`).

        ``z_matrix`` stacks one indicator-share vector per query row;
        ``columns[q]`` names the Shamir aggregation column row ``q``
        multiplies into.  Row ``q`` is bit-identical to
        ``aggregate_round(columns[q], z_matrix[q])``.  Under a
        ``shard_plan`` the querier-dealt ``z_matrix`` reaches the workers
        through the shared scratch and the sweep runs shard-parallel.
        """
        if not len(columns):
            raise ProtocolError("batched aggregation needs at least one column")
        # ALIGNED matters for wire-decoded z matrices: the codec hands
        # out zero-copy frame views, which the compiled sweeps (and fast
        # numpy paths) want re-packed once, here.
        z_matrix = np.require(z_matrix, dtype=np.int64,
                              requirements=["ALIGNED", "C_CONTIGUOUS"])
        if z_matrix.ndim != 2 or z_matrix.shape[0] != len(columns):
            raise ProtocolError(
                f"z matrix of shape {z_matrix.shape} does not stack one row "
                f"per column ({len(columns)} expected)"
            )
        if self._kernel_overridden("aggregate_round"):
            return np.stack([
                self.aggregate_round(column, z_matrix[row], num_threads,
                                     owner_ids)
                for row, column in enumerate(columns)
            ])
        share_lists = [self.fetch_shamir(c, owner_ids) for c in columns]
        _, n = self._check_uniform(columns, share_lists)
        if z_matrix.shape[1] != n:
            raise ProtocolError(
                f"z vector length {z_matrix.shape[1]} does not match column "
                f"length {n}"
            )
        plan = self._active_shard_plan(shard_plan)
        if self._process_plan(plan) is not None:
            out = plan.runtime.run_agg(
                self, columns, self._owners_by_column(columns, owner_ids),
                z_matrix, n, plan.num_shards)
            if out is not None:
                return out
        p = self.params.field_prime
        acc = np.zeros((len(columns), n), dtype=np.int64)
        kernel = kernels.agg_sweep(share_lists, z_matrix, p, acc)
        if kernel is None:
            def kernel(lo: int, hi: int) -> None:
                local = acc[:, lo:hi]
                for q, row_shares in enumerate(share_lists):
                    z = z_matrix[q, lo:hi]
                    row = local[q]
                    for s in row_shares:
                        # p < 2**31 keeps each product below 2**62; reduce
                        # per term.
                        row += np.mod(s[lo:hi] * z, p)
                        np.mod(row, p, out=row)

        self._run_chunked(kernel, n, self._sweep_chunks(num_threads, plan))
        return acc

    # -- extrema machinery (§6.3) ---------------------------------------------

    def extrema_collect(self, owner_shares: dict[int, int]) -> list[int]:
        """Step 4: place owners' blinded shares in an array and permute.

        Args:
            owner_shares: owner id → this server's additive share (big int)
                of that owner's blinded value ``v = F(M) + r``.

        Returns the ``PF``-permuted share array destined for the announcer.
        """
        m = self.params.num_owners
        if sorted(owner_shares) != list(range(m)):
            raise ProtocolError(
                f"extrema round expected shares from all {m} owners, got "
                f"{sorted(owner_shares)}"
            )
        array = np.empty(m, dtype=object)
        for owner, share in owner_shares.items():
            array[owner] = share
        permuted = self.params.pf_owners.apply(array)
        return [int(v) for v in permuted]

    def fpos_round(self, alpha_shares: dict[int, int]) -> list[int]:
        """Step 6: assemble the fpos vector of α shares, ordered by owner."""
        m = self.params.num_owners
        if sorted(alpha_shares) != list(range(m)):
            raise ProtocolError(
                f"fpos round expected shares from all {m} owners, got "
                f"{sorted(alpha_shares)}"
            )
        return [int(alpha_shares[i]) for i in range(m)]

    def forward(self, payload):
        """Relay a payload unchanged (announcer→owner hops go via servers)."""
        return payload
