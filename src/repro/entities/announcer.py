"""The announcer S_a (§3.2 entity 4, used by max/min/median, §6.3–6.4).

The announcer receives the PF-permuted additive shares of every owner's
blinded value from the two servers, reconstructs the blinded values (it
may: blinding means it learns neither the true values nor — thanks to the
permutation — whose they are), finds the requested order statistic, and
returns *additive shares* of the result and of its permuted index to the
servers for forwarding.  It talks to servers only, never to owners.
"""

from __future__ import annotations

from repro.core.params import AnnouncerParams
from repro.crypto.additive import share_bigint
from repro.crypto.prg import SeededPRG, derive_seed
from repro.exceptions import ProtocolError
from repro.network.message import Endpoint, Role


class Announcer:
    """The result announcer for extrema/median queries.

    Args:
        params: the announcer's (minimal) knowledge view.
        seed: randomness seed for the shares it deals back.
    """

    def __init__(self, params: AnnouncerParams, seed: int = 0):
        self.params = params
        self.endpoint = Endpoint(Role.ANNOUNCER, 0)
        self._prg = SeededPRG(derive_seed(seed, "announcer"))

    def _combine(self, shares_s1: list[int], shares_s2: list[int]) -> list[int]:
        """Eq. 13: add the i-th shares from the two servers."""
        if len(shares_s1) != len(shares_s2):
            raise ProtocolError(
                f"share arrays differ in length: {len(shares_s1)} vs "
                f"{len(shares_s2)}"
            )
        q = self.params.extrema_modulus
        return [(a + b) % q for a, b in zip(shares_s1, shares_s2)]

    def _share_back(self, value: int) -> tuple[int, int]:
        shares = share_bigint(int(value), self.params.extrema_modulus, 2,
                              self._prg)
        return shares[0], shares[1]

    def announce_max(self, shares_s1: list[int], shares_s2: list[int]
                     ) -> dict[str, tuple[int, int]]:
        """Eq. 14: find max + its (permuted) index; share both back.

        Returns ``{"value": (share_s1, share_s2), "index": (...)}``.
        """
        combined = self._combine(shares_s1, shares_s2)
        best = max(range(len(combined)), key=combined.__getitem__)
        return {
            "value": self._share_back(combined[best]),
            "index": self._share_back(best),
        }

    def announce_min(self, shares_s1: list[int], shares_s2: list[int]
                     ) -> dict[str, tuple[int, int]]:
        """FindMin variant of :meth:`announce_max`."""
        combined = self._combine(shares_s1, shares_s2)
        best = min(range(len(combined)), key=combined.__getitem__)
        return {
            "value": self._share_back(combined[best]),
            "index": self._share_back(best),
        }

    def find_common_cells(self, output_s1, output_s2) -> list[int]:
        """§6.6 note: drive the bucket-tree traversal at the announcer.

        Multiplies the two servers' Eq. 3 outputs modulo ``eta`` and
        returns the indices of the common cells.  Only available when the
        initiator dealt ``eta`` to this announcer (the owner-free
        traversal mode); the announcer thereby learns which bucket nodes
        are common — the documented trade-off of this mode.

        Raises:
            ProtocolError: if ``eta`` was not dealt.
        """
        if self.params.eta is None:
            raise ProtocolError(
                "announcer-driven traversal needs eta; deal announcer "
                "params with include_eta=True"
            )
        eta = self.params.eta
        return [i for i, (a, b) in enumerate(zip(output_s1, output_s2))
                if (int(a) % eta) * (int(b) % eta) % eta == 1]

    def announce_median(self, shares_s1: list[int], shares_s2: list[int]
                        ) -> dict[str, tuple[int, int] | None]:
        """§6.4: sort the blinded values and share back the middle one(s).

        For odd ``m`` returns one middle value (``"high"`` is ``None``);
        for even ``m`` returns both middle values, which the owners invert
        and average.
        """
        combined = sorted(self._combine(shares_s1, shares_s2))
        n = len(combined)
        if n == 0:
            raise ProtocolError("median of an empty share array")
        if n % 2 == 1:
            return {"low": self._share_back(combined[n // 2]), "high": None}
        return {
            "low": self._share_back(combined[n // 2 - 1]),
            "high": self._share_back(combined[n // 2]),
        }
