"""Malicious server behaviours for fault injection (§5.2 threat list).

The paper's verification method must detect servers that (i) skip
processing shares, (ii) replace the result of cell *i* with the result of
cell *j*, (iii) inject fake values, or (iv) tamper with the verification
stream itself.  Each behaviour is a :class:`PrismServer` subclass that
misbehaves in exactly one way, so tests (and the failure-injection bench)
can assert that :meth:`DBOwner.verify_psi` catches each one.
"""

from __future__ import annotations

import numpy as np

from repro.entities.server import PrismServer


class SkipCellsServer(PrismServer):
    """Attack (i): process only the first cell and replicate its result.

    The lazy-server attack the paper motivates the χ̄ permutation with: if
    the complement table were not permuted, replicating cell 0 everywhere
    would still produce a "legal" proof.
    """

    def psi_round(self, column, num_threads=1, owner_ids=None, shares=None):
        honest = super().psi_round(column, num_threads, owner_ids, shares)
        return np.full_like(honest, honest[0])

    def verification_round(self, column, num_threads=1, owner_ids=None, shares=None):
        honest = super().verification_round(column, num_threads, owner_ids, shares)
        return np.full_like(honest, honest[0])


class ReplaySwapServer(PrismServer):
    """Attack (ii): swap the results of two cells in the PSI output.

    Args:
        swap: pair of cell indices whose results are exchanged.
    """

    def __init__(self, index, params, swap=(0, 1)):
        super().__init__(index, params)
        self.swap = swap

    def psi_round(self, column, num_threads=1, owner_ids=None, shares=None):
        out = super().psi_round(column, num_threads, owner_ids, shares)
        i, j = self.swap
        out[i], out[j] = out[j], out[i]
        return out


class InjectFakeServer(PrismServer):
    """Attack (iii): overwrite output cells with forged group elements.

    Writing ``1`` (= ``g^0``) into its own output is the strongest move a
    single server has toward forging membership; verification still fails
    because the complement stream no longer pairs up.

    Args:
        cells: which output cells to overwrite.
        forged_value: the injected value (default ``1``).
    """

    def __init__(self, index, params, cells=(0,), forged_value=1):
        super().__init__(index, params)
        self.cells = tuple(cells)
        self.forged_value = int(forged_value)

    def psi_round(self, column, num_threads=1, owner_ids=None, shares=None):
        out = super().psi_round(column, num_threads, owner_ids, shares)
        for c in self.cells:
            out[c] = self.forged_value
        return out


class FalsifyVerificationServer(PrismServer):
    """Attack (iv): tamper with PSI output *and* the verification stream.

    The server tries to mask a forged PSI cell by also patching cells of
    the complement output — but it does not know ``PF_db1``, so it cannot
    find which complement position corresponds to the forged cell (success
    probability 1/b² per the paper); it patches a pseudorandom guess.

    Args:
        cell: the PSI output cell to forge.
        guess_seed: seed for the (wrong, with high probability) guess.
    """

    def __init__(self, index, params, cell=0, guess_seed=1234):
        super().__init__(index, params)
        self.cell = int(cell)
        self.guess_seed = guess_seed

    def psi_round(self, column, num_threads=1, owner_ids=None, shares=None):
        out = super().psi_round(column, num_threads, owner_ids, shares)
        out[self.cell] = 1
        return out

    def verification_round(self, column, num_threads=1, owner_ids=None, shares=None):
        out = super().verification_round(column, num_threads, owner_ids, shares)
        rng = np.random.default_rng(self.guess_seed)
        guess = int(rng.integers(0, out.shape[0]))
        out[guess] = 1
        return out


class DropAggregateServer(PrismServer):
    """Aggregation attack: zero out cells of the Eq. 11 sum output.

    Used to show the replicated (permuted-copy) aggregation verification
    detecting dropped contributions.
    """

    def __init__(self, index, params, cells=(0,)):
        super().__init__(index, params)
        self.cells = tuple(cells)

    def aggregate_round(self, column, z_share, num_threads=1, owner_ids=None, shares=None):
        out = super().aggregate_round(column, z_share, num_threads, owner_ids, shares)
        if not column.startswith("v"):
            for c in self.cells:
                out[c] = 0
        return out
