"""Client-side proxy for a server entity living behind a channel.

:class:`RemoteServer` mirrors the callable surface of
:class:`~repro.entities.server.PrismServer` — the storage interface,
the 1-D and fused 2-D kernels, the extrema machinery — and forwards
every call through a :class:`~repro.network.rpc.Channel` as a framed
RPC.  The orchestration layer (:mod:`repro.core`) therefore runs
unchanged whether ``system.servers[i]`` is an in-process server object
or a proxy to an entity three sockets away; results are bit-identical
because the hosted entity executes the very same kernels over the very
same shares.

Two deliberate translations happen at this boundary:

* **Fetches are lazy.**  The sequential runners fetch share lists
  client-side only to hand them straight back to the same server's
  kernel; shipping the full χ table both ways would be absurd.
  :meth:`RemoteServer.fetch_additive` returns a :class:`LazyShares`
  handle instead — if the caller only passes it back to a kernel, the
  proxy sends ``shares=None`` and the host re-fetches locally (free:
  the store memoises fetches); if the caller actually *reads* the
  shares (the bucketized runner slices active nodes), the handle
  materialises them over the wire on first access.
* **Shard plans become shard counts.**  A
  :class:`~repro.core.sharding.ShardPlan` names a local forked worker
  pool, which cannot reach a remote store; the proxy ships the shard
  *count* and the host executes with its own local plan —
  bit-identical by the sharding layer's span contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import ServerParams
from repro.exceptions import ProtocolError
from repro.network.message import Endpoint, Role


class LazyShares:
    """A deferred server-side share fetch (see module docstring)."""

    def __init__(self, channel, method: str, column: str, owner_ids):
        self._channel = channel
        self._method = method
        self._column = column
        self._owner_ids = owner_ids
        self._data: list | None = None

    @property
    def materialized(self) -> bool:
        return self._data is not None

    def materialize(self) -> list:
        """Fetch the share vectors over the wire (memoised)."""
        if self._data is None:
            self._data = list(self._channel.call(
                self._method, self._column, self._owner_ids))
        return self._data

    def __iter__(self):
        return iter(self.materialize())

    def __len__(self) -> int:
        return len(self.materialize())

    def __getitem__(self, index):
        return self.materialize()[index]


def _wire_shares(shares):
    """What a kernel call ships for its ``shares`` argument."""
    if shares is None:
        return None
    if isinstance(shares, LazyShares):
        # Never materialised client-side: let the host fetch locally.
        return shares._data
    return list(shares)


#: Minimum active cells *per shard* before a sharded remote sweep is
#: split into span-scoped frames.  Below this, one whole-sweep RPC
#: shipping ``num_shards`` is strictly cheaper: the channel admits one
#: in-flight request, so span frames serialise into ``num_shards``
#: round-trips while the host can thread-shard a whole sweep itself.
#: Span frames earn their round-trips only when each span carries real
#: work (or once a multi-connection dispatcher spreads them over
#: several hosts).  Tests lower this to exercise the span path end to
#: end at toy sizes.
SPAN_DISPATCH_MIN_CELLS = 2048


class RemoteServer:
    """Proxy speaking the PrismServer RPC surface over one channel.

    Args:
        index: server id (mirrors the remote entity's).
        params: the server's §4 knowledge view.  Kept client-side too:
            the orchestrator performs a few server-side steps itself in
            the sequential runners (e.g. the ``PF_s1`` permutation of
            PSU-Count), and the initiator dealt these parameters in the
            first place.
        channel: the :class:`~repro.network.rpc.Channel` to the host.
    """

    #: Marks the proxy for layers that must not touch a local store.
    is_remote = True

    def __init__(self, index: int, params: ServerParams, channel):
        self.index = index
        self.params = params
        self.channel = channel
        self.endpoint = Endpoint(Role.SERVER, index)
        #: Deployment-default shard plan (shard *count* only; the
        #: runtime, if any, lives host-side).
        self.shard_plan = None
        #: Whether sharded cell-restricted sweeps may be issued as
        #: span-scoped RPC frames (one request per shard span,
        #: concatenated client-side).  Only sound against an unmodified
        #: base-class server — the span path reads the hosted store
        #: directly and must never bypass a malicious / instrumented
        #: subclass — so :class:`~repro.core.system.PrismSystem` enables
        #: it exactly for the servers it built without a custom factory.
        self.span_dispatch = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteServer(index={self.index}, channel={self.channel!r})"

    # -- storage surface ------------------------------------------------------

    def receive_shares(self, owner_id: int, column: str, values, kind) -> None:
        """Phase 1: forward one outsourced share vector to the host."""
        self.channel.call("receive_shares", int(owner_id), column,
                          np.asarray(values, dtype=np.int64), kind.value)

    def owners_with(self, column: str) -> list[int]:
        """Owner ids that outsourced ``column`` on the hosted store."""
        return list(self.channel.call("owners_with", column))

    def fetch_additive(self, column: str, owner_ids=None) -> LazyShares:
        return LazyShares(self.channel, "fetch_additive", column,
                          list(owner_ids) if owner_ids is not None else None)

    def fetch_shamir(self, column: str, owner_ids=None) -> LazyShares:
        return LazyShares(self.channel, "fetch_shamir", column,
                          list(owner_ids) if owner_ids is not None else None)

    # -- 1-D kernels ----------------------------------------------------------

    def psi_round(self, column, num_threads: int = 1, owner_ids=None,
                  shares=None):
        return self.channel.call("psi_round", column, num_threads,
                                 self._owners(owner_ids),
                                 shares=_wire_shares(shares))

    def verification_round(self, column, num_threads: int = 1, owner_ids=None,
                           shares=None):
        return self.channel.call("verification_round", column, num_threads,
                                 self._owners(owner_ids),
                                 shares=_wire_shares(shares))

    def psu_round(self, column, query_nonce: int, num_threads: int = 1,
                  owner_ids=None, shares=None):
        return self.channel.call("psu_round", column, int(query_nonce),
                                 num_threads, self._owners(owner_ids),
                                 shares=_wire_shares(shares))

    def count_round(self, column, num_threads: int = 1, owner_ids=None,
                    shares=None, use_pf_s2: bool = False):
        return self.channel.call("count_round", column, num_threads,
                                 self._owners(owner_ids),
                                 shares=_wire_shares(shares),
                                 use_pf_s2=bool(use_pf_s2))

    def count_verification_round(self, column, num_threads: int = 1,
                                 owner_ids=None, shares=None):
        return self.channel.call("count_verification_round", column,
                                 num_threads, self._owners(owner_ids),
                                 shares=_wire_shares(shares))

    def aggregate_round(self, column, z_share, num_threads: int = 1,
                        owner_ids=None, shares=None):
        return self.channel.call("aggregate_round", column,
                                 np.asarray(z_share, dtype=np.int64),
                                 num_threads, self._owners(owner_ids),
                                 shares=_wire_shares(shares))

    # -- span fan-out ---------------------------------------------------------

    def _span_bounds(self, length: int, num_shards, pool_only: bool):
        """Span decomposition for a length-``length`` sweep, or ``None``.

        ``None`` means "send one whole-sweep request" (shipping the
        shard *count* for the host to decompose locally).  A span
        decomposition is only worth its frames when the channel can
        serve them concurrently — always when it fans out over a host
        pool, and (for the cell-restricted bucketized sweeps,
        ``pool_only=False``) when an explicit shard plan asks for
        span-scoped wire traffic on a single host.  Every span must
        clear the :data:`SPAN_DISPATCH_MIN_CELLS` floor.
        """
        if not self.span_dispatch or length <= 0:
            return None
        fan_out = int(getattr(self.channel, "fan_out", 1) or 1)
        fan = max(num_shards or 1, fan_out)
        if pool_only and fan_out <= 1:
            return None
        if fan <= 1 or fan > length or length < fan * SPAN_DISPATCH_MIN_CELLS:
            return None
        from repro.core.sharding import shard_bounds
        return shard_bounds(int(length), fan)

    def _scatter_spans(self, kind: str, frames):
        """Issue span frames concurrently; concatenate replies in order."""
        from repro.network.rpc import RpcMessage
        messages = [RpcMessage(kind, payload, span=span)
                    for payload, span in frames]
        replies = self.channel.scatter(messages)
        return np.concatenate([reply.payload for reply in replies], axis=1)

    def _scatter_psi(self, columns, owner_ids, subtract_m, bounds):
        frames = [
            ({"a": [columns, 1, self._owners(owner_ids)],
              "k": {"subtract_m": subtract_m}}, (lo, hi))
            for lo, hi in bounds
        ]
        return self._scatter_spans("psi_round_batch", frames)

    # -- fused 2-D kernels ----------------------------------------------------

    def psi_round_batch(self, columns, num_threads: int = 1, owner_ids=None,
                        subtract_m=None, shard_plan=None):
        """Fused Eq. 3 / Eq. 7 sweep, fanned out across a host pool.

        Over a pooled channel against an unmodified host
        (:attr:`span_dispatch`), the χ length splits into one
        span-scoped frame per pool member (or per shard, whichever is
        finer) and the concurrent replies concatenate bit-identically
        to the whole sweep — the sharding layer's span contract, now
        spanning hosts.  The χ length is known client-side: ``PF``
        permutes the χ table, so ``params.pf.size`` *is* b.
        """
        columns = list(columns)
        num_shards = self._shards(shard_plan)
        bounds = self._span_bounds(self.params.pf.size, num_shards,
                                   pool_only=True) if columns else None
        if bounds is not None:
            return self._scatter_psi(columns, owner_ids,
                                     self._flags(subtract_m), bounds)
        return self.channel.call(
            "psi_round_batch", columns, num_threads,
            self._owners(owner_ids),
            subtract_m=self._flags(subtract_m),
            num_shards=num_shards)

    def psi_cells_round_batch(self, columns, cells, num_threads: int = 1,
                              owner_ids=None, subtract_m=None,
                              shard_plan=None):
        """Cell-restricted Eq. 3 sweep; only the cell *indices* travel.

        The bucketized per-level rounds call this instead of
        materialising χ shares client-side.  Under a shard plan or a
        host pool against an unmodified host (:attr:`span_dispatch`),
        the sweep is issued as one span-scoped RPC frame per shard of
        the cells array — scattered concurrently across the channel
        (pipelined on one host, fanned out over a pool) — and the
        replies concatenate bit-identically to the whole sweep.
        Otherwise the shard *count* ships and the host decomposes
        locally (bit-identical either way).
        """
        cells = np.asarray(cells, dtype=np.int64)
        num_shards = self._shards(shard_plan)
        bounds = self._span_bounds(int(cells.size), num_shards,
                                   pool_only=False) if len(columns) else None
        if bounds is not None:
            # Each frame carries only its own slice of the cells array
            # (span over the slice), so a cell index travels and is
            # validated exactly once across the shard frames.
            frames = [
                ({"a": [list(columns), cells[lo:hi], num_threads,
                        self._owners(owner_ids)],
                  "k": {"subtract_m": self._flags(subtract_m)}},
                 (0, hi - lo))
                for lo, hi in bounds
            ]
            return self._scatter_spans("psi_cells_round_batch", frames)
        return self.channel.call(
            "psi_cells_round_batch", list(columns), cells, num_threads,
            self._owners(owner_ids), subtract_m=self._flags(subtract_m),
            num_shards=num_shards)

    def count_round_batch(self, columns, num_threads: int = 1, owner_ids=None,
                          subtract_m=None, use_pf_s2=None, shard_plan=None):
        """Fused §6.5 sweep: pooled fan-out + client-side permutation.

        The §6.5 sweep is the Eq. 3 sweep followed by a *post-sweep*
        row permutation (``PF_s1`` / ``PF_s2``) — not span-local, so a
        pooled dispatch fans out the psi spans and applies the
        permutation after concatenation, exactly as the sequential
        runners already do with the very parameters the initiator
        dealt this proxy (see the class docstring).  Bit-identical: the
        permutation commutes with span concatenation by construction.
        """
        columns = list(columns)
        num_shards = self._shards(shard_plan)
        bounds = self._span_bounds(self.params.pf.size, num_shards,
                                   pool_only=True) if columns else None
        if bounds is not None:
            flags = self._flags(use_pf_s2) or [False] * len(columns)
            if len(flags) != len(columns):
                raise ProtocolError(
                    "use_pf_s2 flags must match the column count")
            out = self._scatter_psi(columns, owner_ids,
                                    self._flags(subtract_m), bounds)
            for row, flag in enumerate(flags):
                pf = self.params.pf_s2 if flag else self.params.pf_s1
                out[row] = pf.apply(out[row])
            return out
        return self.channel.call(
            "count_round_batch", columns, num_threads,
            self._owners(owner_ids),
            subtract_m=self._flags(subtract_m),
            use_pf_s2=self._flags(use_pf_s2),
            num_shards=num_shards)

    def psu_round_batch(self, columns, query_nonces, num_threads: int = 1,
                        owner_ids=None, permute=None, shard_plan=None):
        """Fused Eq. 18 sweep, fanned out across a host pool.

        Span frames request the *unpermuted* masked sweep (each host
        seeks the counter-mode PRG to its own span of every row's mask
        stream); the post-sweep ``PF_s1`` of permute-flagged rows is
        applied after concatenation, mirroring the host kernel's own
        order of operations.
        """
        columns = list(columns)
        nonces = [int(nonce) for nonce in query_nonces]
        num_shards = self._shards(shard_plan)
        bounds = self._span_bounds(self.params.pf.size, num_shards,
                                   pool_only=True) if columns else None
        if bounds is not None:
            frames = [
                ({"a": [columns, nonces, 1, self._owners(owner_ids)],
                  "k": {}}, (lo, hi))
                for lo, hi in bounds
            ]
            out = self._scatter_spans("psu_round_batch", frames)
            flags = self._flags(permute)
            if flags is not None:
                if len(flags) != len(columns):
                    raise ProtocolError(
                        "permute flags must match the column count")
                for row, flag in enumerate(flags):
                    if flag:
                        out[row] = self.params.pf_s1.apply(out[row])
            return out
        return self.channel.call(
            "psu_round_batch", columns, nonces, num_threads,
            self._owners(owner_ids), permute=self._flags(permute),
            num_shards=num_shards)

    def aggregate_round_batch(self, columns, z_matrix, num_threads: int = 1,
                              owner_ids=None, shard_plan=None):
        """Fused Eq. 11 sweep, fanned out across a host pool.

        Each span frame ships only its own slice of the querier-dealt
        indicator-share matrix, so the z traffic shards with the sweep
        instead of being replicated per member.
        """
        columns = list(columns)
        z_matrix = np.asarray(z_matrix, dtype=np.int64)
        num_shards = self._shards(shard_plan)
        bounds = None
        if columns and z_matrix.ndim == 2 and z_matrix.shape[0] == len(columns):
            bounds = self._span_bounds(int(z_matrix.shape[1]), num_shards,
                                       pool_only=True)
        if bounds is not None:
            frames = [
                ({"a": [columns, z_matrix[:, lo:hi], 1,
                        self._owners(owner_ids)],
                  "k": {}}, (lo, hi))
                for lo, hi in bounds
            ]
            return self._scatter_spans("aggregate_round_batch", frames)
        return self.channel.call(
            "aggregate_round_batch", columns, z_matrix, num_threads,
            self._owners(owner_ids), num_shards=num_shards)

    # -- extrema machinery ----------------------------------------------------

    def extrema_collect(self, owner_shares: dict) -> list[int]:
        return list(self.channel.call(
            "extrema_collect",
            {int(owner): int(share)
             for owner, share in owner_shares.items()}))

    def fpos_round(self, alpha_shares: dict) -> list[int]:
        return list(self.channel.call(
            "fpos_round",
            {int(owner): int(share)
             for owner, share in alpha_shares.items()}))

    def forward(self, payload):
        return self.channel.call("forward", payload)

    # -- lifecycle ------------------------------------------------------------

    def ping(self) -> dict:
        """Host liveness + identity check."""
        from repro.network.rpc import PING, RpcMessage
        return self.channel.send(RpcMessage(PING)).payload

    def healthy(self) -> bool:
        """Whether the role currently answers its liveness probe.

        Bounded by the channel's lifecycle/probe deadline (never the
        session-wide ``rpc_timeout``), and never raises: a dead or
        fully-ejected pool reports ``False``.
        """
        from repro.exceptions import ProtocolError, QueryError
        try:
            self.ping()
        except (ProtocolError, QueryError, OSError):
            return False
        return True

    def close(self) -> None:
        """Quiesce the remote entity's execution pools (channel stays up)."""
        self.channel.call("close")

    # -- marshalling helpers --------------------------------------------------

    @staticmethod
    def _owners(owner_ids):
        return list(owner_ids) if owner_ids is not None else None

    @staticmethod
    def _flags(flags):
        return [bool(flag) for flag in flags] if flags is not None else None

    def _shards(self, shard_plan):
        plan = shard_plan if shard_plan is not None else self.shard_plan
        if plan is None or plan.num_shards <= 1:
            return None
        return int(plan.num_shards)
