"""The DB owner (§3.2 entity 1).

Owners prepare and outsource their data (Phase 1), optionally issue
queries (Phase 2), and finalise results from the servers' share outputs
(Phase 4).  This module implements every owner-side computation:

* χ-table construction: the 0/1 domain-indicator vector over ``Dom(A_c)``
  (§5.1 Step 1), its complement table for verification (§5.2), and the
  per-cell aggregation vectors of Table 11 (sum, count per group).
* Share creation: additive shares of χ to servers 0/1, Shamir shares of
  aggregation columns to servers 0/1/2.
* Result finalisation: Eq. 4 (PSI), Eq. 8–10 (verification), Eq. 19 (PSU),
  Lagrange interpolation of the degree-2 aggregation outputs, and the
  §6.3 extrema steps (blinding, F-inversion, the α round).
"""

from __future__ import annotations

import numpy as np

from repro.core.params import OwnerParams
from repro.crypto.additive import AdditiveSharing, share_bigint
from repro.crypto.prg import SeededPRG, derive_seed
from repro.crypto.shamir import ShamirSharing
from repro.data.relation import Relation
from repro.data.storage import ShareKind
from repro.exceptions import ProtocolError, VerificationError
from repro.network.message import Endpoint, Role


class DBOwner:
    """One database owner with a local relation and a parameter view.

    Args:
        owner_id: 0-based owner index.
        params: the knowledge view dealt by the initiator.
        relation: the owner's private relation.
        seed: owner-local randomness seed (share randomness).
    """

    def __init__(self, owner_id: int, params: OwnerParams,
                 relation: Relation | None = None, seed: int = 0):
        self.owner_id = owner_id
        self.params = params
        self.relation = relation
        self.endpoint = Endpoint(Role.OWNER, owner_id)
        self._rng = np.random.default_rng(
            derive_seed(seed, f"owner-{owner_id}")
        )
        self._prg = SeededPRG(derive_seed(seed, f"owner-prg-{owner_id}"))
        self._additive = AdditiveSharing(params.delta, num_shares=2, rng=self._rng)
        self._shamir = ShamirSharing(params.field_prime, num_shares=3,
                                     degree=1, rng=self._rng)

    # -- χ-table construction (Phase 1 preparation) ---------------------------

    def _attribute_values(self, attributes: str | tuple):
        """Distinct values (or value tuples) of the PSI attribute(s)."""
        if self.relation is None:
            raise ProtocolError(f"owner {self.owner_id} holds no relation")
        if isinstance(attributes, str):
            return self.relation.distinct(attributes)
        columns = [self.relation.column(a) for a in attributes]
        return list(dict.fromkeys(zip(*columns)))

    def build_indicator(self, attributes: str | tuple,
                        mask_zeros: bool = False) -> np.ndarray:
        """The χ table: 1 at the cell of every present value, else 0.

        Args:
            attributes: PSI attribute (or tuple for product domains).
            mask_zeros: the paper's footnote-1 hardening — absent cells
                hold a random value (never 0 or 1) instead of 0, so an
                owner's table never encodes its value *distribution* even
                if shares leak.  Masks are drawn from
                ``[2, (delta-1)//m + 1)``, which keeps every mixed cell
                sum strictly inside ``(m, delta)``: PSI stays *exactly*
                correct (a cell sums to ``m`` iff all owners put a 1
                there, with no modular wrap-around and no false
                positives).  Incompatible with the complement-based
                verification (which needs exact 0/1 tables).
        """
        chi = np.zeros(self.params.domain.size, dtype=np.int64)
        if mask_zeros:
            # Upper bound chosen so k ones + (m-k) masks can only reach m
            # when k == m: masks >= 2 force the sum past m otherwise, and
            # the bound keeps the total below delta (no wrap).
            hi = (self.params.delta - 1) // self.params.num_owners + 1
            span = max(1, hi - 2)
            chi = 2 + self._rng.integers(0, span,
                                         size=self.params.domain.size,
                                         dtype=np.int64)
        for value in self._attribute_values(attributes):
            chi[self.params.domain.cell_of(value)] = 1
        return chi

    def build_complement(self, chi: np.ndarray) -> np.ndarray:
        """The χ̄ table, permuted with ``PF_db1`` (§5.2 Step 1)."""
        return self.params.pf_db1.apply(1 - chi)

    def build_group_sums(self, psi_attribute: str, agg_attribute: str) -> np.ndarray:
        """Per-cell sums of ``agg_attribute`` grouped by ``psi_attribute``.

        This is the ``x_i2`` vector of §6.1 / the PK..DT columns of
        Table 11 (``select A_c, sum(A_x) group by A_c`` scattered over
        domain cells, zero where the owner has no tuple).
        """
        if self.relation is None:
            raise ProtocolError(f"owner {self.owner_id} holds no relation")
        sums = self.relation.group_by_sum(psi_attribute, agg_attribute)
        vec = np.zeros(self.params.domain.size, dtype=np.int64)
        for value, total in sums.items():
            vec[self.params.domain.cell_of(value)] = total
        return vec

    def build_group_counts(self, psi_attribute: str) -> np.ndarray:
        """Per-cell tuple counts (the ``aOK`` column, used by average)."""
        if self.relation is None:
            raise ProtocolError(f"owner {self.owner_id} holds no relation")
        counts = self.relation.group_by_count(psi_attribute)
        vec = np.zeros(self.params.domain.size, dtype=np.int64)
        for value, count in counts.items():
            vec[self.params.domain.cell_of(value)] = count
        return vec

    # -- share creation --------------------------------------------------------

    def additive_shares_of(self, vector: np.ndarray) -> list[np.ndarray]:
        """Two additive shares of a χ-style vector."""
        return self._additive.share_vector(vector)

    def shamir_shares_of(self, vector: np.ndarray) -> list[np.ndarray]:
        """Three degree-1 Shamir shares of an aggregation vector."""
        return self._shamir.share_vector(vector)

    def outsource(self, servers, psi_attribute: str | tuple,
                  agg_attributes: tuple = (), with_verification: bool = False,
                  column_prefix: str = "", transport=None,
                  mask_zeros: bool = False) -> None:
        """Phase 1: build Table-11-style columns and ship shares to servers.

        Stored columns mirror Table 11: the χ indicator under the attribute
        name (``OK``), its complement under ``vOK``, aggregation columns
        under their names (``PK``...), permuted verification copies under
        ``vPK``..., the count column under ``aOK``, and — for verifiable
        count queries — ``PF_db1``-permuted χ under ``cOK`` with the
        ``PF_db2``-permuted complement under ``cvOK``.

        Args:
            servers: the (2 or 3) :class:`PrismServer` objects.
            psi_attribute: attribute (or attribute tuple) for PSI/PSU.
            agg_attributes: attributes to prepare for aggregation queries.
            with_verification: also outsource the verification columns.
            column_prefix: optional namespace for stored column names.
            transport: optional :class:`LocalTransport` for traffic
                accounting of the outsourcing phase.
        """

        if agg_attributes and not isinstance(psi_attribute, str):
            raise ProtocolError(
                "aggregation requires a single PSI attribute, not a tuple"
            )
        if mask_zeros and with_verification:
            raise ProtocolError(
                "mask_zeros stores random values in absent cells, which "
                "the complement-based verification cannot pair; choose one"
            )

        def ship(server, column, values, kind):
            if transport is not None:
                transport.transfer(self.endpoint, server.endpoint,
                                   f"outsource:{column}", values)
            server.receive_shares(self.owner_id, column, values, kind)

        key = self._column_name(psi_attribute, column_prefix)
        chi = self.build_indicator(psi_attribute, mask_zeros=mask_zeros)
        for server, share in zip(servers[:2], self.additive_shares_of(chi)):
            ship(server, key, share, ShareKind.ADDITIVE)
        if with_verification:
            complement = self.build_complement(chi)
            for server, share in zip(servers[:2],
                                     self.additive_shares_of(complement)):
                ship(server, "v" + key, share, ShareKind.ADDITIVE)
            # Count-verification streams (Eq. 1 pairing): χ permuted by
            # PF_db1 and χ̄ permuted by PF_db2.
            chi_c = self.params.pf_db1.apply(chi)
            for server, share in zip(servers[:2], self.additive_shares_of(chi_c)):
                ship(server, "c" + key, share, ShareKind.ADDITIVE)
            comp_c = self.params.pf_db2.apply(1 - chi)
            for server, share in zip(servers[:2], self.additive_shares_of(comp_c)):
                ship(server, "cv" + key, share, ShareKind.ADDITIVE)
        for agg in agg_attributes:
            sums = self.build_group_sums(psi_attribute, agg)
            for server, share in zip(servers[:3], self.shamir_shares_of(sums)):
                ship(server, column_prefix + agg, share, ShareKind.SHAMIR)
            if with_verification:
                permuted = self.params.pf_db1.apply(sums)
                for server, share in zip(servers[:3],
                                         self.shamir_shares_of(permuted)):
                    ship(server, "v" + column_prefix + agg, share,
                         ShareKind.SHAMIR)
        if agg_attributes:
            counts = self.build_group_counts(psi_attribute)
            for server, share in zip(servers[:3], self.shamir_shares_of(counts)):
                ship(server, "a" + key, share, ShareKind.SHAMIR)

    @staticmethod
    def _column_name(psi_attribute: str | tuple, prefix: str = "") -> str:
        if isinstance(psi_attribute, str):
            return prefix + psi_attribute
        return prefix + "*".join(psi_attribute)

    # -- Phase 4: finalisation ---------------------------------------------------

    def finalize_psi(self, output_s1: np.ndarray,
                     output_s2: np.ndarray) -> np.ndarray:
        """Eq. 4: pointwise product mod η; 1 marks a common value.

        Returns the raw ``fop`` vector (callers decide whether to decode
        positions — PSI-Count deliberately cannot).
        """
        eta = self.params.eta
        a = np.mod(output_s1, eta)
        b = np.mod(output_s2, eta)
        return np.mod(a * b, eta)

    def psi_membership(self, fop: np.ndarray) -> np.ndarray:
        """Boolean intersection-membership vector from ``fop``."""
        return fop == 1

    def decode_cells(self, member: np.ndarray,
                     attributes: str | tuple | None = None) -> list:
        """Map a membership vector back to domain values.

        Enumerated/product domains decode directly.  Hashed domains are
        not invertible, so the owner decodes against its *own* values of
        the queried attribute (sound for PSI, whose result is a subset of
        every owner's set; for PSU only the cells held by this owner can
        be named — others stay opaque, which matches what a hashed-domain
        deployment can reveal).

        Args:
            member: boolean membership vector over domain cells.
            attributes: the queried attribute(s); required for hashed
                domains, ignored otherwise.
        """
        domain = self.params.domain
        if getattr(domain, "invertible", True):
            return [domain.value_of(int(i)) for i in np.nonzero(member)[0]]
        if attributes is None:
            raise ProtocolError(
                "decoding a hashed-domain result needs the queried "
                "attribute to derive the candidate values"
            )
        return [v for v in self._attribute_values(attributes)
                if member[domain.cell_of(v)]]

    def finalize_psu(self, output_s1: np.ndarray,
                     output_s2: np.ndarray) -> np.ndarray:
        """Eq. 19: modular addition; nonzero marks a union member."""
        return np.mod(output_s1 + output_s2, self.params.delta) != 0

    def verify_psi(self, fop: np.ndarray, vout_s1: np.ndarray,
                   vout_s2: np.ndarray) -> None:
        """Eq. 8–10: check ``r1 * r2 mod η == 1`` for every cell.

        ``vout`` arrives permuted (owners applied ``PF_db1`` to χ̄ before
        sharing); we invert the permutation so cell ``i`` of the proof
        lines up with cell ``i`` of ``fop``.

        Raises:
            VerificationError: listing the failing cells, if any.
        """
        eta = self.params.eta
        pvout1 = self.params.pf_db1.invert(vout_s1)
        pvout2 = self.params.pf_db1.invert(vout_s2)
        r2 = np.mod(np.mod(pvout1, eta) * np.mod(pvout2, eta), eta)
        proof = np.mod(fop * r2, eta)
        bad = np.nonzero(proof != 1)[0]
        if bad.size:
            raise VerificationError(
                f"PSI verification failed at {bad.size} of {proof.size} cells",
                failed_cells=bad.tolist(),
            )

    def make_z_shares(self, member: np.ndarray) -> list[np.ndarray]:
        """§6.1 Step 3: Shamir-share the 0/1 indicator of common items."""
        return self._shamir.share_vector(member.astype(np.int64))

    def finalize_aggregate(self, outputs: list[np.ndarray]) -> np.ndarray:
        """§6.1 Step 5: degree-2 Lagrange interpolation of the three sums."""
        if len(outputs) < 3:
            raise ProtocolError(
                f"degree-2 reconstruction needs 3 server outputs, got "
                f"{len(outputs)}"
            )
        return self._shamir.reconstruct_vector(outputs[:3], degree=2)

    # -- extrema steps (§6.3) -----------------------------------------------------

    def local_group_max(self, psi_attribute: str, agg_attribute: str, value):
        """M_i: this owner's max of ``agg_attribute`` where A_c == value."""
        if self.relation is None:
            raise ProtocolError(f"owner {self.owner_id} holds no relation")
        maxima = self.relation.group_by_max(psi_attribute, agg_attribute)
        return maxima.get(value)

    def local_group_min(self, psi_attribute: str, agg_attribute: str, value):
        """This owner's min of ``agg_attribute`` where A_c == value."""
        if self.relation is None:
            raise ProtocolError(f"owner {self.owner_id} holds no relation")
        minima = self.relation.group_by_min(psi_attribute, agg_attribute)
        return minima.get(value)

    def local_group_sum(self, psi_attribute: str, agg_attribute: str, value):
        """This owner's sum of ``agg_attribute`` where A_c == value."""
        if self.relation is None:
            raise ProtocolError(f"owner {self.owner_id} holds no relation")
        sums = self.relation.group_by_sum(psi_attribute, agg_attribute)
        return sums.get(value)

    def blind_value(self, value: int) -> int:
        """Eq. 12: ``v = F(M) + r`` with ``r`` inside the safe blinding bound.

        Raises:
            ProtocolError: if the blinded value could reach the extrema
                modulus (the value exceeds the initiator's declared
                ``value_bound``) — wrapping would silently break the
                announcer's ordering.
        """
        poly = self.params.polynomial
        if poly.max_blinded_value(value) > self.params.extrema_modulus:
            raise ProtocolError(
                f"aggregation value {value} exceeds the declared bound; "
                f"re-deal parameters with a larger value_bound"
            )
        bound = max(1, poly.blinding_bound(value))
        r = self._prg.integer(0, bound)
        return poly(value) + r

    def extrema_shares(self, blinded: int) -> list[int]:
        """Two additive shares of a blinded value over the extrema modulus."""
        return share_bigint(blinded, self.params.extrema_modulus, 2, self._prg)

    def recover_extremum(self, share_s1: int, share_s2: int) -> int:
        """Step 5a: reconstruct the announced blinded extremum and invert F."""
        blinded = (share_s1 + share_s2) % self.params.extrema_modulus
        return self.params.polynomial.invert_blinded(blinded)

    def recover_owner_identity(self, share_s1: int, share_s2: int) -> int:
        """Step 5a: reconstruct the permuted index and apply ``RPF``."""
        index = (share_s1 + share_s2) % self.params.extrema_modulus
        return self.params.pf_owners.invert_index(int(index))

    def holds_extremum(self, local_value: int | None, extremum: int) -> bool:
        """Step 5b: does this owner's own value match the extremum?"""
        return local_value is not None and int(local_value) == int(extremum)

    def alpha_shares(self, holds: bool) -> list[int]:
        """Step 5b: additive shares of the 0/1 'I hold it' flag."""
        return share_bigint(int(holds), self.params.extrema_modulus, 2, self._prg)

    def finalize_fpos(self, fpos_s1: list[int], fpos_s2: list[int]) -> list[int]:
        """Step 7: reconstruct which owners hold the extremum."""
        q = self.params.extrema_modulus
        return [(a + b) % q for a, b in zip(fpos_s1, fpos_s2)]
