"""Cryptographic building blocks for Prism (§3.1).

Subpackage layout:

* :mod:`repro.crypto.primes` — primality, prime search, modular inverses.
* :mod:`repro.crypto.groups` — cyclic subgroups and server power tables.
* :mod:`repro.crypto.additive` — additive secret sharing over Z_delta.
* :mod:`repro.crypto.shamir` — Shamir secret sharing over F_p.
* :mod:`repro.crypto.prg` — deterministic SHA-256 counter-mode PRG.
* :mod:`repro.crypto.permutation` — permutation functions incl. Eq. (1).
* :mod:`repro.crypto.hashing` — value → χ-cell domain mappers.
* :mod:`repro.crypto.polynomial` — the order-preserving ``F(x)`` of §6.3.
"""

from repro.crypto.additive import AdditiveSharing, reconstruct_bigint, share_bigint
from repro.crypto.groups import CyclicGroup, find_subgroup_generator
from repro.crypto.hashing import EnumeratedDomainMapper, HashedDomainMapper
from repro.crypto.permutation import Permutation, equation1_quadruple
from repro.crypto.polynomial import OrderPreservingPolynomial
from repro.crypto.prg import SeededPRG, derive_seed
from repro.crypto.primes import find_eta_for_delta, is_prime, modinv, next_prime
from repro.crypto.shamir import DEFAULT_FIELD_PRIME, ShamirSharing

__all__ = [
    "AdditiveSharing",
    "CyclicGroup",
    "DEFAULT_FIELD_PRIME",
    "EnumeratedDomainMapper",
    "HashedDomainMapper",
    "OrderPreservingPolynomial",
    "Permutation",
    "SeededPRG",
    "ShamirSharing",
    "derive_seed",
    "equation1_quadruple",
    "find_eta_for_delta",
    "find_subgroup_generator",
    "is_prime",
    "modinv",
    "next_prime",
    "reconstruct_bigint",
    "share_bigint",
]
