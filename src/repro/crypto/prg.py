"""Deterministic pseudorandom generation (§3.1, used by PSU in §7).

Two consumers with different requirements share this module:

* Protocol-critical randomness (the PSU masking stream, share randomness)
  must be *reproducible from a seed alone*, because the two Prism servers
  never communicate yet must derive the identical mask vector.  We build a
  SHA-256 counter-mode generator for that: same seed, same stream, on any
  platform and any numpy version.

* Bulk statistical randomness (workload generation) just needs speed; the
  data layer uses ``numpy.random.Generator`` directly for that.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

from repro import kernels
from repro.exceptions import ParameterError

_BLOCK_BYTES = 32  # SHA-256 digest size


def _stream_bytes(key: bytes, start: int, n: int) -> bytes:
    """Bytes ``[start, start + n)`` of the counter-mode stream for ``key``.

    Counter mode makes the stream a pure function of ``(key, start, n)``,
    so sequential consumption (:meth:`SeededPRG.bytes`) and seeking
    (:meth:`SeededPRG.integers_at`) share one implementation — and one
    compiled fast path: when the opt-in kernel tier is active the block
    hashing runs in C (:func:`repro.kernels.prg_fill`), bit-identical to
    the hashlib reference below.
    """
    if n <= 0:
        return b""
    filled = kernels.prg_fill(key, start, n)
    if filled is not None:
        return filled
    # Reference path: one tight comprehension with pre-bound locals —
    # this emits the PSU mask streams (80 KB per query at b = 10k), so
    # per-block Python overhead is measurable.
    first = start // _BLOCK_BYTES
    last = -(-(start + n) // _BLOCK_BYTES)  # ceil
    sha, pack = hashlib.sha256, struct.pack
    blob = b"".join(
        sha(key + pack("<Q", counter)).digest()
        for counter in range(first, last)
    )
    offset = start - first * _BLOCK_BYTES
    return blob[offset:offset + n]


class SeededPRG:
    """SHA-256 counter-mode pseudorandom generator.

    The stream is ``SHA256(seed || 0) || SHA256(seed || 1) || ...`` consumed
    lazily.  Determinism across processes is the point: Prism's PSU requires
    both non-communicating servers to multiply cell ``i`` by the *same*
    pseudorandom value ``rand[i]`` (Eq. 18), which they can only do by
    deriving it from a shared seed.

    Args:
        seed: any integer; namespaced with ``label`` so one master seed can
            safely derive many independent streams.
        label: domain-separation string.
    """

    def __init__(self, seed: int, label: str = ""):
        self._key = hashlib.sha256(
            label.encode("utf-8") + b"|" + str(int(seed)).encode("ascii")
        ).digest()
        self._pos = 0  # absolute byte position in the stream

    @property
    def key_bytes(self) -> bytes:
        """The 32-byte stream key (the fused compiled PSU sweep seeds its
        in-kernel mask generator with this, seeking like ``integers_at``)."""
        return self._key

    def bytes(self, n: int) -> bytes:
        """Next ``n`` bytes of the stream."""
        if n < 0:
            raise ParameterError("cannot draw a negative number of bytes")
        out = _stream_bytes(self._key, self._pos, n)
        self._pos += n
        return out

    def integers(self, n: int, low: int, high: int) -> np.ndarray:
        """``n`` integers uniform in ``[low, high)`` as an int64 array.

        Uses 8 bytes of stream per draw with rejection-free modular
        reduction; the modulus bias is below ``2**-40`` for every range this
        library uses (ranges are < 2**24), which is irrelevant for masking.

        Raises:
            ParameterError: if the range is empty.
        """
        if high <= low:
            raise ParameterError(f"empty range [{low}, {high})")
        span = high - low
        raw = np.frombuffer(self.bytes(8 * n), dtype="<u8")
        return (raw % np.uint64(span)).astype(np.int64) + low

    def integers_at(self, offset: int, n: int, low: int,
                    high: int) -> np.ndarray:
        """Draws ``offset .. offset+n`` of a *fresh* generator's
        :meth:`integers` stream, without consuming this instance's state.

        Counter mode makes the stream seekable: the sharded PSU kernel
        uses this so each χ shard's worker derives exactly its span of
        the Eq. 18 mask vector — bit-identical to slicing the full
        stream, with no serial full-length generation anywhere.
        """
        if high <= low:
            raise ParameterError(f"empty range [{low}, {high})")
        if offset < 0 or n < 0:
            raise ParameterError(
                f"stream window [{offset}, {offset + n}) must be non-negative"
            )
        raw = np.frombuffer(_stream_bytes(self._key, 8 * offset, 8 * n),
                            dtype="<u8")
        span = high - low
        return (raw % np.uint64(span)).astype(np.int64) + low

    def integer(self, low: int, high: int) -> int:
        """One integer uniform in ``[low, high)`` (arbitrary precision).

        Unlike :meth:`integers` this path supports ranges wider than 64
        bits, which the extrema protocol needs for its random blinding
        terms ``r_i`` (§6.3).
        """
        if high <= low:
            raise ParameterError(f"empty range [{low}, {high})")
        span = high - low
        nbytes = (span.bit_length() + 7) // 8 + 8  # +8 to keep bias negligible
        value = int.from_bytes(self.bytes(nbytes), "big")
        return low + (value % span)

    def shuffle_indices(self, n: int) -> np.ndarray:
        """A pseudorandom permutation of ``range(n)`` (Fisher–Yates).

        Deterministic given the seed, used to derive the permutation
        functions ``PF``, ``PF_s*`` and ``PF_db*`` of §4.
        """
        indices = np.arange(n, dtype=np.int64)
        if n <= 1:
            return indices
        draws = self.integers(n - 1, 0, 2**63 - 1)
        for i in range(n - 1, 0, -1):
            j = int(draws[n - 1 - i] % (i + 1))
            indices[i], indices[j] = indices[j], indices[i]
        return indices


def derive_seed(master_seed: int, label: str) -> int:
    """Derive an independent 63-bit sub-seed from a master seed and label."""
    digest = hashlib.sha256(
        str(int(master_seed)).encode("ascii") + b"/" + label.encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)
