"""Number-theoretic utilities: primality testing and prime search.

Prism's moduli have structure: the additive group uses a prime ``delta``,
the cyclic multiplicative group lives modulo a prime ``eta`` with
``delta | eta - 1`` (so a subgroup of order ``delta`` exists), and the
servers are told only ``eta' = alpha * eta``.  This module provides the
searches needed to instantiate those parameters for arbitrary sizes.

All functions operate on Python integers, so arbitrarily large moduli are
supported (the extrema protocols of §6.3 need moduli far beyond 64 bits).
"""

from __future__ import annotations

import random

from repro.exceptions import ParameterError

# Deterministic witness set: correct for all n < 3.3 * 10**24, which covers
# every modulus used by the default parameterisations.  For larger inputs we
# add random witnesses on top.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
)
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)


def _miller_rabin_witness(n: int, a: int) -> bool:
    """Return True if ``a`` witnesses that ``n`` is composite."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_prime(n: int, rounds: int = 16, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test.

    Deterministic for ``n < 3.3e24`` via a fixed witness set; for larger
    ``n`` an additional ``rounds`` random witnesses are used, giving an
    error probability below ``4**-rounds``.

    Args:
        n: candidate integer.
        rounds: extra random rounds for very large ``n``.
        rng: randomness source for the extra rounds (defaults to a fresh
            :class:`random.Random` seeded from ``n`` for reproducibility).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    for a in _DETERMINISTIC_WITNESSES:
        if _miller_rabin_witness(n, a):
            return False
    if n < 3_317_044_064_679_887_385_961_981:
        return True
    rng = rng or random.Random(n & 0xFFFFFFFF)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        if _miller_rabin_witness(n, a):
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = max(n + 1, 2)
    if candidate > 2 and candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 1 if candidate == 2 else 2
    return candidate


def prev_prime(n: int) -> int:
    """Largest prime strictly smaller than ``n``.

    Raises:
        ParameterError: if ``n <= 2`` (no prime exists below it).
    """
    if n <= 2:
        raise ParameterError(f"no prime below {n}")
    candidate = n - 1
    if candidate > 2 and candidate % 2 == 0:
        candidate -= 1
    while candidate >= 2 and not is_prime(candidate):
        candidate -= 1 if candidate <= 3 else 2
    if candidate < 2:
        raise ParameterError(f"no prime below {n}")
    return candidate


def random_prime(bits: int, rng: random.Random) -> int:
    """Random prime with exactly ``bits`` bits (top bit set).

    Used by the Paillier baseline for key generation.
    """
    if bits < 2:
        raise ParameterError("need at least 2 bits for a prime")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate):
            return candidate


def find_eta_for_delta(delta: int, minimum: int = 0) -> int:
    """Find a prime ``eta > minimum`` with ``delta | eta - 1``.

    Group theory (§3.1, §4): the multiplicative group mod a prime ``eta`` is
    cyclic of order ``eta - 1``; a subgroup of prime order ``delta`` exists
    iff ``delta`` divides ``eta - 1``.  We search ``eta = k * delta + 1``.

    Args:
        delta: prime order of the desired subgroup.
        minimum: lower bound for ``eta`` (exclusive).

    Raises:
        ParameterError: if ``delta`` is not prime.
    """
    if not is_prime(delta):
        raise ParameterError(f"delta={delta} must be prime")
    k = max(2, (minimum // delta) + 1)
    while True:
        eta = k * delta + 1
        if eta > minimum and is_prime(eta):
            return eta
        k += 1


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` modulo ``m``.

    Raises:
        ParameterError: if ``gcd(a, m) != 1``.
    """
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ParameterError(f"{a} has no inverse modulo {m}")
    return x % m


def factorize(n: int) -> dict[int, int]:
    """Trial-division factorisation (adequate for the group orders we use).

    Returns a mapping ``prime -> exponent``.
    """
    if n < 1:
        raise ParameterError("factorize expects a positive integer")
    factors: dict[int, int] = {}
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors[d] = factors.get(d, 0) + 1
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors[n] = factors.get(n, 0) + 1
    return factors
