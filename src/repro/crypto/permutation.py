"""Permutation functions (§3.1, §4).

Prism uses permutations in three places:

* ``PF`` — known to servers *and* owners; servers permute the extrema-share
  array before handing it to the announcer, owners invert it to learn the
  identity of the owner holding the maximum (§6.3).
* ``PF_s1`` — known to servers only; applied to the PSI output before
  returning it so owners learn the *cardinality* but not the positions
  (PSI-Count, §6.5).
* The Eq. (1) quadruple ``PF_s1 ⊙ PF_db1 = PF_s2 ⊙ PF_db2 = PF_i`` — split
  knowledge between servers (``PF_s*``) and owners (``PF_db*``) such that
  the composition is a fixed permutation neither side fully controls.

Permutations are stored as index arrays: ``apply`` maps element ``i`` of
the input to position ``perm[i]`` of the output, i.e. ``out[perm[i]] =
in[i]``, so ``compose(q, p)`` is "apply p, then q".
"""

from __future__ import annotations

import numpy as np

from repro.crypto.prg import SeededPRG, derive_seed
from repro.exceptions import ParameterError


class Permutation:
    """A bijection on ``{0, ..., n-1}`` with numpy-vectorised application."""

    def __init__(self, mapping: np.ndarray):
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.ndim != 1:
            raise ParameterError("permutation mapping must be 1-D")
        n = mapping.size
        if n and (np.min(mapping) != 0 or np.max(mapping) != n - 1
                  or np.unique(mapping).size != n):
            raise ParameterError("mapping is not a permutation of range(n)")
        self._mapping = mapping
        self._mapping.setflags(write=False)

    @classmethod
    def identity(cls, n: int) -> "Permutation":
        """The identity permutation on ``n`` elements."""
        return cls(np.arange(n, dtype=np.int64))

    @classmethod
    def random(cls, n: int, seed: int, label: str = "PF") -> "Permutation":
        """Deterministic pseudorandom permutation from a seed + label."""
        prg = SeededPRG(derive_seed(seed, label), label)
        return cls(prg.shuffle_indices(n))

    @property
    def size(self) -> int:
        return int(self._mapping.size)

    @property
    def mapping(self) -> np.ndarray:
        return self._mapping

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Permute a vector: ``out[mapping[i]] = values[i]``."""
        values = np.asarray(values)
        if values.shape[0] != self.size:
            raise ParameterError(
                f"vector of length {values.shape[0]} does not match "
                f"permutation of size {self.size}"
            )
        out = np.empty_like(values)
        out[self._mapping] = values
        return out

    def invert(self, values: np.ndarray) -> np.ndarray:
        """Undo :meth:`apply`: ``out[i] = values[mapping[i]]``."""
        values = np.asarray(values)
        if values.shape[0] != self.size:
            raise ParameterError(
                f"vector of length {values.shape[0]} does not match "
                f"permutation of size {self.size}"
            )
        return values[self._mapping]

    def apply_index(self, index: int) -> int:
        """Where a single position lands under the permutation."""
        return int(self._mapping[index])

    def invert_index(self, index: int) -> int:
        """Which input position maps to ``index`` (the ``RPF`` of §6.3)."""
        return int(np.nonzero(self._mapping == index)[0][0])

    def inverse(self) -> "Permutation":
        """The inverse permutation as a new object."""
        inv = np.empty(self.size, dtype=np.int64)
        inv[self._mapping] = np.arange(self.size, dtype=np.int64)
        return Permutation(inv)

    def compose(self, other: "Permutation") -> "Permutation":
        """``self ⊙ other``: apply ``other`` first, then ``self``."""
        if other.size != self.size:
            raise ParameterError("cannot compose permutations of different sizes")
        return Permutation(self._mapping[other._mapping])

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Permutation)
                and np.array_equal(self._mapping, other._mapping))

    def __hash__(self) -> int:
        return hash(self._mapping.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Permutation(n={self.size})"


def equation1_quadruple(n: int, seed: int) -> dict[str, Permutation]:
    """Generate ``PF_s1, PF_db1, PF_s2, PF_db2, PF_i`` satisfying Eq. (1).

    ``PF_s1 ⊙ PF_db1 = PF_s2 ⊙ PF_db2 = PF_i``.  We draw ``PF_i``,
    ``PF_db1`` and ``PF_db2`` pseudorandomly and solve for the server-side
    halves: ``PF_s = PF_i ⊙ PF_db^{-1}``.

    Returns a dict with keys ``pf_s1, pf_db1, pf_s2, pf_db2, pf_i``.
    """
    pf_i = Permutation.random(n, seed, "PF_i")
    pf_db1 = Permutation.random(n, seed, "PF_db1")
    pf_db2 = Permutation.random(n, seed, "PF_db2")
    pf_s1 = pf_i.compose(pf_db1.inverse())
    pf_s2 = pf_i.compose(pf_db2.inverse())
    return {
        "pf_s1": pf_s1,
        "pf_db1": pf_db1,
        "pf_s2": pf_s2,
        "pf_db2": pf_db2,
        "pf_i": pf_i,
    }
