"""Cyclic multiplicative groups modulo a prime (§3.1).

Prism's PSI construction needs a generator ``g`` of the order-``delta``
subgroup of ``Z_eta^*`` where ``delta | eta - 1``.  Servers exponentiate
``g`` modulo ``eta' = alpha * eta`` and owners reduce the product modulo
``eta``; the modular identity ``(x mod alpha*eta) mod eta == x mod eta``
makes the two views consistent.

Because every exponent the servers ever use is already reduced modulo
``delta`` (the subgroup order), we can precompute the full power table
``g^0 .. g^(delta-1) mod eta'`` once and turn the per-cell exponentiation
into a vectorised table lookup — this is the key to making the Python
reproduction fast enough for the paper's parameter sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.primes import factorize, is_prime
from repro.exceptions import ParameterError


def element_order(x: int, modulus: int, group_order: int) -> int:
    """Multiplicative order of ``x`` modulo a prime ``modulus``.

    Uses the divisors of ``group_order`` (which must be a multiple of the
    true order, e.g. ``modulus - 1``).
    """
    if x % modulus == 0:
        raise ParameterError("0 has no multiplicative order")
    order = group_order
    for p in factorize(group_order):
        while order % p == 0 and pow(x, order // p, modulus) == 1:
            order //= p
    return order


def find_primitive_root(modulus: int) -> int:
    """Smallest primitive root modulo a prime ``modulus``."""
    if not is_prime(modulus):
        raise ParameterError(f"{modulus} is not prime")
    if modulus == 2:
        return 1
    order = modulus - 1
    prime_factors = list(factorize(order))
    for g in range(2, modulus):
        if all(pow(g, order // p, modulus) != 1 for p in prime_factors):
            return g
    raise ParameterError(f"no primitive root modulo {modulus}")  # pragma: no cover


def find_subgroup_generator(eta: int, delta: int) -> int:
    """Generator of the (unique) order-``delta`` subgroup of ``Z_eta^*``.

    Computed as ``G ** ((eta - 1) / delta) mod eta`` for a primitive root
    ``G``; rejects the degenerate identity element.

    Raises:
        ParameterError: unless ``delta`` is a prime dividing ``eta - 1``.
    """
    if not is_prime(delta):
        raise ParameterError(f"delta={delta} must be prime")
    if (eta - 1) % delta != 0:
        raise ParameterError(
            f"delta={delta} must divide eta-1={eta - 1} for a subgroup to exist"
        )
    root = find_primitive_root(eta)
    g = pow(root, (eta - 1) // delta, eta)
    if g == 1:  # pragma: no cover - cannot happen for prime delta > 1
        raise ParameterError("degenerate subgroup generator")
    return g


def subgroup_elements(g: int, delta: int, modulus: int) -> list[int]:
    """All elements ``g^0 .. g^(delta-1) mod modulus`` of the subgroup."""
    elements = []
    x = 1
    for _ in range(delta):
        elements.append(x)
        x = (x * g) % modulus
    return elements


class CyclicGroup:
    """Order-``delta`` cyclic subgroup with a server-side power table.

    The table is computed modulo ``eta_prime`` (the only modulus servers
    know); owner-side reductions modulo ``eta`` remain consistent because
    ``eta | eta_prime``.

    Attributes:
        delta: prime order of the subgroup (also the additive-share modulus).
        eta: prime modulus of the true group (owner knowledge).
        eta_prime: ``alpha * eta`` (server knowledge).
        g: subgroup generator.
    """

    def __init__(self, delta: int, eta: int, alpha: int = 13, g: int | None = None):
        if alpha <= 1:
            raise ParameterError("alpha must exceed 1 so eta' != eta")
        if (eta - 1) % delta != 0:
            raise ParameterError(f"delta={delta} must divide eta-1={eta - 1}")
        self.delta = delta
        self.eta = eta
        self.alpha = alpha
        self.eta_prime = alpha * eta
        self.g = g if g is not None else find_subgroup_generator(eta, delta)
        if pow(self.g, delta, eta) != 1:
            raise ParameterError("g does not generate an order-delta subgroup")
        if self.eta_prime >= 2**62:
            raise ParameterError(
                "eta' too large for the int64 power-table fast path; "
                "choose smaller eta/alpha"
            )
        self._power_table = self._build_power_table()

    def _build_power_table(self) -> np.ndarray:
        table = np.empty(self.delta, dtype=np.int64)
        x = 1
        for i in range(self.delta):
            table[i] = x
            x = (x * self.g) % self.eta_prime
        return table

    @property
    def power_table(self) -> np.ndarray:
        """Read-only view of ``g^k mod eta'`` for ``k in [0, delta)``."""
        view = self._power_table.view()
        view.setflags(write=False)
        return view

    def pow(self, exponent: int) -> int:
        """``g ** exponent mod eta'`` (exponent reduced mod delta)."""
        return int(self._power_table[exponent % self.delta])

    def pow_vector(self, exponents: np.ndarray) -> np.ndarray:
        """Vectorised ``g ** e mod eta'`` for an array of exponents.

        This is the inner loop of the server-side PSI kernel (Eq. 3).
        """
        reduced = np.mod(exponents, self.delta)
        return self._power_table[reduced]

    def reduce_to_eta(self, values: np.ndarray | int):
        """Owner-side reduction ``x mod eta`` (valid since eta | eta')."""
        if isinstance(values, np.ndarray):
            return np.mod(values, self.eta)
        return values % self.eta

    def elements(self) -> list[int]:
        """Subgroup elements modulo ``eta`` (for analysis/tests)."""
        return subgroup_elements(self.g % self.eta, self.delta, self.eta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CyclicGroup(delta={self.delta}, eta={self.eta}, "
            f"alpha={self.alpha}, g={self.g})"
        )
