"""Order-preserving polynomial ``F(x)`` for the extrema protocols (§4, §6.3).

The initiator selects ``F(x) = a_{m+1} x^{m+1} + ... + a_1 x + a_0`` with
every ``a_i > 0`` and degree strictly greater than the number of owners
``m``.  Two properties matter:

* **Order preservation with blinding room**: for positive integers
  ``x < y``, ``F(x) + r < F(y)`` holds for any ``0 <= r < F(x+1) - F(x)``;
  owners blind their maxima as ``v = F(M) + r`` with ``r < M**m <=
  F(M+1) - F(M)`` and the announcer can still rank them correctly.
* **Secrecy**: the degree exceeding ``m`` means the ``m`` values the
  announcer sees cannot determine the coefficients (the same argument as
  Shamir's threshold).

The owner inverts a blinded value with :meth:`OrderPreservingPolynomial
.invert_blinded` — a binary search for ``z`` with ``F(z) <= v < F(z+1)``
(the footnote-4 optimisation of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError


class OrderPreservingPolynomial:
    """Polynomial with positive coefficients, evaluated over the integers.

    Args:
        coefficients: ``[a_0, a_1, ..., a_d]`` with every ``a_i > 0`` and
            ``d >= 2`` (protocol requires ``d > m >= 1``).
    """

    def __init__(self, coefficients: list[int]):
        if len(coefficients) < 3:
            raise ParameterError(
                "F(x) must have degree >= 2 (degree must exceed the owner count)"
            )
        if any(int(c) <= 0 for c in coefficients):
            raise ParameterError("all coefficients of F(x) must be positive")
        self.coefficients = [int(c) for c in coefficients]

    @classmethod
    def for_owner_count(cls, num_owners: int, seed: int = 0,
                        coefficient_bound: int = 1000) -> "OrderPreservingPolynomial":
        """Generate an ``F`` of degree ``num_owners + 1`` from a seed.

        Coefficients are pseudorandom in ``[1, coefficient_bound]`` — small
        coefficients keep the blinded values (and hence the extrema modulus)
        manageable while preserving all protocol properties.
        """
        if num_owners < 1:
            raise ParameterError("need at least one owner")
        rng = np.random.default_rng(seed)
        coeffs = [int(c) for c in
                  rng.integers(1, coefficient_bound + 1, size=num_owners + 2)]
        return cls(coeffs)

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    def __call__(self, x: int) -> int:
        """Evaluate ``F(x)`` exactly (Horner, Python big ints)."""
        acc = 0
        for c in reversed(self.coefficients):
            acc = acc * x + c
        return acc

    def blinding_bound(self, x: int) -> int:
        """Largest safe blinding range at ``x``: ``F(x+1) - F(x)``.

        Any ``r`` in ``[0, blinding_bound(x))`` keeps ``F(x) + r < F(x+1)``
        and therefore preserves the ordering of distinct inputs.  The paper
        uses ``r < M**m`` which is a (loose) lower bound on this quantity;
        we expose the exact bound and let callers pick the tighter one.
        """
        if x < 0:
            raise ParameterError("F is order-preserving on non-negative x only")
        return self(x + 1) - self(x)

    def invert_blinded(self, value: int, hi_hint: int = 1) -> int:
        """Find ``z >= 0`` with ``F(z) <= value < F(z + 1)`` by binary search.

        Args:
            value: a blinded evaluation ``F(z) + r`` with ``r`` inside the
                blinding bound.
            hi_hint: optional starting upper bound for the exponential
                search phase.

        Raises:
            ParameterError: if ``value < F(0)`` (no valid preimage).
        """
        if value < self(0):
            raise ParameterError(f"{value} is below F(0)={self(0)}")
        hi = max(1, hi_hint)
        while self(hi) <= value:
            hi *= 2
        lo = 0
        while lo < hi - 1:
            mid = (lo + hi) // 2
            if self(mid) <= value:
                lo = mid
            else:
                hi = mid
        return lo

    def max_blinded_value(self, x: int) -> int:
        """Exclusive upper bound on any blinded value for inputs ``<= x``.

        Used by the initiator to size the extrema-sharing modulus.
        """
        return self(x + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OrderPreservingPolynomial(degree={self.degree})"
