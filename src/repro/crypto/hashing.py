"""Domain hashing: mapping attribute values to χ-table cells (§5.1).

Every owner must map a value ``a`` of attribute ``A_c`` to the *same* cell
of a length-``b`` table, where ``b = |Dom(A_c)|``.  Two modes:

* **Enumerated mode** — the domain is an explicit value list (the paper's
  setting: owners know ``Dom(A_c)``); a value's cell is simply its rank.
  Collision-free by construction and invertible, which PSI result decoding
  needs (cell index → value).
* **Hashed mode** — for large or implicit domains we hash values into ``b``
  cells with SHA-256.  Collisions are possible and are surfaced via
  :meth:`HashedDomainMapper.collisions`; the paper sidesteps this by using
  perfect (identity) hashing over integer key domains, and so do the
  benchmarks, but the mode is exercised by tests.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence

from repro.exceptions import DomainError


def _stable_bytes(value) -> bytes:
    """Canonical byte encoding of a hashable attribute value."""
    if isinstance(value, bytes):
        return b"b:" + value
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8")
    if isinstance(value, bool):
        return b"o:" + (b"1" if value else b"0")
    if isinstance(value, int):
        return b"i:" + str(value).encode("ascii")
    raise DomainError(f"unsupported attribute value type: {type(value).__name__}")


def stable_hash(value, seed: int = 0) -> int:
    """Process-independent 64-bit hash of an attribute value."""
    digest = hashlib.sha256(
        str(int(seed)).encode("ascii") + b"#" + _stable_bytes(value)
    ).digest()
    return int.from_bytes(digest[:8], "big")


class EnumeratedDomainMapper:
    """Bijective value ↔ cell mapping for an explicit domain.

    Args:
        values: the domain, in a canonical order shared by all owners (the
            initiator distributes it, §4).
    """

    def __init__(self, values: Sequence):
        self._values = list(values)
        self._index = {v: i for i, v in enumerate(self._values)}
        if len(self._index) != len(self._values):
            raise DomainError("domain contains duplicate values")

    @property
    def size(self) -> int:
        return len(self._values)

    def cell_of(self, value) -> int:
        """Cell index of ``value``; raises if outside the domain."""
        try:
            return self._index[value]
        except KeyError:
            raise DomainError(f"value {value!r} not in the declared domain") from None

    def value_of(self, cell: int):
        """Domain value stored at ``cell``."""
        if not 0 <= cell < len(self._values):
            raise DomainError(f"cell {cell} out of range [0, {len(self._values)})")
        return self._values[cell]

    def cells_of(self, values: Iterable) -> list[int]:
        """Vector version of :meth:`cell_of`."""
        return [self.cell_of(v) for v in values]

    def values(self) -> list:
        """The domain values in cell order."""
        return list(self._values)


class HashedDomainMapper:
    """Many-to-one value → cell mapping via seeded SHA-256.

    Args:
        num_cells: table length ``b``.
        seed: common hash seed dealt by the initiator.
    """

    def __init__(self, num_cells: int, seed: int = 0):
        if num_cells < 1:
            raise DomainError("need at least one cell")
        self.num_cells = num_cells
        self.seed = seed

    @property
    def size(self) -> int:
        return self.num_cells

    def cell_of(self, value) -> int:
        return stable_hash(value, self.seed) % self.num_cells

    def cells_of(self, values: Iterable) -> list[int]:
        return [self.cell_of(v) for v in values]

    def collisions(self, values: Iterable) -> dict[int, list]:
        """Cells to which more than one distinct input value hashes."""
        buckets: dict[int, list] = {}
        for v in dict.fromkeys(values):  # preserve order, drop duplicates
            buckets.setdefault(self.cell_of(v), []).append(v)
        return {cell: vs for cell, vs in buckets.items() if len(vs) > 1}
