"""Shamir secret sharing over a prime field F_p (§3.1).

Each secret ``s`` becomes the constant term of a random degree-``d``
polynomial ``f``; server ``i`` receives ``f(i)``.  Reconstruction is
Lagrange interpolation at 0 from any ``d + 1`` shares.  The scheme is
additively homomorphic, and multiplying two shares of degree-1 polynomials
yields a share of a degree-2 polynomial of the *product* — exactly the
trick Prism's PSI-Sum uses (Eq. 11): three servers each multiply the
owners' degree-1 data shares by the querier's degree-1 indicator shares
locally, and the owner interpolates the degree-2 result, with no
inter-server degree-reduction round.

The default field prime is ``2**31 - 1`` so that share products stay below
``2**62`` and the whole pipeline runs on numpy int64 vectors.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.primes import is_prime, modinv
from repro.exceptions import ShareError

#: Largest Mersenne prime below 2**31; products of two field elements fit int64.
DEFAULT_FIELD_PRIME = 2_147_483_647

#: Largest field prime for which the numpy int64 fast path is sound.
_INT64_SAFE_LIMIT = 3_037_000_499  # floor(sqrt(2**63 - 1))


class ShamirSharing:
    """Shamir secret sharing over ``F_prime`` with numpy vector support.

    Args:
        prime: field modulus; must be prime.  Primes up to
            ``sqrt(2**63)`` use the vectorised int64 path; larger primes
            fall back to exact Python-int arithmetic transparently.
        num_shares: number of evaluation points (servers); points are
            ``1..num_shares``.
        degree: polynomial degree ``d``; any ``d + 1`` shares reconstruct.
        rng: numpy random generator for coefficient randomness.
    """

    def __init__(self, prime: int = DEFAULT_FIELD_PRIME, num_shares: int = 3,
                 degree: int = 1, rng: np.random.Generator | None = None):
        if not is_prime(prime):
            raise ShareError(f"{prime} is not prime")
        if degree < 1:
            raise ShareError("degree must be at least 1")
        if num_shares <= degree:
            raise ShareError(
                f"{num_shares} shares cannot reconstruct a degree-{degree} secret"
            )
        if num_shares >= prime:
            raise ShareError("need prime > num_shares for distinct points")
        self.prime = prime
        self.num_shares = num_shares
        self.degree = degree
        self._rng = rng if rng is not None else np.random.default_rng()
        self._int64_ok = prime <= _INT64_SAFE_LIMIT

    # -- sharing ------------------------------------------------------------

    def share_vector(self, secrets: np.ndarray) -> list[np.ndarray]:
        """Share a secret vector; returns ``num_shares`` int64 arrays.

        Share ``phi`` (1-indexed evaluation point) of cell ``i`` is
        ``f_i(phi)`` where ``f_i`` is a fresh random degree-``d`` polynomial
        with constant term ``secrets[i]``.
        """
        secrets = np.mod(np.asarray(secrets, dtype=np.int64), self.prime)
        coeffs = [
            self._rng.integers(0, self.prime, size=secrets.shape, dtype=np.int64)
            for _ in range(self.degree)
        ]
        shares = []
        for point in range(1, self.num_shares + 1):
            acc = secrets.copy()
            x_power = 1
            for c in coeffs:
                x_power = (x_power * point) % self.prime
                acc = self._mod_add(acc, self._mod_mul_scalar(c, x_power))
            shares.append(acc)
        return shares

    def share_scalar(self, secret: int) -> list[int]:
        """Share one secret value; returns ``num_shares`` Python ints."""
        vec = self.share_vector(np.asarray([secret], dtype=np.int64))
        return [int(v[0]) for v in vec]

    # -- reconstruction -----------------------------------------------------

    def lagrange_weights(self, points: list[int]) -> list[int]:
        """Lagrange coefficients at x=0 for the given evaluation points.

        ``secret = sum_i weights[i] * share_at(points[i]) mod prime``.
        """
        if len(set(points)) != len(points):
            raise ShareError(f"duplicate evaluation points: {points}")
        weights = []
        for i, xi in enumerate(points):
            num, den = 1, 1
            for j, xj in enumerate(points):
                if i == j:
                    continue
                num = (num * xj) % self.prime
                den = (den * (xj - xi)) % self.prime
            weights.append((num * modinv(den, self.prime)) % self.prime)
        return weights

    def reconstruct_vector(self, shares: list[np.ndarray],
                           points: list[int] | None = None,
                           degree: int | None = None) -> np.ndarray:
        """Interpolate secret vectors from share vectors.

        Args:
            shares: one array per evaluation point.
            points: evaluation points matching ``shares`` (default
                ``1..len(shares)``).
            degree: polynomial degree of the shared values (default: the
                scheme degree).  Pass ``2 * degree`` after multiplying two
                share vectors together.

        Raises:
            ShareError: if fewer than ``degree + 1`` shares are supplied.
        """
        degree = self.degree if degree is None else degree
        points = points if points is not None else list(range(1, len(shares) + 1))
        if len(shares) != len(points):
            raise ShareError("shares and points length mismatch")
        if len(shares) < degree + 1:
            raise ShareError(
                f"degree-{degree} reconstruction needs {degree + 1} shares, "
                f"got {len(shares)}"
            )
        weights = self.lagrange_weights(points[: degree + 1])
        acc = np.zeros_like(np.asarray(shares[0], dtype=np.int64))
        for w, s in zip(weights, shares[: degree + 1]):
            acc = self._mod_add(acc, self._mod_mul_scalar(
                np.mod(np.asarray(s, np.int64), self.prime), w))
        return acc

    def reconstruct_scalar(self, shares: list[int],
                           points: list[int] | None = None,
                           degree: int | None = None) -> int:
        """Scalar convenience wrapper over :meth:`reconstruct_vector`."""
        arrays = [np.asarray([s], dtype=np.int64) for s in shares]
        return int(self.reconstruct_vector(arrays, points, degree)[0])

    # -- homomorphisms ------------------------------------------------------

    def add_shares(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Share of ``x + y`` from same-point shares of ``x`` and ``y``."""
        return self._mod_add(np.mod(np.asarray(a, np.int64), self.prime),
                             np.mod(np.asarray(b, np.int64), self.prime))

    def mul_shares(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Share of ``x * y`` (degree doubles; reconstruct with 2d+1 shares)."""
        return self._mod_mul(np.mod(np.asarray(a, np.int64), self.prime),
                             np.mod(np.asarray(b, np.int64), self.prime))

    # -- field arithmetic helpers --------------------------------------------

    def _mod_add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.mod(a + b, self.prime)

    def _mod_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self._int64_ok:
            return np.mod(a * b, self.prime)
        flat_a, flat_b = a.ravel(), b.ravel()
        out = np.fromiter(
            ((int(x) * int(y)) % self.prime for x, y in zip(flat_a, flat_b)),
            dtype=object, count=flat_a.size,
        ).astype(object)
        return np.asarray(
            [int(v) for v in out], dtype=np.int64
        ).reshape(a.shape) if self.prime <= 2**62 else out.reshape(a.shape)

    def _mod_mul_scalar(self, a: np.ndarray, scalar: int) -> np.ndarray:
        if self._int64_ok:
            return np.mod(a * np.int64(scalar), self.prime)
        return np.asarray(
            [(int(v) * scalar) % self.prime for v in a.ravel()], dtype=np.int64
        ).reshape(a.shape)
