"""Additive secret sharing over the group Z_delta (§3.1).

A secret ``s`` is split into ``c`` shares that sum to ``s`` modulo
``delta``; any ``c - 1`` shares are uniformly random and independent of the
secret.  The scheme is additively homomorphic: adding shares pointwise adds
the secrets.

Prism keeps ``delta`` small (a prime slightly above the owner count), which
lets us store whole share *vectors* as numpy ``int64`` arrays and run the
server-side kernels fully vectorised.  For the extrema protocols (§6.3) the
shared values exceed 64 bits, so a Python-int code path is provided as well
(:func:`share_bigint` / :func:`reconstruct_bigint`).
"""

from __future__ import annotations

import numpy as np

from repro.crypto.prg import SeededPRG
from repro.exceptions import ShareError


class AdditiveSharing:
    """Additive secret sharing over ``Z_modulus``.

    Args:
        modulus: group order ``delta`` (prime in Prism, though the scheme
            itself works for any modulus > 1).
        num_shares: number of servers ``c`` (Prism uses 2 for additive data).
        rng: numpy random generator for share randomness; pass a seeded
            generator for reproducible protocol runs.
    """

    def __init__(self, modulus: int, num_shares: int = 2,
                 rng: np.random.Generator | None = None):
        if modulus <= 1:
            raise ShareError(f"modulus must exceed 1, got {modulus}")
        if num_shares < 2:
            raise ShareError("additive sharing needs at least 2 shares")
        self.modulus = modulus
        self.num_shares = num_shares
        self._rng = rng if rng is not None else np.random.default_rng()

    # -- vector path (numpy) ------------------------------------------------

    def share_vector(self, secrets: np.ndarray) -> list[np.ndarray]:
        """Share a vector of secrets; returns ``num_shares`` int64 arrays.

        The first ``c - 1`` shares are uniform in ``[0, modulus)``; the last
        is the modular difference.  Every returned array has the shape of
        ``secrets``.
        """
        secrets = np.asarray(secrets, dtype=np.int64)
        if np.any(secrets < 0) or np.any(secrets >= self.modulus):
            secrets = np.mod(secrets, self.modulus)
        shares = [
            self._rng.integers(0, self.modulus, size=secrets.shape, dtype=np.int64)
            for _ in range(self.num_shares - 1)
        ]
        total = np.zeros_like(secrets)
        for s in shares:
            total = np.mod(total + s, self.modulus)
        shares.append(np.mod(secrets - total, self.modulus))
        return shares

    def reconstruct_vector(self, shares: list[np.ndarray]) -> np.ndarray:
        """Sum share vectors modulo the group order."""
        if len(shares) != self.num_shares:
            raise ShareError(
                f"need exactly {self.num_shares} shares, got {len(shares)}"
            )
        total = np.zeros_like(np.asarray(shares[0], dtype=np.int64))
        for s in shares:
            total = np.mod(total + np.asarray(s, dtype=np.int64), self.modulus)
        return total

    def add_shares(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Homomorphic addition: share of ``x + y`` from shares of x and y."""
        return np.mod(np.asarray(a, np.int64) + np.asarray(b, np.int64), self.modulus)

    def sub_shares(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Homomorphic subtraction (the ``⊖`` of Eq. 3)."""
        return np.mod(np.asarray(a, np.int64) - np.asarray(b, np.int64), self.modulus)

    # -- scalar path --------------------------------------------------------

    def share_scalar(self, secret: int) -> list[int]:
        """Share one small secret; returns ``num_shares`` Python ints."""
        vec = self.share_vector(np.asarray([secret], dtype=np.int64))
        return [int(v[0]) for v in vec]

    def reconstruct_scalar(self, shares: list[int]) -> int:
        """Reconstruct one small secret from scalar shares."""
        if len(shares) != self.num_shares:
            raise ShareError(
                f"need exactly {self.num_shares} shares, got {len(shares)}"
            )
        return sum(int(s) for s in shares) % self.modulus


def share_bigint(secret: int, modulus: int, num_shares: int,
                 prg: SeededPRG) -> list[int]:
    """Additively share an arbitrary-precision secret over ``Z_modulus``.

    Used by the extrema protocols where ``F(M) + r`` exceeds 64 bits.

    Args:
        secret: value to share (reduced modulo ``modulus``).
        modulus: group order; must exceed 1.
        num_shares: number of shares (>= 2).
        prg: deterministic randomness source.
    """
    if modulus <= 1:
        raise ShareError(f"modulus must exceed 1, got {modulus}")
    if num_shares < 2:
        raise ShareError("additive sharing needs at least 2 shares")
    shares = [prg.integer(0, modulus) for _ in range(num_shares - 1)]
    last = (secret - sum(shares)) % modulus
    shares.append(last)
    return shares


def reconstruct_bigint(shares: list[int], modulus: int) -> int:
    """Reconstruct an arbitrary-precision additively shared secret."""
    if not shares:
        raise ShareError("no shares supplied")
    return sum(shares) % modulus
