"""Reproduction of *Prism: Private Verifiable Set Computation over
Multi-Owner Outsourced Databases* (Li et al., SIGMOD 2021).

Public API highlights:

* :class:`repro.PrismClient` — the session-style query API: every query
  form (SQL, fluent :class:`repro.Q` builders, dicts, legacy specs)
  lowers to one :class:`repro.LogicalPlan` IR and runs through one
  executor (:mod:`repro.api`).
* :class:`repro.PrismSystem` — a full in-process deployment (owners,
  servers, announcer) with one method per supported query.
* :class:`repro.Relation` / :class:`repro.Domain` — the data substrate.
* :func:`repro.run_query` — the SQL dialect of Table 4 (with
  multi-aggregate projections and the ``EXPLAIN`` prefix).
* :mod:`repro.baselines` — from-scratch comparison systems (Paillier,
  Freedman PSI, Bloom-filter PSI, plaintext).
* :mod:`repro.bench` — the experiment harness regenerating every figure
  and table of the paper's evaluation (§8).
"""

from repro.api import (
    Executor,
    LogicalPlan,
    Planner,
    PrismClient,
    Q,
    parse_sql,
)
from repro.core.batch import BatchQuery, QueryBatch, run_batch
from repro.core.query import parse_query, run_query
from repro.core.sharding import ShardPlan
from repro.core.results import (
    AggregateResult,
    CountResult,
    ExtremaResult,
    MedianResult,
    SetResult,
)
from repro.core.system import PrismSystem
from repro.data.csv_io import read_relation_csv, write_relation_csv
from repro.data.domain import Domain, HashedDomain, ProductDomain
from repro.data.relation import Relation
from repro.exceptions import (
    AdmissionError,
    AuthError,
    DomainError,
    GatewayDisconnected,
    ParameterError,
    PrismError,
    ProtocolError,
    QueryError,
    ShareError,
    VerificationError,
)
from repro.network.rpc import Deployment
from repro.serving import Gateway, GatewayClient

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "AggregateResult",
    "AuthError",
    "BatchQuery",
    "CountResult",
    "Deployment",
    "Domain",
    "DomainError",
    "Executor",
    "Gateway",
    "GatewayClient",
    "GatewayDisconnected",
    "HashedDomain",
    "ExtremaResult",
    "LogicalPlan",
    "MedianResult",
    "ParameterError",
    "Planner",
    "PrismClient",
    "PrismError",
    "PrismSystem",
    "ProductDomain",
    "ProtocolError",
    "Q",
    "QueryBatch",
    "QueryError",
    "Relation",
    "SetResult",
    "ShardPlan",
    "ShareError",
    "VerificationError",
    "parse_query",
    "parse_sql",
    "read_relation_csv",
    "run_batch",
    "run_query",
    "write_relation_csv",
    "__version__",
]
