"""The logical query-plan IR — one description for every Prism query.

Every way of expressing a query (the Table-4 SQL dialect, the fluent
builder :class:`~repro.api.builder.Q`, the legacy ``PrismSystem``
methods, keyword dicts, :class:`~repro.core.batch.BatchQuery` specs)
lowers to a single frozen :class:`LogicalPlan`, and a single
:class:`~repro.api.executor.Executor` runs every plan.  The IR is purely
*logical*: it records what is asked (set operation, attribute,
aggregate list, flags), never how it executes — routing is the
executor's dispatch table.

A plan decomposes into execution *units* (:meth:`LogicalPlan.units`):
``SELECT disease, SUM(cost), AVG(age) ...`` is one plan with two units
(a fused-sweep sum and a fused-sweep average over one shared indicator
round), while ``MAX``/``MIN``/``MEDIAN`` aggregates each form an
announcer-interactive unit of their own.
"""

from __future__ import annotations

import dataclasses

from repro.exceptions import QueryError

#: Aggregate functions of the Table-4 surface.
AGG_FUNCTIONS = ("COUNT", "SUM", "AVG", "MAX", "MIN", "MEDIAN")

@dataclasses.dataclass(frozen=True)
class PlanUnit:
    """One executable component of a plan.

    Attributes:
        kind: an executor dispatch key (``psi``, ``psu_count``,
            ``psi_sum``, ``psi_max``, ``bucketized_psi``, ...).
        agg_attributes: the aggregation attributes this unit computes
            (empty for set/count units).
    """

    kind: str
    agg_attributes: tuple = ()


@dataclasses.dataclass(frozen=True)
class LogicalPlan:
    """A fully-validated logical Prism query (supersedes ``QueryPlan``).

    Attributes:
        set_op: ``"psi"`` or ``"psu"``.
        attribute: the set-operation attribute ``A_c`` (or tuple for
            multi-attribute PSI, §6.6).
        aggregates: ``(function, attribute)`` pairs, in request order.
            ``COUNT`` is normalised to ``("COUNT", None)`` — it always
            counts the set attribute.  Empty for plain set queries.
        verify: request result verification.  Carried for *every* kind
            that supports it (PSI/PSU, counts, SUM/AVG, MAX/MIN);
            kinds with no verification stream (PSU-Count, MEDIAN)
            reject the flag at validation instead of dropping it.
        reveal_holders: run the §6.3 identity round for MAX/MIN.
        bucketized: route a plain PSI through the §6.6 bucket tree
            (requires ``PrismSystem.outsource_bucketized``).
        owner_ids: restrict the query to a subset of owners.
        querier: the owner that finalises the result.
        tables: branch table names from the SQL form — informational
            only (owner order is positional) and excluded from plan
            equality, so the SQL and builder forms of one query compare
            equal.
    """

    set_op: str
    attribute: str | tuple
    aggregates: tuple = ()
    verify: bool = False
    reveal_holders: bool = True
    bucketized: bool = False
    owner_ids: tuple | None = None
    querier: int = 0
    tables: tuple = dataclasses.field(default=(), compare=False)

    def __post_init__(self):
        if self.set_op not in ("psi", "psu"):
            raise QueryError(
                f"unknown set operation {self.set_op!r}; expected 'psi' "
                f"or 'psu'"
            )
        if isinstance(self.attribute, list):
            object.__setattr__(self, "attribute", tuple(self.attribute))
        object.__setattr__(self, "aggregates",
                           self._normalize_aggregates(self.aggregates))
        if self.owner_ids is not None:
            object.__setattr__(self, "owner_ids", tuple(self.owner_ids))
        object.__setattr__(self, "tables", tuple(self.tables))
        self._validate()

    def _normalize_aggregates(self, aggregates) -> tuple:
        if isinstance(aggregates, tuple) and len(aggregates) == 2 and \
                isinstance(aggregates[0], str) and \
                aggregates[0].upper() in AGG_FUNCTIONS:
            aggregates = (aggregates,)  # a single bare (fn, attr) pair
        normalized = []
        for item in aggregates:
            fn, attr = item
            fn = fn.upper()
            if fn not in AGG_FUNCTIONS:
                raise QueryError(
                    f"unsupported aggregate function {fn!r}; expected one "
                    f"of {', '.join(AGG_FUNCTIONS)}"
                )
            if fn == "COUNT":
                if attr is not None and attr != self.attribute:
                    raise QueryError(
                        f"COUNT counts the set attribute; got "
                        f"COUNT({attr}) over {self.attribute!r}"
                    )
                attr = None
            elif attr is None:
                raise QueryError(f"{fn} needs an aggregation attribute")
            if (fn, attr) not in normalized:
                normalized.append((fn, attr))
        return tuple(normalized)

    def _validate(self) -> None:
        # NOTE: extrema/median over PSU is *not* rejected here — the IR
        # stays purely descriptive and the executor's dispatch table has
        # no route for ``psu_max``-style units, so the error surfaces at
        # execution (matching the legacy QueryPlan.execute contract).
        for fn, attr in self.aggregates:
            if fn == "MEDIAN" and self.verify:
                raise QueryError("MEDIAN has no verification stream")
            if fn == "COUNT" and self.set_op == "psu" and self.verify:
                raise QueryError("PSU-Count has no verification stream")
        if self.bucketized:
            if self.aggregates:
                raise QueryError("bucketized execution is PSI-only; it "
                                 "cannot carry aggregates")
            if self.set_op != "psi":
                raise QueryError("bucketized execution is PSI-only")
            if self.verify:
                raise QueryError("bucketized PSI has no verification stream")

    # -- decomposition --------------------------------------------------------

    def units(self) -> tuple[PlanUnit, ...]:
        """The plan's execution units, batchable sweeps first.

        SUM aggregates fuse into one multi-attribute unit (Table 12) and
        AVG aggregates into another; COUNT and each MAX/MIN/MEDIAN
        aggregate are units of their own.
        """
        if self.bucketized:
            return (PlanUnit("bucketized_psi"),)
        if not self.aggregates:
            return (PlanUnit(self.set_op),)
        sums: list[str] = []
        avgs: list[str] = []
        counts: list[PlanUnit] = []
        interactive: list[PlanUnit] = []
        for fn, attr in self.aggregates:
            if fn == "COUNT":
                counts.append(PlanUnit(f"{self.set_op}_count"))
            elif fn == "SUM":
                sums.append(attr)
            elif fn == "AVG":
                avgs.append(attr)
            else:
                interactive.append(
                    PlanUnit(f"{self.set_op}_{fn.lower()}", (attr,)))
        units: list[PlanUnit] = []
        if sums:
            units.append(PlanUnit(f"{self.set_op}_sum", tuple(sums)))
        if avgs:
            units.append(PlanUnit(f"{self.set_op}_average", tuple(avgs)))
        units.extend(counts)
        units.extend(interactive)
        return tuple(units)

    @property
    def kinds(self) -> tuple[str, ...]:
        """Dispatch keys of the plan's units, in execution order."""
        return tuple(unit.kind for unit in self.units())

    @property
    def kind(self) -> str:
        """A single label for stats/EXPLAIN (``"multi"`` for mixed plans)."""
        kinds = self.kinds
        return kinds[0] if len(kinds) == 1 else "multi"

    # -- presentation ---------------------------------------------------------

    @property
    def attribute_label(self) -> str:
        return (self.attribute if isinstance(self.attribute, str)
                else "*".join(self.attribute))

    def result_key(self, fn: str, attr: str | None) -> str:
        """Key of one aggregate in a multi-aggregate result dict."""
        return f"{fn}({attr if attr is not None else self.attribute_label})"

    def describe(self) -> str:
        """One-line human-readable plan (the EXPLAIN text)."""
        op = {"psi": "PSI", "psu": "PSU"}[self.set_op]
        if self.bucketized:
            op = f"Bucketized {op}"
        parts = []
        for fn, attr in self.aggregates:
            if fn == "COUNT":
                parts.append("Count")
            else:
                parts.append(f"{fn.title()}({attr})")
        core = op if not parts else f"{op} {', '.join(parts)}"
        if self.owner_ids is not None:
            owners = f"{len(self.owner_ids)} owners"
        elif self.tables:
            owners = f"{len(self.tables)} owners"
        else:
            owners = "all owners"
        suffix = " with verification" if self.verify else ""
        return f"{core} on {self.attribute_label!r} across {owners}{suffix}"
