"""The unified query API: plan IR, fluent builder, planner, executor.

One lowering path and one executor for every way of expressing a Prism
query — see :mod:`repro.api.plan` for the IR, :mod:`repro.api.executor`
for the dispatch table, and :class:`repro.api.client.PrismClient` for
the session-style surface most callers want.
"""

from repro.api.builder import Q
from repro.api.client import PrismClient
from repro.api.executor import Executor
from repro.api.plan import LogicalPlan, PlanUnit
from repro.api.planner import Planner
from repro.api.sql import parse_sql, split_explain

__all__ = [
    "Executor",
    "LogicalPlan",
    "PlanUnit",
    "Planner",
    "PrismClient",
    "Q",
    "parse_sql",
    "split_explain",
]
