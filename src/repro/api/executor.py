"""One executor for every logical plan.

Every :class:`~repro.api.plan.LogicalPlan` — however it was expressed —
runs through a single dispatch table:

* **Batchable units** (``psi``, ``psu``, counts, SUM/AVG) are lowered to
  :class:`~repro.core.batch.BatchQuery` rows and executed through
  :class:`~repro.core.batch.QueryBatch` — *single queries run as a batch
  of one*, so the fused 2-D server kernels and the indicator-share cache
  serve all traffic, not just explicit batches.
* **Interactive units** (MAX/MIN/MEDIAN, bucketized PSI) cannot be
  expressed as data-independent fused sweeps; the same dispatch table
  routes them to their announcer-interactive runners.

``execute_many`` fuses the batchable units of *all* submitted plans into
one :class:`QueryBatch`, so heterogeneous multi-query traffic gets the
full sweep-fusion and row-deduplication treatment.

Result shapes (the canonical API surface):

* no aggregates → :class:`SetResult` (bucketized: ``(SetResult, stats)``)
* one aggregate → its result object (:class:`CountResult`,
  :class:`AggregateResult`, :class:`ExtremaResult`, :class:`MedianResult`)
* several aggregates → an ordered dict keyed ``"SUM(cost)"``-style.
"""

from __future__ import annotations

from repro.api.plan import LogicalPlan, PlanUnit
from repro.api.planner import Planner
from repro.core.batch import KINDS as BATCHABLE_KINDS
from repro.core.batch import BatchQuery, QueryBatch
from repro.core.interactive import (
    BucketizedPsiProgram,
    ExtremaProgram,
    MedianProgram,
)
from repro.exceptions import ProtocolError, QueryError

#: Unit kind → AGG function it computes (inverse of the plan lowering).
_UNIT_FN = {
    "psi_sum": "SUM", "psu_sum": "SUM",
    "psi_average": "AVG", "psu_average": "AVG",
    "psi_count": "COUNT", "psu_count": "COUNT",
    "psi_max": "MAX", "psi_min": "MIN", "psi_median": "MEDIAN",
}

#: Marker for units executed through the fused batch engine.
BATCHED = "batched"


def _extrema_program(kind):
    def factory(system, plan, unit, num_threads, num_shards, options):
        return ExtremaProgram(system, plan.attribute, unit.agg_attributes[0],
                              kind=kind, reveal_holders=plan.reveal_holders,
                              verify=plan.verify, num_threads=num_threads,
                              querier=plan.querier,
                              shard_plan=system.shard_plan_for(num_shards),
                              **options)
    return factory


def _median_program(system, plan, unit, num_threads, num_shards, options):
    return MedianProgram(system, plan.attribute, unit.agg_attributes[0],
                         verify=plan.verify, num_threads=num_threads,
                         querier=plan.querier,
                         shard_plan=system.shard_plan_for(num_shards),
                         **options)


def _bucketized_program(system, plan, unit, num_threads, num_shards, options):
    return BucketizedPsiProgram(system, plan.attribute,
                                system.bucket_tree(plan.attribute),
                                num_threads=num_threads, querier=plan.querier,
                                shard_plan=system.shard_plan_for(num_shards),
                                **options)


#: The single dispatch table: every unit kind, one execution route —
#: the fused batch engine, or an interactive-program factory whose
#: round loop the executor drives.
DISPATCH = {kind: BATCHED for kind in BATCHABLE_KINDS}
DISPATCH.update({
    "psi_max": _extrema_program("max"),
    "psi_min": _extrema_program("min"),
    "psi_median": _median_program,
    "bucketized_psi": _bucketized_program,
})


class Executor:
    """Runs logical plans against one :class:`PrismSystem`.

    Args:
        system: the deployment to execute against.
        planner: the lowering front door (default: a fresh
            :class:`Planner`); injected so clients can share one.
    """

    def __init__(self, system, planner: Planner | None = None):
        self.system = system
        self.planner = planner or Planner()
        #: Routing counters of the most recent run (for session stats).
        self.last_dispatch = {"batched_units": 0, "interactive_units": 0,
                              "fused_rows": 0, "rows_deduplicated": 0}

    # -- public surface -------------------------------------------------------

    def execute(self, query, num_threads: int | None = None,
                num_shards: int | str | None = None, **runner_options):
        """Lower and run one query; returns its canonical-shape result.

        ``num_shards`` overrides the deployment's χ-shard count for this
        call — for the batchable units' fused sweeps *and* for the
        interactive units' per-round sweeps (the PSI round of
        MAX/MIN/MEDIAN, every bucketized level); ``"auto"`` resolves it
        from the χ length and core count.  The executor is
        deployment-agnostic: when the system's servers are
        :class:`~repro.entities.remote.RemoteServer` proxies, the same
        dispatch runs over subprocess or TCP channels unchanged.
        ``runner_options`` are forwarded to interactive programs only
        (e.g. ``common_values=`` for extrema, ``announcer_driven=`` for
        bucketized PSI); a fully-batchable plan rejects them.
        """
        plan = self.planner.lower(query)
        return self._run([plan], num_threads, runner_options,
                         num_shards=num_shards)[0]

    def execute_many(self, queries, num_threads: int | None = None,
                     num_shards: int | str | None = None) -> list:
        """Run many queries; batchable units fuse into one QueryBatch."""
        plans = self.planner.lower_many(queries)
        return self._run(plans, num_threads, {}, num_shards=num_shards)

    def program(self, query, num_threads: int | None = None,
                num_shards: int | str | None = None,
                **runner_options) -> "QueryProgram":
        """Lower one query into a steppable :class:`QueryProgram`.

        The scheduler surface behind :meth:`PrismClient.submit` for
        plans with interactive units: the caller drives
        :meth:`QueryProgram.step` — one batchable-unit batch, then one
        interactive round per step — so long multi-round queries can be
        interleaved with other work instead of monopolising the
        executor.  ``execute``/``execute_many`` remain the one-shot
        drivers over the same machinery.
        """
        plan = self.planner.lower(query)
        return QueryProgram(self, plan, num_threads=num_threads,
                            num_shards=num_shards,
                            runner_options=runner_options)

    def explain(self, query) -> str:
        """The plan's ``describe()``, dispatch routes, and batch-plan stats.

        The batch-plan suffix comes from :meth:`QueryBatch.plan` without
        executing anything: how many kernel rows the batchable units
        request, how many survive fusion, how many the row-dedup removes,
        and how many fused server sweeps will run — so plan-level savings
        are visible before committing to the query.
        """
        plan = self.planner.lower(query)
        routes = ", ".join(
            f"{unit.kind}→"
            f"{'fused batch kernel' if self._route(unit) is BATCHED else 'interactive runner'}"
            for unit in plan.units()
        )
        text = f"{plan.describe()} [{routes}]"
        stats = self.plan_stats([plan])
        if stats is not None:
            # Aggregate plans additionally run Eq. 11 sweeps, whose row
            # count depends on cache state at execution time; the
            # pre-execution number is the indicator-sweep count.
            text += (
                f" [batch plan: {stats['fused_rows']} fused rows for "
                f"{stats['rows_requested']} requested, "
                f"{stats['rows_deduplicated']} rows_deduplicated, "
                f"{stats['indicator_sweeps_planned']} fused indicator sweeps]"
            )
        return text

    def plan_stats(self, plans) -> dict | None:
        """:meth:`QueryBatch.plan` summary for the batchable units of
        ``plans`` (lowered), or ``None`` when nothing is batchable.
        Purely a planning pass — no servers are touched."""
        specs = [
            self._to_batch_query(plan, unit)
            for plan in plans
            for unit in plan.units()
            if self._route(unit) is BATCHED
        ]
        if not specs:
            return None
        return QueryBatch(self.system, specs).plan()

    @staticmethod
    def _route(unit: PlanUnit):
        route = DISPATCH.get(unit.kind)
        if route is None:
            hint = (" (MAX/MIN/MEDIAN are only supported over PSI)"
                    if unit.kind.startswith("psu_") else "")
            raise QueryError(f"no dispatch route for {unit.kind!r}{hint}")
        return route

    @classmethod
    def _unit_routes(cls, plan: LogicalPlan) -> list[tuple[PlanUnit, object]]:
        """``(unit, route)`` pairs with the shared per-plan validation.

        The one place unit routing and its preconditions live: both the
        one-shot ``_run`` path and the steppable :class:`QueryProgram`
        consume this, so they can never disagree on what a plan's units
        need.
        """
        entries = []
        for unit in plan.units():
            route = cls._route(unit)
            if route is not BATCHED and plan.owner_ids is not None:
                raise QueryError(
                    f"{unit.kind} does not support owner subsets")
            entries.append((unit, route))
        return entries

    # -- execution ------------------------------------------------------------

    def _run(self, plans: list[LogicalPlan], num_threads, runner_options,
             num_shards=None):
        batch_specs: list[BatchQuery] = []
        layouts: list[list[tuple[PlanUnit, int | None]]] = []
        interactive_total = 0
        for plan in plans:
            entries: list[tuple[PlanUnit, int | None]] = []
            for unit, route in self._unit_routes(plan):
                if route is BATCHED:
                    batch_specs.append(self._to_batch_query(plan, unit))
                    entries.append((unit, len(batch_specs) - 1))
                else:
                    interactive_total += 1
                    entries.append((unit, None))
            layouts.append(entries)
        if runner_options and interactive_total == 0:
            raise QueryError(
                f"unsupported options {sorted(runner_options)} — the plan "
                f"has no interactive units to forward them to"
            )
        batch_results: list = []
        fusion = {"fused_rows": 0, "rows_deduplicated": 0}
        if batch_specs:
            batch = QueryBatch(self.system, batch_specs,
                               num_threads=num_threads,
                               num_shards=num_shards)
            batch_results = batch.execute()
            plan_stats = batch.stats.get("plan", {})
            fusion = {
                "fused_rows": plan_stats.get("fused_rows", 0),
                "rows_deduplicated": plan_stats.get("rows_deduplicated", 0),
            }
        self.last_dispatch = {"batched_units": len(batch_specs),
                              "interactive_units": interactive_total,
                              **fusion}
        results = []
        for plan, entries in zip(plans, layouts):
            unit_results = []
            for unit, batch_index in entries:
                if batch_index is not None:
                    unit_results.append(batch_results[batch_index])
                else:
                    # The executor owns the round loop: the interactive
                    # kernels are state machines, not self-driving
                    # functions (the client scheduler interleaves these
                    # same rounds with fused batch ticks).
                    program = DISPATCH[unit.kind](
                        self.system, plan, unit, num_threads, num_shards,
                        runner_options)
                    while not program.done:
                        program.step()
                    unit_results.append(program.result())
            results.append(self._shape(plan, entries, unit_results))
        return results

    @staticmethod
    def _to_batch_query(plan: LogicalPlan, unit: PlanUnit) -> BatchQuery:
        return BatchQuery(kind=unit.kind, attribute=plan.attribute,
                          agg_attributes=unit.agg_attributes,
                          verify=plan.verify, owner_ids=plan.owner_ids,
                          querier=plan.querier)

    # -- result shaping -------------------------------------------------------

    def _shape(self, plan: LogicalPlan, entries, unit_results):
        if not plan.aggregates:
            return unit_results[0]
        by_aggregate: dict[tuple, object] = {}
        for (unit, _), result in zip(entries, unit_results):
            fn = _UNIT_FN[unit.kind]
            if fn == "COUNT":
                by_aggregate[("COUNT", None)] = result
            elif fn in ("SUM", "AVG"):
                for attr in unit.agg_attributes:
                    by_aggregate[(fn, attr)] = result[attr]
            else:
                by_aggregate[(fn, unit.agg_attributes[0])] = result
        if len(plan.aggregates) == 1:
            return by_aggregate[plan.aggregates[0]]
        return {plan.result_key(fn, attr): by_aggregate[(fn, attr)]
                for fn, attr in plan.aggregates}


class QueryProgram:
    """One lowered plan as a steppable execution.

    The plan's batchable units execute together (as one
    :class:`QueryBatch`) in the first step; each subsequent step
    advances exactly one round of one interactive unit.  The round
    state lives on the plan's
    :class:`~repro.core.interactive.InteractiveProgram` objects, so a
    driver — the client scheduler — can interleave the rounds of many
    in-flight programs with fused batch ticks.

    Drivers call :meth:`step` until :attr:`done`, then :meth:`result`
    for the plan's canonical-shape result.  Validation (owner subsets,
    stray runner options, unknown routes) happens at construction, so a
    malformed submission fails before any server is touched.
    """

    def __init__(self, executor: Executor, plan: LogicalPlan,
                 num_threads: int | None = None,
                 num_shards: int | str | None = None,
                 runner_options: dict | None = None):
        self.executor = executor
        self.plan = plan
        self.num_threads = num_threads
        self.num_shards = num_shards
        options = dict(runner_options or {})
        self._entries: list[tuple[PlanUnit, int | None]] = []
        self._batch_specs: list[BatchQuery] = []
        self._batch_results: list | None = None
        self._programs = []
        for unit, route in executor._unit_routes(plan):
            if route is BATCHED:
                self._batch_specs.append(executor._to_batch_query(plan, unit))
                self._entries.append((unit, len(self._batch_specs) - 1))
            else:
                self._programs.append(route(
                    executor.system, plan, unit, num_threads, num_shards,
                    options))
                self._entries.append((unit, None))
        if options and not self._programs:
            raise QueryError(
                f"unsupported options {sorted(options)} — the plan has no "
                f"interactive units to forward them to"
            )

    @property
    def batched_units(self) -> int:
        return len(self._batch_specs)

    @property
    def interactive_units(self) -> int:
        return len(self._programs)

    @property
    def rounds_completed(self) -> int:
        """Interactive rounds executed so far, across all units."""
        return sum(program.rounds_completed for program in self._programs)

    @property
    def done(self) -> bool:
        batch_done = self._batch_results is not None or not self._batch_specs
        return batch_done and all(p.done for p in self._programs)

    def step(self) -> None:
        """Advance one quantum: the fused batch, or one interactive round."""
        if self._batch_specs and self._batch_results is None:
            self._batch_results = QueryBatch(
                self.executor.system, self._batch_specs,
                num_threads=self.num_threads,
                num_shards=self.num_shards).execute()
            return
        for program in self._programs:
            if not program.done:
                program.step()
                return
        raise ProtocolError("query program already finished")

    def result(self):
        """The plan's canonical-shape result (only once :attr:`done`)."""
        if not self.done:
            raise ProtocolError("query program still has rounds to run")
        unit_results = []
        interactive = iter(self._programs)
        for unit, batch_index in self._entries:
            if batch_index is not None:
                unit_results.append(self._batch_results[batch_index])
            else:
                unit_results.append(next(interactive).result())
        return self.executor._shape(self.plan, self._entries, unit_results)
