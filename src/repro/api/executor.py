"""One executor for every logical plan.

Every :class:`~repro.api.plan.LogicalPlan` — however it was expressed —
runs through a single dispatch table:

* **Batchable units** (``psi``, ``psu``, counts, SUM/AVG) are lowered to
  :class:`~repro.core.batch.BatchQuery` rows and executed through
  :class:`~repro.core.batch.QueryBatch` — *single queries run as a batch
  of one*, so the fused 2-D server kernels and the indicator-share cache
  serve all traffic, not just explicit batches.
* **Interactive units** (MAX/MIN/MEDIAN, bucketized PSI) cannot be
  expressed as data-independent fused sweeps; the same dispatch table
  routes them to their announcer-interactive runners.

``execute_many`` fuses the batchable units of *all* submitted plans into
one :class:`QueryBatch`, so heterogeneous multi-query traffic gets the
full sweep-fusion and row-deduplication treatment.

Result shapes (the canonical API surface):

* no aggregates → :class:`SetResult` (bucketized: ``(SetResult, stats)``)
* one aggregate → its result object (:class:`CountResult`,
  :class:`AggregateResult`, :class:`ExtremaResult`, :class:`MedianResult`)
* several aggregates → an ordered dict keyed ``"SUM(cost)"``-style.
"""

from __future__ import annotations

from repro.api.plan import LogicalPlan, PlanUnit
from repro.api.planner import Planner
from repro.core.batch import KINDS as BATCHABLE_KINDS
from repro.core.batch import BatchQuery, QueryBatch
from repro.core.bucketized import run_bucketized_psi
from repro.core.extrema import run_extrema, run_median
from repro.exceptions import QueryError

#: Unit kind → AGG function it computes (inverse of the plan lowering).
_UNIT_FN = {
    "psi_sum": "SUM", "psu_sum": "SUM",
    "psi_average": "AVG", "psu_average": "AVG",
    "psi_count": "COUNT", "psu_count": "COUNT",
    "psi_max": "MAX", "psi_min": "MIN", "psi_median": "MEDIAN",
}

#: Marker for units executed through the fused batch engine.
BATCHED = "batched"


def _run_extrema_unit(kind):
    def runner(system, plan, unit, num_threads, options):
        return run_extrema(system, plan.attribute, unit.agg_attributes[0],
                           kind=kind, reveal_holders=plan.reveal_holders,
                           verify=plan.verify, num_threads=num_threads,
                           querier=plan.querier, **options)
    return runner


def _run_median_unit(system, plan, unit, num_threads, options):
    return run_median(system, plan.attribute, unit.agg_attributes[0],
                      num_threads=num_threads, querier=plan.querier,
                      **options)


def _run_bucketized_unit(system, plan, unit, num_threads, options):
    return run_bucketized_psi(system, plan.attribute,
                              system.bucket_tree(plan.attribute),
                              num_threads=num_threads,
                              querier=plan.querier, **options)


#: The single dispatch table: every unit kind, one execution route.
DISPATCH = {kind: BATCHED for kind in BATCHABLE_KINDS}
DISPATCH.update({
    "psi_max": _run_extrema_unit("max"),
    "psi_min": _run_extrema_unit("min"),
    "psi_median": _run_median_unit,
    "bucketized_psi": _run_bucketized_unit,
})


class Executor:
    """Runs logical plans against one :class:`PrismSystem`.

    Args:
        system: the deployment to execute against.
        planner: the lowering front door (default: a fresh
            :class:`Planner`); injected so clients can share one.
    """

    def __init__(self, system, planner: Planner | None = None):
        self.system = system
        self.planner = planner or Planner()
        #: Routing counters of the most recent run (for session stats).
        self.last_dispatch = {"batched_units": 0, "interactive_units": 0}

    # -- public surface -------------------------------------------------------

    def execute(self, query, num_threads: int | None = None,
                num_shards: int | str | None = None, **runner_options):
        """Lower and run one query; returns its canonical-shape result.

        ``num_shards`` overrides the deployment's χ-shard count for this
        call (batchable units only; interactive runners are
        announcer-round-bound, not sweep-bound); ``"auto"`` resolves it
        from the χ length and core count.  The executor is
        deployment-agnostic: when the system's servers are
        :class:`~repro.entities.remote.RemoteServer` proxies, the same
        dispatch runs over subprocess or TCP channels unchanged.
        ``runner_options`` are forwarded to interactive runners only
        (e.g. ``common_values=`` for extrema, ``announcer_driven=`` for
        bucketized PSI); a fully-batchable plan rejects them.
        """
        plan = self.planner.lower(query)
        return self._run([plan], num_threads, runner_options,
                         num_shards=num_shards)[0]

    def execute_many(self, queries, num_threads: int | None = None,
                     num_shards: int | str | None = None) -> list:
        """Run many queries; batchable units fuse into one QueryBatch."""
        plans = self.planner.lower_many(queries)
        return self._run(plans, num_threads, {}, num_shards=num_shards)

    def explain(self, query) -> str:
        """The plan's ``describe()``, dispatch routes, and batch-plan stats.

        The batch-plan suffix comes from :meth:`QueryBatch.plan` without
        executing anything: how many kernel rows the batchable units
        request, how many survive fusion, how many the row-dedup removes,
        and how many fused server sweeps will run — so plan-level savings
        are visible before committing to the query.
        """
        plan = self.planner.lower(query)
        routes = ", ".join(
            f"{unit.kind}→"
            f"{'fused batch kernel' if self._route(unit) is BATCHED else 'interactive runner'}"
            for unit in plan.units()
        )
        text = f"{plan.describe()} [{routes}]"
        stats = self.plan_stats([plan])
        if stats is not None:
            # Aggregate plans additionally run Eq. 11 sweeps, whose row
            # count depends on cache state at execution time; the
            # pre-execution number is the indicator-sweep count.
            text += (
                f" [batch plan: {stats['fused_rows']} fused rows for "
                f"{stats['rows_requested']} requested, "
                f"{stats['rows_deduplicated']} rows_deduplicated, "
                f"{stats['indicator_sweeps_planned']} fused indicator sweeps]"
            )
        return text

    def plan_stats(self, plans) -> dict | None:
        """:meth:`QueryBatch.plan` summary for the batchable units of
        ``plans`` (lowered), or ``None`` when nothing is batchable.
        Purely a planning pass — no servers are touched."""
        specs = [
            self._to_batch_query(plan, unit)
            for plan in plans
            for unit in plan.units()
            if self._route(unit) is BATCHED
        ]
        if not specs:
            return None
        return QueryBatch(self.system, specs).plan()

    @staticmethod
    def _route(unit: PlanUnit):
        route = DISPATCH.get(unit.kind)
        if route is None:
            hint = (" (MAX/MIN/MEDIAN are only supported over PSI)"
                    if unit.kind.startswith("psu_") else "")
            raise QueryError(f"no dispatch route for {unit.kind!r}{hint}")
        return route

    # -- execution ------------------------------------------------------------

    def _run(self, plans: list[LogicalPlan], num_threads, runner_options,
             num_shards=None):
        batch_specs: list[BatchQuery] = []
        layouts: list[list[tuple[PlanUnit, int | None]]] = []
        interactive_total = 0
        for plan in plans:
            entries: list[tuple[PlanUnit, int | None]] = []
            for unit in plan.units():
                route = self._route(unit)
                if route is BATCHED:
                    batch_specs.append(self._to_batch_query(plan, unit))
                    entries.append((unit, len(batch_specs) - 1))
                else:
                    if plan.owner_ids is not None:
                        raise QueryError(
                            f"{unit.kind} does not support owner subsets"
                        )
                    interactive_total += 1
                    entries.append((unit, None))
            layouts.append(entries)
        if runner_options and interactive_total == 0:
            raise QueryError(
                f"unsupported options {sorted(runner_options)} — the plan "
                f"has no interactive units to forward them to"
            )
        batch_results: list = []
        if batch_specs:
            batch_results = QueryBatch(
                self.system, batch_specs, num_threads=num_threads,
                num_shards=num_shards).execute()
        self.last_dispatch = {"batched_units": len(batch_specs),
                              "interactive_units": interactive_total}
        results = []
        for plan, entries in zip(plans, layouts):
            unit_results = []
            for unit, batch_index in entries:
                if batch_index is not None:
                    unit_results.append(batch_results[batch_index])
                else:
                    unit_results.append(DISPATCH[unit.kind](
                        self.system, plan, unit, num_threads, runner_options))
            results.append(self._shape(plan, entries, unit_results))
        return results

    @staticmethod
    def _to_batch_query(plan: LogicalPlan, unit: PlanUnit) -> BatchQuery:
        return BatchQuery(kind=unit.kind, attribute=plan.attribute,
                          agg_attributes=unit.agg_attributes,
                          verify=plan.verify, owner_ids=plan.owner_ids,
                          querier=plan.querier)

    # -- result shaping -------------------------------------------------------

    def _shape(self, plan: LogicalPlan, entries, unit_results):
        if not plan.aggregates:
            return unit_results[0]
        by_aggregate: dict[tuple, object] = {}
        for (unit, _), result in zip(entries, unit_results):
            fn = _UNIT_FN[unit.kind]
            if fn == "COUNT":
                by_aggregate[("COUNT", None)] = result
            elif fn in ("SUM", "AVG"):
                for attr in unit.agg_attributes:
                    by_aggregate[(fn, attr)] = result[attr]
            else:
                by_aggregate[(fn, unit.agg_attributes[0])] = result
        if len(plan.aggregates) == 1:
            return by_aggregate[plan.aggregates[0]]
        return {plan.result_key(fn, attr): by_aggregate[(fn, attr)]
                for fn, attr in plan.aggregates}
