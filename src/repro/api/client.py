"""The session-style client — the recommended query API.

:class:`PrismClient` wraps a deployed
:class:`~repro.core.system.PrismSystem` behind the unified plan IR /
executor path and keeps per-session accounting::

    from repro import PrismClient, Q

    client = PrismClient.connect(relations, domain, "disease",
                                 agg_attributes=("cost", "age"))
    client.execute("SELECT disease FROM h1 INTERSECT SELECT disease FROM h2")
    client.execute(Q.psi("disease").sum("cost").avg("age").verify())
    client.execute("EXPLAIN SELECT disease FROM h1 UNION SELECT disease FROM h2")
    client.execute_many([Q.psi("disease"), Q.psu("disease").count()])
    client.stats  # queries by kind, batched vs interactive units, traffic

Every query — SQL, builder, dict, legacy spec — reaches the same
executor, so single queries run through the fused batch kernels and the
indicator-share cache exactly like explicit batches do.
"""

from __future__ import annotations

from repro.api.executor import Executor
from repro.api.planner import Planner
from repro.api.sql import split_explain


class PrismClient:
    """A query session over one Prism deployment.

    Args:
        system: a deployed (outsourced) :class:`PrismSystem`.
        num_threads: default server-side thread count for this session
            (``None``: the system's own default).
    """

    def __init__(self, system, num_threads: int | None = None):
        self.system = system
        self.num_threads = num_threads
        self.planner = Planner()
        self.executor = Executor(system, planner=self.planner)
        self._queries = 0
        self._explains = 0
        self._by_kind: dict[str, int] = {}
        self._batched_units = 0
        self._interactive_units = 0
        self._traffic_bytes = 0
        self._traffic_messages = 0

    @classmethod
    def connect(cls, relations, domain, psi_attribute, agg_attributes=(),
                num_threads: int | None = None, **build_kwargs
                ) -> "PrismClient":
        """Build + outsource a deployment and open a session on it."""
        from repro.core.system import PrismSystem
        system = PrismSystem.build(relations, domain, psi_attribute,
                                   agg_attributes=agg_attributes,
                                   **build_kwargs)
        return cls(system, num_threads=num_threads)

    # -- queries --------------------------------------------------------------

    def execute(self, query, num_threads: int | None = None,
                **runner_options):
        """Run one query of any supported form.

        SQL strings may carry an ``EXPLAIN`` prefix, in which case the
        plan's description is returned and nothing executes.
        """
        if isinstance(query, str):
            explain, text = split_explain(query)
            if explain:
                return self.explain(text)
        plan = self.planner.lower(query)
        with self._accounted([plan]):
            return self.executor.execute(
                plan, num_threads=self._threads(num_threads),
                **runner_options)

    def execute_many(self, queries, num_threads: int | None = None) -> list:
        """Run many queries; batchable units fuse into one server batch."""
        plans = self.planner.lower_many(queries)
        with self._accounted(plans):
            return self.executor.execute_many(
                plans, num_threads=self._threads(num_threads))

    def explain(self, query) -> str:
        """The plan's description + dispatch routes, without executing."""
        if isinstance(query, str):
            _, query = split_explain(query)
        text = self.executor.explain(query)
        self._explains += 1  # failed explains stay uncounted, like queries
        return text

    def describe(self, query) -> str:
        """Just the plan's logical description (no routing detail)."""
        if isinstance(query, str):
            _, query = split_explain(query)
        return self.planner.lower(query).describe()

    # -- session accounting ---------------------------------------------------

    def _threads(self, num_threads: int | None) -> int | None:
        return num_threads if num_threads is not None else self.num_threads

    def _accounted(self, plans):
        return _Accounting(self, plans)

    @property
    def stats(self) -> dict:
        """Per-session counters: queries, unit routing, traffic, cache."""
        cache = getattr(getattr(self.system, "initiator", None),
                        "indicator_cache", None)
        return {
            "queries": self._queries,
            "explains": self._explains,
            "by_kind": dict(self._by_kind),
            "batched_units": self._batched_units,
            "interactive_units": self._interactive_units,
            "traffic": {"messages": self._traffic_messages,
                        "bytes": self._traffic_bytes},
            "cache": dict(cache.stats) if cache is not None else {},
        }


class _Accounting:
    """Context manager folding one executor call into session stats."""

    def __init__(self, client: PrismClient, plans):
        self.client = client
        self.plans = plans

    def __enter__(self):
        stats = self.client.system.transport.stats
        self._bytes = stats.total_bytes
        self._messages = stats.total_messages
        return self

    def __exit__(self, exc_type, *exc_info):
        client = self.client
        stats = client.system.transport.stats
        client._traffic_bytes += stats.total_bytes - self._bytes
        client._traffic_messages += stats.total_messages - self._messages
        if exc_type is None:
            client._queries += len(self.plans)
            for plan in self.plans:
                for unit in plan.units():
                    client._by_kind[unit.kind] = (
                        client._by_kind.get(unit.kind, 0) + 1)
            dispatch = client.executor.last_dispatch
            client._batched_units += dispatch["batched_units"]
            client._interactive_units += dispatch["interactive_units"]
        return False
