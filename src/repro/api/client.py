"""The session-style client — the recommended query API.

:class:`PrismClient` wraps a deployed
:class:`~repro.core.system.PrismSystem` behind the unified plan IR /
executor path and keeps per-session accounting::

    from repro import PrismClient, Q

    client = PrismClient.connect(relations, domain, "disease",
                                 agg_attributes=("cost", "age"))
    client.execute("SELECT disease FROM h1 INTERSECT SELECT disease FROM h2")
    client.execute(Q.psi("disease").sum("cost").avg("age").verify())
    client.execute("EXPLAIN SELECT disease FROM h1 UNION SELECT disease FROM h2")
    client.execute_many([Q.psi("disease"), Q.psu("disease").count()])
    client.stats  # queries by kind, batched vs interactive units, traffic

Every query — SQL, builder, dict, legacy spec — reaches the same
executor, so single queries run through the fused batch kernels and the
indicator-share cache exactly like explicit batches do.

Concurrent submission
---------------------

:meth:`PrismClient.submit` is the serving-engine surface: it returns a
:class:`concurrent.futures.Future` immediately and hands the query to a
background scheduler thread.  The scheduler drains *all* in-flight
submissions per tick and runs them as **one** fused
:class:`~repro.core.batch.QueryBatch`, so concurrent users automatically
share server sweeps and the planner's row-dedup — two dashboards
refreshing the same PSI pay for one Eq. 3 sweep::

    with system.client() as client:
        futures = [client.submit(q) for q in queries]   # any thread(s)
        results = [f.result() for f in futures]

A short coalescing window (``coalesce_window`` seconds) lets genuinely
concurrent submitters land in the same tick; :meth:`PrismClient.hold`
pins the scheduler for deterministic coalescing (tests, bulk loads).  If
a fused tick fails (e.g. one query's verification trips), the scheduler
re-runs that tick's queries individually so the failure lands only on
the offending future.

Interactive queries (MAX/MIN/MEDIAN, bucketized PSI) coexist with the
coalesced batches: a submitted plan with interactive units becomes a
*job* — a steppable :class:`~repro.api.executor.QueryProgram` — and the
scheduler advances it one protocol round per loop iteration, draining
freshly submitted batchable queries between rounds.  A ten-round median
therefore never blocks the drain tick for longer than one round, and a
failing round poisons only its own future.
"""

from __future__ import annotations

import contextlib
import threading
import time
from concurrent.futures import Future

from repro.api.executor import BATCHED, DISPATCH, Executor
from repro.api.planner import Planner
from repro.api.sql import split_explain
from repro.exceptions import QueryError


def _plan_is_interactive(plan) -> bool:
    """Whether any unit needs the round-stepped job lane.

    Unknown dispatch kinds also land here: the job lane surfaces their
    :class:`~repro.exceptions.QueryError` on the owning future alone.
    """
    return any(DISPATCH.get(unit.kind) is not BATCHED
               for unit in plan.units())


class _Submission:
    """One queued :meth:`PrismClient.submit` call."""

    __slots__ = ("query", "num_threads", "num_shards", "future")

    def __init__(self, query, num_threads, num_shards):
        self.query = query
        self.num_threads = num_threads
        self.num_shards = num_shards
        self.future: Future = Future()


class _Job:
    """One in-flight interactive submission, stepped round by round."""

    __slots__ = ("submission", "program")

    def __init__(self, submission: _Submission, program):
        self.submission = submission
        self.program = program


class PrismClient:
    """A query session over one Prism deployment.

    Args:
        system: a deployed (outsourced) :class:`PrismSystem`.
        num_threads: default server-side thread count for this session
            (``None``: the system's own default).
        num_shards: default χ-shard count for this session (``None``:
            the system's own default; ``"auto"``: resolve per call from
            the χ length and core count).
        coalesce_window: seconds the scheduler waits after waking so
            concurrent :meth:`submit` calls land in the same fused tick.
    """

    def __init__(self, system, num_threads: int | None = None,
                 num_shards: int | str | None = None,
                 coalesce_window: float = 0.002):
        self.system = system
        self.num_threads = num_threads
        self.num_shards = num_shards
        self.coalesce_window = coalesce_window
        self.planner = Planner()
        self.executor = Executor(system, planner=self.planner)
        self._queries = 0
        self._explains = 0
        self._by_kind: dict[str, int] = {}
        self._batched_units = 0
        self._interactive_units = 0
        self._fused_rows = 0
        self._rows_deduplicated = 0
        self._traffic_bytes = 0
        self._traffic_messages = 0
        # Scheduler state: one session-wide execution lock (the executor
        # and transport are not reentrant), one condition guarding the
        # submission queue, one lazily started daemon thread.
        self._exec_lock = threading.RLock()
        self._cond = threading.Condition()
        self._pending: list[_Submission] = []
        self._holds = 0
        self._closing = False
        self._scheduler: threading.Thread | None = None
        self._submitted = 0
        self._ticks = 0
        self._max_coalesced = 0
        # Interactive job lane: touched only on the scheduler thread.
        self._jobs: list[_Job] = []
        self._interactive_jobs = 0
        self._interactive_rounds = 0

    @classmethod
    def connect(cls, *args, relations=None, domain=None, psi_attribute=None,
                agg_attributes=(),
                num_threads: int | None = None,
                num_shards: int | str | None = None,
                deployment: str | None = None, **build_kwargs
                ) -> "PrismClient":
        """Build + outsource a deployment and open a session on it.

        Two call shapes::

            PrismClient.connect(relations, domain, psi_attribute, ...)
            PrismClient.connect("tcp://h:p,h:p,h:p",
                                relations, domain, psi_attribute, ...)

        A leading deployment spec (``"local"``, ``"subprocess"``,
        ``"tcp://host:port,host:port,host:port"``, a pooled
        ``"tcp://h:p,h:p/h:p/h:p,h:p,h:p"`` giving each server role a
        ``/``-separated replica pool, or a parsed
        :class:`~repro.network.rpc.Deployment`) declares where the
        server entities run; the identical SQL / builder / batch query
        surface then executes against them — in-process (the default,
        and what historical direct ``PrismSystem`` construction maps
        to), in forked workers, or in standalone ``repro-entity-host``
        processes over real sockets.  ``deployment=`` works as a
        keyword too.
        """
        from repro.core.system import PrismSystem
        from repro.network.rpc import Deployment
        if args and (isinstance(args[0], Deployment)
                     or (isinstance(args[0], str) and (
                         args[0] in ("local", "subprocess")
                         or args[0].startswith("tcp://")))):
            if deployment is not None:
                raise QueryError(
                    "deployment given both positionally and as a keyword")
            deployment, args = args[0], args[1:]
        # The three core arguments work positionally or as keywords
        # (the historical signature named them), and agg_attributes
        # keeps its historical 4th positional slot.
        if len(args) == 4 and agg_attributes == ():
            args, agg_attributes = args[:3], args[3]
        named = (relations, domain, psi_attribute)
        positional = len(args) + sum(1 for v in named if v is not None)
        if positional != 3 or len(args) > 3:
            raise QueryError(
                "connect needs (relations, domain, psi_attribute), "
                "optionally preceded by a deployment spec"
            )
        filled = list(args) + [None] * (3 - len(args))
        for slot, value in enumerate(named):
            if value is not None:
                if slot < len(args):
                    raise QueryError(
                        f"{('relations', 'domain', 'psi_attribute')[slot]} "
                        f"given both positionally and as a keyword")
                filled[slot] = value
        relations, domain, psi_attribute = filled
        if deployment is not None:
            build_kwargs["deployment"] = deployment
        if num_shards is not None:
            build_kwargs.setdefault("num_shards", num_shards)
        system = PrismSystem.build(relations, domain, psi_attribute,
                                   agg_attributes=agg_attributes,
                                   **build_kwargs)
        return cls(system, num_threads=num_threads)

    # -- queries --------------------------------------------------------------

    def execute(self, query, num_threads: int | None = None,
                num_shards: int | None = None, **runner_options):
        """Run one query of any supported form.

        SQL strings may carry an ``EXPLAIN`` prefix, in which case the
        plan's description is returned and nothing executes.
        """
        if isinstance(query, str):
            explain, text = split_explain(query)
            if explain:
                return self.explain(text)
        with self._exec_lock:
            plan = self.planner.lower(query)
            with self._accounted([plan]):
                return self.executor.execute(
                    plan, num_threads=self._threads(num_threads),
                    num_shards=self._shards(num_shards),
                    **runner_options)

    def execute_many(self, queries, num_threads: int | None = None,
                     num_shards: int | None = None) -> list:
        """Run many queries; batchable units fuse into one server batch."""
        with self._exec_lock:
            plans = self.planner.lower_many(queries)
            with self._accounted(plans):
                return self.executor.execute_many(
                    plans, num_threads=self._threads(num_threads),
                    num_shards=self._shards(num_shards))

    def explain(self, query) -> str:
        """The plan's description + dispatch routes, without executing."""
        if isinstance(query, str):
            _, query = split_explain(query)
        text = self.executor.explain(query)
        self._explains += 1  # failed explains stay uncounted, like queries
        return text

    def describe(self, query) -> str:
        """Just the plan's logical description (no routing detail)."""
        if isinstance(query, str):
            _, query = split_explain(query)
        return self.planner.lower(query).describe()

    # -- concurrent submission ------------------------------------------------

    def submit(self, query, num_threads: int | None = None,
               num_shards: int | None = None) -> Future:
        """Queue one query for coalesced execution; returns a future.

        Safe to call from any thread.  All batchable submissions in
        flight at the scheduler's next drain tick execute as a single
        fused batch — concurrent queries share sweeps and row-dedup
        automatically.  Submissions with interactive units (MAX/MIN,
        MEDIAN, bucketized PSI) become round-stepped jobs that advance
        one protocol round per scheduler iteration, so they coexist
        with coalesced batches without ever blocking a drain tick.
        ``EXPLAIN`` SQL resolves immediately (nothing to coalesce).
        """
        if isinstance(query, str):
            explain, text = split_explain(query)
            if explain:
                future: Future = Future()
                try:
                    future.set_result(self.explain(text))
                except Exception as exc:  # lowering errors -> the future
                    future.set_exception(exc)
                return future
        submission = _Submission(query, self._threads(num_threads),
                                 self._shards(num_shards))
        with self._cond:
            if self._closing:
                raise RuntimeError("client is closed; no new submissions")
            self._pending.append(submission)
            self._submitted += 1
            self._ensure_scheduler()
            self._cond.notify_all()
        return submission.future

    @contextlib.contextmanager
    def hold(self):
        """Pin the scheduler: queued submissions drain in one tick on exit.

        Nestable and thread-safe; used for deterministic coalescing::

            with client.hold():
                futures = [client.submit(q) for q in queries]
            # exactly one fused batch runs here
        """
        with self._cond:
            self._holds += 1
        try:
            yield self
        finally:
            with self._cond:
                self._holds -= 1
                self._cond.notify_all()

    def close(self) -> None:
        """Drain outstanding submissions and stop the scheduler thread.

        Idempotent.  Further :meth:`submit` calls raise; ``execute`` /
        ``execute_many`` keep working (they do not use the scheduler).
        """
        with self._cond:
            self._closing = True
            thread = self._scheduler
            self._cond.notify_all()
        if thread is not None:
            thread.join(timeout=60)

    def __enter__(self) -> "PrismClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_scheduler(self) -> None:
        # Called under self._cond.
        if self._scheduler is None or not self._scheduler.is_alive():
            self._scheduler = threading.Thread(
                target=self._scheduler_loop,
                name="prism-client-scheduler", daemon=True)
            self._scheduler.start()

    def _scheduler_loop(self) -> None:
        while True:
            with self._cond:
                while True:
                    drainable = bool(self._pending) and (
                        self._holds == 0 or self._closing)
                    if drainable or self._jobs:
                        break
                    if self._closing and not self._pending:
                        # _jobs is empty here (checked just above) and
                        # only this thread appends to it.
                        return
                    # Every predicate input (submit, hold-exit, close)
                    # notifies, so an idle scheduler sleeps — no polling.
                    self._cond.wait()
                closing = self._closing
            if (drainable and self.coalesce_window and not closing
                    and not self._jobs):
                # Give genuinely concurrent submitters a beat to land in
                # this tick (the whole point of coalescing).  With jobs
                # in flight the loop already has work — no sleeping.
                time.sleep(self.coalesce_window)
            items: list[_Submission] = []
            if drainable:
                with self._cond:
                    if not (self._holds and not self._closing):
                        items, self._pending = self._pending, []
                    # else: a hold() arrived during the window — the
                    # queue is pinned again; held submissions will drain
                    # in one tick, as promised.
            items = [s for s in items
                     if s.future.set_running_or_notify_cancel()]
            if items:
                self._run_tick(items)
            self._step_jobs()
            with self._cond:
                if self._closing and not self._pending and not self._jobs:
                    return

    def _run_tick(self, items: list[_Submission]) -> None:
        """Execute one drain tick.

        Batchable submissions run as fused batches (per option group);
        submissions whose plans carry interactive units become stepped
        jobs on the interactive lane instead, so their multi-round
        execution never blocks the next drain.
        """
        # One drain = one tick, however many option groups (or fallback
        # re-runs) it takes; max_coalesced tracks the largest fused batch.
        self._ticks += 1
        groups: dict[tuple, list[tuple[_Submission, object]]] = {}
        for submission in items:
            try:
                plan = self.planner.lower(submission.query)
            except Exception as exc:
                submission.future.set_exception(exc)
                continue
            if _plan_is_interactive(plan):
                try:
                    with self._exec_lock:
                        program = self.executor.program(
                            plan, num_threads=submission.num_threads,
                            num_shards=submission.num_shards)
                except Exception as exc:
                    submission.future.set_exception(exc)
                    continue
                self._jobs.append(_Job(submission, program))
                self._interactive_jobs += 1
                continue
            key = (submission.num_threads, submission.num_shards)
            groups.setdefault(key, []).append((submission, plan))
        if groups:
            self._max_coalesced = max(
                self._max_coalesced, max(len(m) for m in groups.values()))
        for (num_threads, num_shards), members in groups.items():
            try:
                with self._exec_lock:
                    plans = [plan for _, plan in members]
                    with self._accounted(plans):
                        results = self.executor.execute_many(
                            plans, num_threads=num_threads,
                            num_shards=num_shards)
            except Exception:
                # One bad query must not fail its tick-mates: fall back
                # to individual execution so the exception lands only on
                # the future(s) that earned it.
                self._run_individually([m for m, _ in members],
                                       num_threads, num_shards)
                continue
            for (member, _), result in zip(members, results):
                member.future.set_result(result)

    def _step_jobs(self) -> None:
        """Advance every active interactive job by exactly one quantum.

        Runs on the scheduler thread between drain ticks; each quantum
        (the job's fused batchable units, or one protocol round) holds
        the execution lock only for its own duration, so freshly
        submitted batchable queries drain between rounds.
        """
        if not self._jobs:
            return
        remaining: list[_Job] = []
        for job in self._jobs:
            try:
                with self._exec_lock:
                    # Snapshot inside the lock: a concurrent execute()
                    # holds it while recording its own traffic, so an
                    # outside snapshot would double-count those bytes.
                    stats = self.system.transport.stats
                    bytes_before = stats.total_bytes
                    messages_before = stats.total_messages
                    try:
                        job.program.step()
                    finally:
                        self._interactive_rounds += 1
                        self._traffic_bytes += (stats.total_bytes
                                                - bytes_before)
                        self._traffic_messages += (stats.total_messages
                                                   - messages_before)
            except Exception as exc:
                job.submission.future.set_exception(exc)
                continue
            if job.program.done:
                self._finish_job(job)
            else:
                remaining.append(job)
        self._jobs = remaining

    def _finish_job(self, job: _Job) -> None:
        """Resolve a completed job's future and fold in session stats."""
        program = job.program
        try:
            result = program.result()
        except Exception as exc:
            job.submission.future.set_exception(exc)
            return
        self._queries += 1
        for unit in program.plan.units():
            self._by_kind[unit.kind] = self._by_kind.get(unit.kind, 0) + 1
        self._batched_units += program.batched_units
        self._interactive_units += program.interactive_units
        job.submission.future.set_result(result)

    def _run_individually(self, members, num_threads, num_shards) -> None:
        for member in members:
            try:
                with self._exec_lock:
                    plan = self.planner.lower(member.query)
                    with self._accounted([plan]):
                        result = self.executor.execute(
                            plan, num_threads=num_threads,
                            num_shards=num_shards)
            except Exception as exc:
                member.future.set_exception(exc)
            else:
                member.future.set_result(result)

    # -- session accounting ---------------------------------------------------

    def _threads(self, num_threads: int | None) -> int | None:
        return num_threads if num_threads is not None else self.num_threads

    def _shards(self, num_shards: int | str | None) -> int | str | None:
        return num_shards if num_shards is not None else self.num_shards

    def _accounted(self, plans):
        return _Accounting(self, plans)

    @property
    def stats(self) -> dict:
        """Per-session counters: queries, unit routing, traffic, cache,
        and the coalescing scheduler (submissions, drain ticks, largest
        fused tick)."""
        cache = getattr(getattr(self.system, "initiator", None),
                        "indicator_cache", None)
        return {
            "queries": self._queries,
            "explains": self._explains,
            "by_kind": dict(self._by_kind),
            "batched_units": self._batched_units,
            "interactive_units": self._interactive_units,
            "fusion": {"fused_rows": self._fused_rows,
                       "rows_deduplicated": self._rows_deduplicated},
            "traffic": {"messages": self._traffic_messages,
                        "bytes": self._traffic_bytes},
            "cache": dict(cache.stats) if cache is not None else {},
            "scheduler": {"submitted": self._submitted,
                          "ticks": self._ticks,
                          "max_coalesced": self._max_coalesced,
                          "interactive_jobs": self._interactive_jobs,
                          "interactive_rounds": self._interactive_rounds},
        }


class _Accounting:
    """Context manager folding one executor call into session stats."""

    def __init__(self, client: PrismClient, plans):
        self.client = client
        self.plans = plans

    def __enter__(self):
        stats = self.client.system.transport.stats
        self._bytes = stats.total_bytes
        self._messages = stats.total_messages
        return self

    def __exit__(self, exc_type, *exc_info):
        client = self.client
        stats = client.system.transport.stats
        client._traffic_bytes += stats.total_bytes - self._bytes
        client._traffic_messages += stats.total_messages - self._messages
        if exc_type is None:
            client._queries += len(self.plans)
            for plan in self.plans:
                for unit in plan.units():
                    client._by_kind[unit.kind] = (
                        client._by_kind.get(unit.kind, 0) + 1)
            dispatch = client.executor.last_dispatch
            client._batched_units += dispatch["batched_units"]
            client._interactive_units += dispatch["interactive_units"]
            client._fused_rows += dispatch.get("fused_rows", 0)
            client._rows_deduplicated += dispatch.get("rows_deduplicated", 0)
        return False
