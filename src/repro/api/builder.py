"""The fluent query builder: ``Q.psi("disease").sum("cost").verify()``.

Each method returns a *new* builder (builders are immutable), so partial
queries can be shared and extended safely::

    base = Q.psi("disease").owners([0, 1])
    costs = base.sum("cost")
    both = base.sum("cost").avg("age").verify()

``.plan()`` lowers the builder to the frozen
:class:`~repro.api.plan.LogicalPlan`; the :class:`~repro.api.planner.Planner`
and :class:`~repro.api.client.PrismClient` accept builders directly.
"""

from __future__ import annotations

import dataclasses

from repro.api.plan import LogicalPlan


@dataclasses.dataclass(frozen=True)
class Q:
    """Immutable fluent builder over :class:`LogicalPlan` fields.

    Start with :meth:`Q.psi` or :meth:`Q.psu`; chain aggregates and
    flags; finish with :meth:`plan` (or hand the builder to a planner /
    client, which calls it for you).
    """

    _set_op: str
    _attribute: str | tuple
    _aggregates: tuple = ()
    _verify: bool = False
    _reveal_holders: bool = True
    _bucketized: bool = False
    _owner_ids: tuple | None = None
    _querier: int = 0

    # -- roots ----------------------------------------------------------------

    @classmethod
    def psi(cls, attribute: str | tuple) -> "Q":
        """A private set intersection over ``attribute``."""
        return cls("psi", attribute)

    @classmethod
    def psu(cls, attribute: str | tuple) -> "Q":
        """A private set union over ``attribute``."""
        return cls("psu", attribute)

    # -- aggregates -----------------------------------------------------------

    def _with(self, **changes) -> "Q":
        return dataclasses.replace(self, **changes)

    def _add_aggregates(self, fn: str, attrs: tuple) -> "Q":
        added = tuple((fn, a) for a in attrs)
        return self._with(_aggregates=self._aggregates + added)

    def count(self) -> "Q":
        """Cardinality of the set result (§6.5)."""
        return self._with(_aggregates=self._aggregates + (("COUNT", None),))

    def sum(self, *attributes: str) -> "Q":
        """Per-value SUM of each attribute (§6.1; multi per Table 12)."""
        return self._add_aggregates("SUM", attributes)

    def avg(self, *attributes: str) -> "Q":
        """Per-value AVG of each attribute (§6.2)."""
        return self._add_aggregates("AVG", attributes)

    def max(self, attribute: str) -> "Q":
        """Per-value maximum (§6.3, announcer-interactive)."""
        return self._add_aggregates("MAX", (attribute,))

    def min(self, attribute: str) -> "Q":
        """Per-value minimum (§6.3 with FindMin)."""
        return self._add_aggregates("MIN", (attribute,))

    def median(self, attribute: str) -> "Q":
        """Median across owners of per-owner group totals (§6.4)."""
        return self._add_aggregates("MEDIAN", (attribute,))

    # -- flags ----------------------------------------------------------------

    def verify(self, flag: bool = True) -> "Q":
        """Request result verification (validated per kind at lowering)."""
        return self._with(_verify=flag)

    def reveal_holders(self, flag: bool = True) -> "Q":
        """Toggle the §6.3 identity round for MAX/MIN."""
        return self._with(_reveal_holders=flag)

    def bucketized(self, flag: bool = True) -> "Q":
        """Route a plain PSI through the §6.6 bucket tree."""
        return self._with(_bucketized=flag)

    def owners(self, owner_ids) -> "Q":
        """Restrict the query to a subset of owners."""
        return self._with(_owner_ids=tuple(owner_ids))

    def querier(self, owner_id: int) -> "Q":
        """Pick the owner that finalises the result."""
        return self._with(_querier=owner_id)

    # -- lowering -------------------------------------------------------------

    def plan(self) -> LogicalPlan:
        """Lower to the frozen IR (validates the combination)."""
        return LogicalPlan(
            set_op=self._set_op,
            attribute=self._attribute,
            aggregates=self._aggregates,
            verify=self._verify,
            reveal_holders=self._reveal_holders,
            bucketized=self._bucketized,
            owner_ids=self._owner_ids,
            querier=self._querier,
        )

    build = plan

    def describe(self) -> str:
        """The lowered plan's one-line description."""
        return self.plan().describe()
