"""Lowering every query form to the :class:`LogicalPlan` IR.

The :class:`Planner` is the single front door: SQL strings, fluent
builders, keyword dicts, already-built plans, and both legacy spec
types (:class:`~repro.core.query.QueryPlan`,
:class:`~repro.core.batch.BatchQuery`) all lower to the same IR — so
one executor, one feature surface, no per-entry-point drift.

Lowering is where the legacy ``QueryPlan.execute`` verification bug
dies: the ``verify`` flag is carried for every kind that supports it
(including PSU and MAX/MIN, which the old dispatch silently dropped);
kinds with no verification stream reject it loudly instead.
"""

from __future__ import annotations

from repro.api.builder import Q
from repro.api.plan import LogicalPlan
from repro.api.sql import parse_sql
from repro.exceptions import QueryError

#: BatchQuery kind → (set_op, aggregate function or None).
_BATCH_KINDS = {
    "psi": ("psi", None),
    "psu": ("psu", None),
    "psi_count": ("psi", "COUNT"),
    "psu_count": ("psu", "COUNT"),
    "psi_sum": ("psi", "SUM"),
    "psu_sum": ("psu", "SUM"),
    "psi_average": ("psi", "AVG"),
    "psu_average": ("psu", "AVG"),
}


class Planner:
    """Lowers any supported query form to a :class:`LogicalPlan`."""

    def lower(self, query) -> LogicalPlan:
        """Lower one query of any supported form.

        Accepts a :class:`LogicalPlan` (returned as-is), a fluent
        :class:`Q` builder, a Table-4 SQL string, a keyword dict
        (:class:`LogicalPlan` fields, or ``kind=``-style
        :class:`BatchQuery` fields), or a legacy
        :class:`~repro.core.query.QueryPlan` /
        :class:`~repro.core.batch.BatchQuery` spec.
        """
        if isinstance(query, LogicalPlan):
            return query
        if isinstance(query, Q):
            return query.plan()
        if isinstance(query, str):
            return parse_sql(query)
        if isinstance(query, dict):
            if "kind" in query:
                from repro.core.batch import BatchQuery
                return self._lower_batch_query(BatchQuery(**query))
            return LogicalPlan(**query)
        # Legacy spec types, imported lazily (they import this package's
        # siblings for their own shims).
        from repro.core.batch import BatchQuery
        from repro.core.query import QueryPlan
        if isinstance(query, QueryPlan):
            return self._lower_query_plan(query)
        if isinstance(query, BatchQuery):
            return self._lower_batch_query(query)
        raise QueryError(
            f"cannot interpret {type(query).__name__} as a Prism query"
        )

    def lower_many(self, queries) -> list[LogicalPlan]:
        """Lower an iterable of queries, preserving order."""
        return [self.lower(q) for q in queries]

    # -- legacy specs ---------------------------------------------------------

    def _lower_query_plan(self, plan) -> LogicalPlan:
        aggregates = () if plan.aggregate is None else (plan.aggregate,)
        return LogicalPlan(set_op=plan.set_op, attribute=plan.attribute,
                           aggregates=aggregates, verify=plan.verify,
                           tables=plan.tables)

    def _lower_batch_query(self, query) -> LogicalPlan:
        set_op, fn = _BATCH_KINDS[query.kind]
        if fn is None:
            aggregates = ()
        elif fn == "COUNT":
            aggregates = (("COUNT", None),)
        else:
            aggregates = tuple((fn, a) for a in query.agg_attributes)
        return LogicalPlan(set_op=set_op, attribute=query.attribute,
                           aggregates=aggregates, verify=query.verify,
                           owner_ids=query.owner_ids, querier=query.querier)
