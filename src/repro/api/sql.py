"""The Table-4 SQL dialect, lowered to :class:`LogicalPlan`.

The paper expresses its operations as multi-branch ``INTERSECT``/``UNION``
statements (Table 4).  This parser accepts a compact, equivalent dialect:

* ``SELECT disease FROM h1 INTERSECT SELECT disease FROM h2 ...`` → PSI
* ``SELECT disease FROM h1 UNION SELECT disease FROM h2 ...`` → PSU
* ``SELECT COUNT(disease) FROM h1 INTERSECT ...`` → PSI-Count
* ``SELECT disease, SUM(cost) FROM h1 INTERSECT ...`` → PSI-Sum
* ``SELECT disease, SUM(cost), AVG(age) FROM h1 INTERSECT ...`` —
  multiple aggregates in one projection (Table 12)
* ``SELECT disease, MAX(age) FROM h1 INTERSECT ...`` → PSI-Max

All branches must project the same expression — Prism's set operations
are defined over a common attribute (§2).  Append ``VERIFY`` to request
result verification; prefix ``EXPLAIN`` (handled by
:func:`split_explain` at the client layer) to get the plan's
``describe()`` instead of executing.
"""

from __future__ import annotations

import re

from repro.api.plan import AGG_FUNCTIONS, LogicalPlan
from repro.exceptions import QueryError

_BRANCH_RE = re.compile(
    r"^\s*SELECT\s+(?P<projection>.+?)\s+FROM\s+(?P<table>\w+)\s*$",
    re.IGNORECASE,
)
_AGG_RE = re.compile(
    r"^(?P<fn>" + "|".join(AGG_FUNCTIONS) + r")\s*\(\s*(?P<attr>\w+)\s*\)$",
    re.IGNORECASE,
)
_EXPLAIN_RE = re.compile(r"^\s*EXPLAIN\b\s*", re.IGNORECASE)
_SPLITTER_RE = re.compile(r"\s+INTERSECT\s+|\s+UNION\s+", re.IGNORECASE)


def split_explain(sql: str) -> tuple[bool, str]:
    """Strip an ``EXPLAIN`` prefix; returns ``(was_explain, rest)``."""
    match = _EXPLAIN_RE.match(sql)
    if match:
        return True, sql[match.end():]
    return False, sql


def parse_sql(sql: str) -> LogicalPlan:
    """Parse a Table-4-style statement into a :class:`LogicalPlan`.

    Raises:
        QueryError: on malformed input, mixed set operators, inconsistent
            projections across branches, unsupported aggregates, or an
            ``EXPLAIN`` prefix (a client-level directive — strip it with
            :func:`split_explain` first).
    """
    if _EXPLAIN_RE.match(sql):
        raise QueryError(
            "EXPLAIN is a client-level prefix; strip it with "
            "split_explain() (or submit via PrismClient.execute / "
            "run_query, which handle it)"
        )
    text = " ".join(sql.strip().rstrip(";").split())
    verify = False
    if text.upper().endswith(" VERIFY"):
        verify = True
        text = text[: -len(" VERIFY")]

    upper = text.upper()
    has_intersect = " INTERSECT " in f" {upper} "
    has_union = " UNION " in f" {upper} "
    if has_intersect and has_union:
        raise QueryError("cannot mix INTERSECT and UNION in one query")
    if not has_intersect and not has_union:
        raise QueryError(
            "Prism queries are multi-owner set operations: expected at "
            "least one INTERSECT or UNION branch"
        )
    set_op = "psi" if has_intersect else "psu"
    branches = _SPLITTER_RE.split(text)
    if len(branches) < 2:
        raise QueryError("need at least two branches")

    parsed = [_parse_branch(b) for b in branches]
    first_projection = parsed[0][0]
    for projection, _ in parsed[1:]:
        if projection.upper() != first_projection.upper():
            raise QueryError(
                f"all branches must project the same expression; got "
                f"{first_projection!r} vs {projection!r}"
            )
    attribute, aggregates = _interpret_projection(first_projection)
    tables = tuple(table for _, table in parsed)
    return LogicalPlan(set_op=set_op, attribute=attribute,
                       aggregates=aggregates, tables=tables, verify=verify)


def _parse_branch(branch: str) -> tuple[str, str]:
    match = _BRANCH_RE.match(branch)
    if not match:
        raise QueryError(f"malformed branch: {branch!r}")
    projection = "".join(match.group("projection").split())
    return projection, match.group("table")


def _interpret_projection(projection: str) -> tuple[str, tuple]:
    """Split ``"disease,SUM(cost),AVG(age)"`` into attribute + aggregates."""
    parts = projection.split(",")
    if len(parts) == 1:
        agg = _AGG_RE.match(parts[0])
        if agg is None:
            return parts[0], ()
        if agg.group("fn").upper() != "COUNT":
            raise QueryError(
                f"{agg.group('fn').upper()} needs a set attribute too, e.g. "
                f"SELECT disease, {agg.group('fn').upper()}(cost) ..."
            )
        return agg.group("attr"), (("COUNT", agg.group("attr")),)
    attribute = parts[0]
    if _AGG_RE.match(attribute):
        raise QueryError(
            f"the first projection item is the set attribute, not an "
            f"aggregate: {attribute!r}"
        )
    aggregates = []
    for part in parts[1:]:
        agg = _AGG_RE.match(part)
        if not agg:
            raise QueryError(
                f"projection items after the set attribute must be "
                f"aggregates: {part!r}"
            )
        aggregates.append((agg.group("fn").upper(), agg.group("attr")))
    return attribute, tuple(aggregates)
