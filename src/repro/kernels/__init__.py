"""Compiled kernel tier: opt-in C backend for the hot fused sweeps.

The three batched server kernels (Eq. 3/7 PSI, Eq. 18 PSU, Eq. 11
aggregation) and the counter-mode PRG stream are numpy/hashlib-bound;
this package puts the same per-element int64 arithmetic below the
interpreter.  It is an *equivalence-pinned drop-in*: every compiled
span computes bit-identically to the numpy reference (same wraparound,
same floored-mod reduction points, same SHA-256 stream), which
``tests/test_kernels.py`` pins per kernel family × shard count.

Selection ladder (mirrors the threads/workers crossover in
:func:`repro.core.sharding.auto_shard_plan`):

1. **Mode** — ``configure(mode)`` or the ``REPRO_KERNELS`` environment
   variable: ``"off"``/``"numpy"`` (the default) keeps the reference
   kernels; ``"c"``/``"auto"``/``"on"`` enables the compiled tier.
2. **Availability** — the C library builds lazily on first use
   (:mod:`repro.kernels.cbackend`); no compiler, a failed build, or a
   big-endian host falls back *transparently* to numpy.
3. **Crossover** — sweeps shorter than :data:`NATIVE_MIN_SPAN` stay on
   numpy, where per-call ctypes overhead would eat the win.
4. **Eligibility** — every operand must be an aligned C-contiguous
   int64 vector; anything else (sliced matrices, unaligned wire views)
   falls back per sweep.

The sweep *builders* below return a ``kernel(lo, hi)`` chunk closure
writing into a caller-provided output matrix, or ``None`` when any rung
of the ladder says numpy — so the server kernels and
:func:`repro.core.sharding.compute_sweep_span` keep a single fallback
shape.  Closures only read shared state and write disjoint spans, so
the chunked thread pool drives them in parallel (ctypes releases the
GIL for the duration of each C call).
"""

from __future__ import annotations

import ctypes
import os

import numpy as np

from repro.kernels import cbackend

#: Sweep lengths below this stay on numpy: the per-row ctypes call
#: overhead (~1 µs) dominates tiny spans, exactly like worker dispatch
#: below ``AUTO_WORKER_MIN_ROWS`` in ``core.sharding``.  Measured with
#: ``benchmarks/bench_kernels.py``.
NATIVE_MIN_SPAN = 512

#: Environment opt-in flag (read once per ``configure()`` resolution).
MODE_ENV = "REPRO_KERNELS"

_ON_MODES = {"c", "compiled", "auto", "on", "1"}
_OFF_MODES = {"", "off", "numpy", "0", "none"}

_mode: str | None = None          # resolved mode ("c-requested" | "numpy")
_lib: ctypes.CDLL | None = None   # loaded library (only in "c-requested")


def configure(mode: str | None = None) -> str:
    """Select the kernel backend; returns the *active* backend name.

    ``mode=None`` re-reads :data:`MODE_ENV`.  Requesting the compiled
    tier when it cannot build is not an error — the numpy reference
    stays in charge and this returns ``"numpy"``.
    """
    global _mode, _lib
    raw = (mode if mode is not None
           else os.environ.get(MODE_ENV, "off")).strip().lower()
    if raw in _OFF_MODES:
        _mode, _lib = "numpy", None
    elif raw in _ON_MODES:
        _mode = "c-requested"
        _lib = cbackend.load()
    else:
        raise ValueError(
            f"unknown kernel backend {raw!r}: expected one of "
            f"{sorted(_ON_MODES | _OFF_MODES)}")
    return active_backend()


def _ensure_resolved() -> None:
    if _mode is None:
        configure()


def active_backend() -> str:
    """``"c"`` when compiled sweeps will run, else ``"numpy"``."""
    _ensure_resolved()
    return "c" if _lib is not None else "numpy"


def available() -> bool:
    """Whether the compiled library can be built/loaded on this host."""
    return cbackend.load() is not None


def enabled() -> bool:
    return active_backend() == "c"


def native_lib() -> ctypes.CDLL | None:
    """The loaded library when the compiled tier is active, else ``None``."""
    _ensure_resolved()
    return _lib


# -- PRG stream ---------------------------------------------------------------

def prg_fill(key: bytes, start: int, n: int) -> bytes | None:
    """Stream bytes ``[start, start+n)`` via the C generator, or ``None``."""
    lib = native_lib()
    if lib is None:
        return None
    buf = bytearray(n)
    if n:
        lib.repro_prg_fill(key, start, n,
                           ctypes.addressof((ctypes.c_ubyte * n).from_buffer(buf)))
    return bytes(buf)


# -- sweep builders -----------------------------------------------------------

def _vec_ok(a: np.ndarray) -> bool:
    return (isinstance(a, np.ndarray) and a.ndim == 1
            and a.dtype == np.int64 and a.flags.c_contiguous
            and a.flags.aligned)


def _row_ptrs(share_lists) -> list | None:
    """Per-row ctypes pointer arrays over the share vectors, or ``None``."""
    ptrs = []
    for row_shares in share_lists:
        if not all(_vec_ok(s) for s in row_shares):
            return None
        ptrs.append((ctypes.c_void_p * max(1, len(row_shares)))(
            *[s.ctypes.data for s in row_shares]))
    return ptrs


def _out_ok(out: np.ndarray) -> bool:
    return (out.dtype == np.int64 and out.flags.c_contiguous
            and out.flags.aligned and out.flags.writeable)


def _sweep_lib(out: np.ndarray):
    """The library if this sweep clears the mode/crossover/output rungs."""
    lib = native_lib()
    if lib is None or not _out_ok(out) or out.shape[-1] < NATIVE_MIN_SPAN:
        return None
    return lib


def _row_addr(matrix: np.ndarray, row: int) -> int:
    return matrix.ctypes.data + row * matrix.strides[0]


def psi_sweep(share_lists, m_rows, delta: int, table: np.ndarray,
              out: np.ndarray, cells: np.ndarray | None = None):
    """Chunk closure for the fused Eq. 3 / Eq. 7 sweep, or ``None``.

    With ``cells`` the span indexes the cells array (the bucketized
    per-level sweep); without it the span indexes χ directly.
    """
    lib = _sweep_lib(out)
    if lib is None or not _vec_ok(table) or len(table) < delta:
        return None
    if cells is not None and not _vec_ok(cells):
        return None
    ptrs = _row_ptrs(share_lists)
    if ptrs is None:
        return None
    m_flat = [int(v) for v in np.ravel(np.asarray(m_rows))]
    counts = [len(row) for row in share_lists]
    table_addr = table.ctypes.data

    if cells is None:
        def kernel(lo: int, hi: int) -> None:
            for q, row_ptrs in enumerate(ptrs):
                lib.repro_psi_span(row_ptrs, counts[q], lo, hi, m_flat[q],
                                   delta, table_addr, _row_addr(out, q))
    else:
        cells_addr = cells.ctypes.data

        def kernel(lo: int, hi: int) -> None:
            for q, row_ptrs in enumerate(ptrs):
                lib.repro_psi_cells_span(row_ptrs, counts[q], cells_addr,
                                         lo, hi, m_flat[q], delta,
                                         table_addr, _row_addr(out, q))
    return kernel


def psu_sweep(share_lists, acc: np.ndarray, row_map, keys: list[bytes],
              delta: int, out: np.ndarray, draw_base: int = 0):
    """Chunk closure for the fused Eq. 18 sweep, or ``None``.

    ``share_lists`` holds the *unique* columns' share vectors summed
    into ``acc`` rows; ``row_map[q]`` names the acc row for output row
    ``q`` and ``keys[q]`` its 32-byte mask-stream key.  ``draw_base``
    offsets the mask draws (non-zero when the caller hands span-local
    arrays, as ``compute_sweep_span`` does) so shards keep seeking the
    absolute stream exactly like ``SeededPRG.integers_at``.
    """
    if delta < 2:
        return None
    lib = _sweep_lib(out)
    if lib is None or not _out_ok(acc):
        return None
    ptrs = _row_ptrs(share_lists)
    if ptrs is None:
        return None
    counts = [len(row) for row in share_lists]
    rows = [int(u) for u in row_map]

    def kernel(lo: int, hi: int) -> None:
        for u, col_ptrs in enumerate(ptrs):
            lib.repro_sum_mod_span(col_ptrs, counts[u], lo, hi, delta,
                                   _row_addr(acc, u))
        for q, u in enumerate(rows):
            lib.repro_psu_span(_row_addr(acc, u), lo, hi, keys[q],
                               draw_base, delta, _row_addr(out, q))
    return kernel


def agg_sweep(share_lists, z_matrix: np.ndarray, p: int, out: np.ndarray):
    """Chunk closure for the fused Eq. 11 sweep, or ``None``."""
    lib = _sweep_lib(out)
    if lib is None:
        return None
    # Row-contiguous is enough: the shared-scratch z views are 2-D
    # column slices whose rows stay contiguous (stride = itemsize).
    if not (isinstance(z_matrix, np.ndarray) and z_matrix.ndim == 2
            and z_matrix.dtype == np.int64 and z_matrix.flags.aligned
            and z_matrix.strides[1] == z_matrix.itemsize):
        return None
    ptrs = _row_ptrs(share_lists)
    if ptrs is None:
        return None
    counts = [len(row) for row in share_lists]

    def kernel(lo: int, hi: int) -> None:
        for q, row_ptrs in enumerate(ptrs):
            lib.repro_agg_span(row_ptrs, counts[q], _row_addr(z_matrix, q),
                               lo, hi, p, _row_addr(out, q))
    return kernel
