"""Build and load the C sweep kernels (cc → shared object → ctypes).

The library is compiled on demand from :mod:`native.c` into a per-user
cache directory keyed by the source hash, so one build serves every
process (forked shard workers, entity hosts) and rebuilds happen only
when the source changes.  Everything here is best-effort: any failure
(no compiler, sandboxed tmpdir, load error) returns ``None`` and the
callers fall back to the numpy reference kernels.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

_SOURCE = Path(__file__).with_name("native.c")

#: Compiler override (tests point this at a nonexistent binary to force
#: the fallback path); unset → first of ``cc``/``gcc``/``clang`` found.
CC_ENV = "REPRO_KERNELS_CC"

_FUNCTIONS = {
    # name -> argtypes (all pointers travel as raw addresses)
    "repro_prg_fill": [ctypes.c_char_p, ctypes.c_uint64, ctypes.c_uint64,
                       ctypes.c_void_p],
    "repro_sum_mod_span": [ctypes.c_void_p, ctypes.c_int64, ctypes.c_int64,
                           ctypes.c_int64, ctypes.c_int64, ctypes.c_void_p],
    "repro_psi_span": [ctypes.c_void_p, ctypes.c_int64, ctypes.c_int64,
                       ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
                       ctypes.c_void_p, ctypes.c_void_p],
    "repro_psi_cells_span": [ctypes.c_void_p, ctypes.c_int64, ctypes.c_void_p,
                             ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
                             ctypes.c_int64, ctypes.c_void_p, ctypes.c_void_p],
    "repro_psu_span": [ctypes.c_void_p, ctypes.c_int64, ctypes.c_int64,
                       ctypes.c_char_p, ctypes.c_uint64, ctypes.c_int64,
                       ctypes.c_void_p],
    "repro_agg_span": [ctypes.c_void_p, ctypes.c_int64, ctypes.c_void_p,
                       ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
                       ctypes.c_void_p],
}


def _compiler() -> str | None:
    override = os.environ.get(CC_ENV)
    if override:
        return override if shutil.which(override) else None
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def cache_dir() -> Path:
    uid = os.getuid() if hasattr(os, "getuid") else "all"
    return Path(tempfile.gettempdir()) / f"repro-kernels-{uid}"


def library_path() -> Path:
    digest = hashlib.sha256(_SOURCE.read_bytes()).hexdigest()[:16]
    return cache_dir() / f"native-{digest}.so"


def build_library() -> Path | None:
    """Compile ``native.c`` into the cache (idempotent); ``None`` on failure."""
    target = library_path()
    if target.exists():
        return target
    cc = _compiler()
    if cc is None:
        return None
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        scratch = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        subprocess.run(
            [cc, "-O3", "-fPIC", "-shared", "-o", str(scratch), str(_SOURCE)],
            check=True, capture_output=True, timeout=120)
        os.replace(scratch, target)  # atomic vs concurrent builders
    except (OSError, subprocess.SubprocessError):
        return None
    return target


def load() -> ctypes.CDLL | None:
    """The compiled kernel library, or ``None`` when unavailable.

    Gated on little-endian hosts: the C draw extraction and the
    zero-copy int64 wire views both assume LE layout.
    """
    if sys.byteorder != "little":
        return None
    target = build_library()
    if target is None:
        return None
    try:
        lib = ctypes.CDLL(str(target))
        for name, argtypes in _FUNCTIONS.items():
            fn = getattr(lib, name)
            fn.argtypes = argtypes
            fn.restype = None
    except (OSError, AttributeError):
        return None
    return lib
