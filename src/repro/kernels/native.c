/* Compiled sweep kernels for the Prism reproduction.
 *
 * Each function mirrors one fused numpy sweep *bit for bit*:
 *
 *   - int64 additions/multiplications wrap exactly like numpy's int64
 *     (we accumulate in uint64_t, whose wraparound is defined behaviour
 *     and identical to two's-complement int64);
 *   - reductions use floored modulo (numpy's np.mod), not C's truncated
 *     `%`, and happen at exactly the points the numpy kernels reduce;
 *   - the PSU mask stream is the same SHA-256 counter-mode stream as
 *     `SeededPRG`: block c = SHA256(key32 || LE64(c)), 8 little-endian
 *     bytes per draw, `(raw % span) + low`.  Draw offsets are absolute,
 *     so shards seek the stream exactly like `integers_at`.
 *
 * The Python loader gates this backend on little-endian hosts; the
 * draw extraction below assumes LE layout.
 */

#include <stdint.h>
#include <string.h>

#if defined(__x86_64__) && defined(__GNUC__)
#define REPRO_SHA_NI_COMPILED 1
#include <immintrin.h>
#include <cpuid.h>
#endif

/* ---- SHA-256 (FIPS 180-4) ------------------------------------------- */

static const uint32_t SHA_K[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u,
    0x3956c25bu, 0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u,
    0xd807aa98u, 0x12835b01u, 0x243185beu, 0x550c7dc3u,
    0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u, 0xc19bf174u,
    0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau,
    0x983e5152u, 0xa831c66du, 0xb00327c8u, 0xbf597fc7u,
    0xc6e00bf3u, 0xd5a79147u, 0x06ca6351u, 0x14292967u,
    0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu, 0x53380d13u,
    0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u,
    0xd192e819u, 0xd6990624u, 0xf40e3585u, 0x106aa070u,
    0x19a4c116u, 0x1e376c08u, 0x2748774cu, 0x34b0bcb5u,
    0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu, 0x682e6ff3u,
    0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

#define ROTR(x, n) (((x) >> (n)) | ((x) << (32 - (n))))

static void sha256_compress(uint32_t state[8], const uint8_t block[64]) {
    uint32_t w[64];
    int i;
    for (i = 0; i < 16; i++) {
        w[i] = ((uint32_t)block[4 * i] << 24)
             | ((uint32_t)block[4 * i + 1] << 16)
             | ((uint32_t)block[4 * i + 2] << 8)
             | ((uint32_t)block[4 * i + 3]);
    }
    for (i = 16; i < 64; i++) {
        uint32_t s0 = ROTR(w[i - 15], 7) ^ ROTR(w[i - 15], 18) ^ (w[i - 15] >> 3);
        uint32_t s1 = ROTR(w[i - 2], 17) ^ ROTR(w[i - 2], 19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (i = 0; i < 64; i++) {
        uint32_t s1 = ROTR(e, 6) ^ ROTR(e, 11) ^ ROTR(e, 25);
        uint32_t ch = (e & f) ^ (~e & g);
        uint32_t t1 = h + s1 + ch + SHA_K[i] + w[i];
        uint32_t s0 = ROTR(a, 2) ^ ROTR(a, 13) ^ ROTR(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t t2 = s0 + maj;
        h = g; g = f; f = e; e = d + t1;
        d = c; c = b; b = a; a = t1 + t2;
    }
    state[0] += a; state[1] += b; state[2] += c; state[3] += d;
    state[4] += e; state[5] += f; state[6] += g; state[7] += h;
}

#ifdef REPRO_SHA_NI_COMPILED
/* Hardware SHA-256 compression via the SHA-NI extension.  Same
 * interface as the scalar compressor; selected at runtime by CPUID. */
__attribute__((target("sha,ssse3,sse4.1")))
static void sha256_compress_ni(uint32_t state[8], const uint8_t block[64]) {
    const __m128i MASK = _mm_set_epi64x(
        0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
    __m128i STATE0, STATE1, TMP, MSG;
    __m128i MSG0, MSG1, MSG2, MSG3;

    /* Load state (a,b,c,d / e,f,g,h) and permute into the layout the
     * sha256rnds2 instruction expects. */
    TMP = _mm_loadu_si128((const __m128i *)&state[0]);
    STATE1 = _mm_loadu_si128((const __m128i *)&state[4]);
    TMP = _mm_shuffle_epi32(TMP, 0xB1);        /* CDAB */
    STATE1 = _mm_shuffle_epi32(STATE1, 0x1B);  /* EFGH */
    STATE0 = _mm_alignr_epi8(TMP, STATE1, 8);  /* ABEF */
    STATE1 = _mm_blend_epi16(STATE1, TMP, 0xF0); /* CDGH */

    const __m128i ABEF_SAVE = STATE0;
    const __m128i CDGH_SAVE = STATE1;

    /* Rounds 0-3 */
    MSG0 = _mm_loadu_si128((const __m128i *)(block + 0));
    MSG0 = _mm_shuffle_epi8(MSG0, MASK);
    MSG = _mm_add_epi32(MSG0, _mm_set_epi64x(
        0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    /* Rounds 4-7 */
    MSG1 = _mm_loadu_si128((const __m128i *)(block + 16));
    MSG1 = _mm_shuffle_epi8(MSG1, MASK);
    MSG = _mm_add_epi32(MSG1, _mm_set_epi64x(
        0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    /* Rounds 8-11 */
    MSG2 = _mm_loadu_si128((const __m128i *)(block + 32));
    MSG2 = _mm_shuffle_epi8(MSG2, MASK);
    MSG = _mm_add_epi32(MSG2, _mm_set_epi64x(
        0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    MSG3 = _mm_loadu_si128((const __m128i *)(block + 48));
    MSG3 = _mm_shuffle_epi8(MSG3, MASK);

/* One 4-round group with message-schedule updates: CUR feeds the
 * round keys, NXT picks up CUR's tail via alignr + msg2, PRV absorbs
 * CUR through msg1 for a later group. */
#define QROUND(CUR, NXT, PRV, KHI, KLO)                                  \
    do {                                                                 \
        MSG = _mm_add_epi32(CUR, _mm_set_epi64x(KHI, KLO));              \
        STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);             \
        TMP = _mm_alignr_epi8(CUR, PRV, 4);                              \
        NXT = _mm_add_epi32(NXT, TMP);                                   \
        NXT = _mm_sha256msg2_epu32(NXT, CUR);                            \
        MSG = _mm_shuffle_epi32(MSG, 0x0E);                              \
        STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);             \
        PRV = _mm_sha256msg1_epu32(PRV, CUR);                            \
    } while (0)

    QROUND(MSG3, MSG0, MSG2, 0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL);
    QROUND(MSG0, MSG1, MSG3, 0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL);
    QROUND(MSG1, MSG2, MSG0, 0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL);
    QROUND(MSG2, MSG3, MSG1, 0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL);
    QROUND(MSG3, MSG0, MSG2, 0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL);
    QROUND(MSG0, MSG1, MSG3, 0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL);
    QROUND(MSG1, MSG2, MSG0, 0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL);
    QROUND(MSG2, MSG3, MSG1, 0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL);
    QROUND(MSG3, MSG0, MSG2, 0x106AA070F40E3585ULL, 0xD6990624D192E819ULL);
    QROUND(MSG0, MSG1, MSG3, 0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL);
    QROUND(MSG1, MSG2, MSG0, 0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL);
    QROUND(MSG2, MSG3, MSG1, 0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL);

#undef QROUND

    /* Rounds 60-63 */
    MSG = _mm_add_epi32(MSG3, _mm_set_epi64x(
        0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    STATE0 = _mm_add_epi32(STATE0, ABEF_SAVE);
    STATE1 = _mm_add_epi32(STATE1, CDGH_SAVE);

    /* Permute back to a,b,c,d / e,f,g,h and store. */
    TMP = _mm_shuffle_epi32(STATE0, 0x1B);       /* FEBA */
    STATE1 = _mm_shuffle_epi32(STATE1, 0xB1);    /* DCHG */
    STATE0 = _mm_blend_epi16(TMP, STATE1, 0xF0); /* DCBA */
    STATE1 = _mm_alignr_epi8(STATE1, TMP, 8);    /* HGFE */
    _mm_storeu_si128((__m128i *)&state[0], STATE0);
    _mm_storeu_si128((__m128i *)&state[4], STATE1);
}
#endif /* REPRO_SHA_NI_COMPILED */

typedef void (*sha_compress_fn)(uint32_t state[8], const uint8_t block[64]);

/* Resolve the best available compressor once, lazily. */
static sha_compress_fn resolve_sha(void) {
#ifdef REPRO_SHA_NI_COMPILED
    unsigned int eax, ebx, ecx, edx;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)
        && (ebx & (1u << 29)))
        return sha256_compress_ni;
#endif
    return sha256_compress;
}

static sha_compress_fn sha_compress_best = 0;

/* Stream block c = SHA256(key[32] || LE64(c)).  The 40-byte message
 * pads into a single 64-byte chunk (0x80, zeros, 320-bit BE length),
 * so each block costs exactly one compression.  The key and padding
 * are constant across a stream, so hot loops prepare the message once
 * with prg_block_init and only rewrite the counter per block. */
static void prg_block_init(const uint8_t *key, uint8_t block[64]) {
    memcpy(block, key, 32);
    block[40] = 0x80;
    memset(block + 41, 0, 21);
    block[62] = 0x01;  /* message length: 320 bits, big-endian */
    block[63] = 0x40;
    if (!sha_compress_best)
        sha_compress_best = resolve_sha();
}

static void prg_block_ctr(uint8_t block[64], uint64_t counter,
                          uint8_t out[32]) {
    uint32_t state[8] = {
        0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
        0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u,
    };
    int i;
    for (i = 0; i < 8; i++)
        block[32 + i] = (uint8_t)(counter >> (8 * i));
    sha_compress_best(state, block);
    for (i = 0; i < 8; i++) {
        out[4 * i] = (uint8_t)(state[i] >> 24);
        out[4 * i + 1] = (uint8_t)(state[i] >> 16);
        out[4 * i + 2] = (uint8_t)(state[i] >> 8);
        out[4 * i + 3] = (uint8_t)state[i];
    }
}

/* numpy's np.mod: floored modulo, non-negative for positive modulus. */
static inline int64_t floormod(int64_t x, int64_t m) {
    int64_t r = x % m;
    return r < 0 ? r + m : r;
}

/* Exact floored modulo by the Mersenne prime M = 2^31 - 1 without a
 * division: 2^31 ≡ 1 (mod M), so x = (x>>31)*2^31 + (x&M) ≡ (x>>31) +
 * (x&M).  Arithmetic shift makes the identity hold for negative x too
 * (x>>31 is floor(x / 2^31)).  Two folds bring any int64 into
 * [-2, M+1]; the conditionals finish the reduction. */
static inline int64_t mod_mersenne31(int64_t x) {
    const int64_t M = ((int64_t)1 << 31) - 1;
    x = (x >> 31) + (x & M);
    x = (x >> 31) + (x & M);
    if (x >= M) x -= M;
    if (x < 0) x += M;
    return x;
}

/* ---- Eq. 11 Mersenne-31 span (scalar + AVX-512) ---------------------- */

typedef void (*agg_mersenne_fn)(const int64_t **shares, int64_t nshares,
                                const int64_t *z, int64_t lo, int64_t hi,
                                int64_t *out);

/* Scalar Mersenne-31 aggregation span; same reduction points as the
 * generic loop, division-free. */
static void agg_mersenne_span(const int64_t **shares, int64_t nshares,
                              const int64_t *z, int64_t lo, int64_t hi,
                              int64_t *out) {
    const int64_t M = ((int64_t)1 << 31) - 1;
    int64_t i, j;
    for (i = lo; i < hi; i++) {
        int64_t acc = 0;
        int64_t zi = z[i];
        for (j = 0; j < nshares; j++) {
            int64_t x = (int64_t)((uint64_t)shares[j][i] * (uint64_t)zi);
            x = mod_mersenne31(x);
            acc += x;
            if (acc >= M)
                acc -= M;
        }
        out[i] = acc;
    }
}

#ifdef REPRO_SHA_NI_COMPILED
/* Share-major traversal with branchless reduction so gcc can
 * auto-vectorize the row loop (vpmullq + 64-bit shifts need AVX-512DQ).
 * Per element the (j-ordered) reduction sequence is identical to the
 * scalar span, so results stay bit-identical. */
__attribute__((target("avx512f,avx512dq,avx512vl")))
static void agg_mersenne_span_avx512(const int64_t **shares, int64_t nshares,
                                     const int64_t *z, int64_t lo, int64_t hi,
                                     int64_t *out) {
    const int64_t M = ((int64_t)1 << 31) - 1;
    int64_t i, j;
    memset(out + lo, 0, (size_t)(hi - lo) * sizeof(int64_t));
    for (j = 0; j < nshares; j++) {
        const int64_t *s = shares[j];
        for (i = lo; i < hi; i++) {
            int64_t x = (int64_t)((uint64_t)s[i] * (uint64_t)z[i]);
            x = (x >> 31) + (x & M);
            x = (x >> 31) + (x & M);
            x -= M & -(int64_t)(x >= M);
            x += M & (x >> 63);
            int64_t acc = out[i] + x;
            out[i] = acc - (M & -(int64_t)(acc >= M));
        }
    }
}

__attribute__((target("xsave")))
static uint64_t read_xcr0(void) {
    return __builtin_ia32_xgetbv(0);
}

static int cpu_has_avx512dq(void) {
    unsigned int eax, ebx, ecx, edx;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx) || !(ecx & (1u << 27)))
        return 0;  /* no OSXSAVE */
    if ((read_xcr0() & 0xE6) != 0xE6)
        return 0;  /* OS doesn't save XMM|YMM|opmask|ZMM state */
    if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
        return 0;
    return (ebx & (1u << 16))      /* AVX512F */
        && (ebx & (1u << 17))      /* AVX512DQ */
        && (ebx & (1u << 31));     /* AVX512VL */
}
#endif /* REPRO_SHA_NI_COMPILED */

static agg_mersenne_fn resolve_agg_mersenne(void) {
#ifdef REPRO_SHA_NI_COMPILED
    if (cpu_has_avx512dq())
        return agg_mersenne_span_avx512;
#endif
    return agg_mersenne_span;
}

static agg_mersenne_fn agg_mersenne_best = 0;

/* ---- exported kernels ------------------------------------------------ */

/* Stream bytes [start, start + nbytes) of the counter-mode generator. */
void repro_prg_fill(const uint8_t *key, uint64_t start, uint64_t nbytes,
                    uint8_t *out) {
    uint8_t msg[64];
    uint8_t block[32];
    uint64_t counter = start / 32;
    uint64_t skip = start % 32;
    uint64_t produced = 0;
    prg_block_init(key, msg);
    while (produced < nbytes) {
        uint64_t take = 32 - skip;
        if (take > nbytes - produced)
            take = nbytes - produced;
        if (skip == 0 && take == 32) {
            /* Block-aligned: write straight into the caller's buffer. */
            prg_block_ctr(msg, counter++, out + produced);
        } else {
            prg_block_ctr(msg, counter++, block);
            memcpy(out + produced, block + skip, take);
        }
        produced += take;
        skip = 0;
    }
}

/* out[i] = (sum_j shares[j][i]) mod m  over i in [lo, hi). */
void repro_sum_mod_span(const int64_t **shares, int64_t nshares,
                        int64_t lo, int64_t hi, int64_t modulus,
                        int64_t *out) {
    int64_t i, j;
    for (i = lo; i < hi; i++) {
        uint64_t acc = 0;
        for (j = 0; j < nshares; j++)
            acc += (uint64_t)shares[j][i];
        out[i] = floormod((int64_t)acc, modulus);
    }
}

/* Fused Eq. 3 / Eq. 7 row span:
 * out[i] = table[(sum_j shares[j][i] - m_share) mod delta]. */
void repro_psi_span(const int64_t **shares, int64_t nshares,
                    int64_t lo, int64_t hi, int64_t m_share, int64_t delta,
                    const int64_t *table, int64_t *out) {
    int64_t i, j;
    for (i = lo; i < hi; i++) {
        uint64_t acc = 0;
        for (j = 0; j < nshares; j++)
            acc += (uint64_t)shares[j][i];
        acc -= (uint64_t)m_share;
        out[i] = table[floormod((int64_t)acc, delta)];
    }
}

/* Cell-restricted Eq. 3 span: the span indexes the cells array, the
 * gathered cells index the full share vectors. */
void repro_psi_cells_span(const int64_t **shares, int64_t nshares,
                          const int64_t *cells, int64_t lo, int64_t hi,
                          int64_t m_share, int64_t delta,
                          const int64_t *table, int64_t *out) {
    int64_t i, j;
    for (i = lo; i < hi; i++) {
        int64_t cell = cells[i];
        uint64_t acc = 0;
        for (j = 0; j < nshares; j++)
            acc += (uint64_t)shares[j][cell];
        acc -= (uint64_t)m_share;
        out[i] = table[floormod((int64_t)acc, delta)];
    }
}

/* Eq. 18 row span with the mask stream generated in place:
 * out[i] = (summed[i] * ((draw(draw_base + i) % (delta-1)) + 1)) mod delta,
 * where draw(d) is u64 little-endian bytes [8d, 8d+8) of the stream —
 * exactly SeededPRG.integers_at(draw_base + lo, hi - lo, 1, delta). */
void repro_psu_span(const int64_t *summed, int64_t lo, int64_t hi,
                    const uint8_t *key, uint64_t draw_base, int64_t delta,
                    int64_t *out) {
    uint64_t span = (uint64_t)(delta - 1);
    uint8_t msg[64];
    uint8_t block[32];
    uint64_t have_block = 0;
    uint64_t blk = 0;
    int64_t i;
    prg_block_init(key, msg);
    for (i = lo; i < hi; i++) {
        uint64_t d = draw_base + (uint64_t)i;
        uint64_t b = d >> 2;  /* four u64 draws per 32-byte block */
        uint64_t raw;
        int64_t mask;
        if (!have_block || b != blk) {
            prg_block_ctr(msg, b, block);
            blk = b;
            have_block = 1;
        }
        memcpy(&raw, block + 8 * (d & 3), 8);
        mask = (int64_t)(raw % span) + 1;
        out[i] = floormod(
            (int64_t)((uint64_t)summed[i] * (uint64_t)mask), delta);
    }
}

/* Fused Eq. 11 row span with numpy's per-term reduction order:
 * acc starts at 0; per share j: acc = (acc + (s[i]*z[i] mod p)) mod p. */
void repro_agg_span(const int64_t **shares, int64_t nshares,
                    const int64_t *z, int64_t lo, int64_t hi, int64_t p,
                    int64_t *out) {
    int64_t i, j;
    if (p == ((int64_t)1 << 31) - 1) {
        /* The repo's field prime.  The Mersenne fold computes the same
         * floored modulo as the generic loop, division-free; each
         * per-term accumulate stays below 2p, so one conditional
         * subtract is the whole reduction. */
        if (!agg_mersenne_best)
            agg_mersenne_best = resolve_agg_mersenne();
        agg_mersenne_best(shares, nshares, z, lo, hi, out);
        return;
    }
    for (i = lo; i < hi; i++) {
        uint64_t acc = 0;
        int64_t zi = z[i];
        for (j = 0; j < nshares; j++) {
            int64_t prod = (int64_t)((uint64_t)shares[j][i] * (uint64_t)zi);
            acc += (uint64_t)floormod(prod, p);
            acc = (uint64_t)floormod((int64_t)acc, p);
        }
        out[i] = (int64_t)acc;
    }
}
