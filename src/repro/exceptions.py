"""Exception hierarchy for the Prism reproduction.

Every error raised by this library derives from :class:`PrismError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the interesting sub-cases (bad parameters, protocol
violations, failed verification).
"""

from __future__ import annotations


class PrismError(Exception):
    """Base class for all errors raised by this library."""


class ParameterError(PrismError):
    """A system parameter is missing, inconsistent, or out of range.

    Raised by the initiator during parameter generation (e.g. when ``delta``
    does not divide ``eta - 1``) and by protocol entry points when the
    supplied parameter views are incompatible with the requested operation.
    """


class ShareError(PrismError):
    """Secret shares are malformed or insufficient for reconstruction."""


class ProtocolError(PrismError):
    """An entity observed a message that violates the Prism protocol.

    This includes structural violations such as a server attempting to open
    a channel to another server, or a round arriving out of order.
    """


class VerificationError(PrismError):
    """Result verification failed: a server misbehaved (or data corrupted).

    Carries the indices of the cells whose proof ``r1 * r2 mod eta != 1``
    when available, so callers can report *where* tampering was detected.
    """

    def __init__(self, message: str, failed_cells=None):
        super().__init__(message)
        self.failed_cells = list(failed_cells) if failed_cells is not None else None


class DomainError(PrismError):
    """A value falls outside the declared attribute domain."""


class QueryError(PrismError):
    """A high-level query is malformed or references unknown attributes."""


class AuthError(PrismError):
    """A request failed the serving gateway's tenancy checks.

    Raised for unknown bearer tokens, requests issued before a session
    authenticated, and cross-tenant access to a dataset the requesting
    tenant does not own and was not granted.  Enforced in the gateway's
    dispatch layer (:mod:`repro.serving.gateway`), never in individual
    handlers, and round-tripped through the wire codec so a remote
    rejection surfaces client-side as this same type.
    """


class AdmissionError(PrismError):
    """The serving gateway refused to admit a request.

    Raised when a tenant's token bucket is empty (rate limit) or the
    gateway's bounded in-flight queue is full — a typed, immediate
    rejection instead of a silent drop or unbounded queueing.  Carries
    ``retry_after`` (seconds until the token bucket would admit the
    request again) when the rejection came from a rate limit.
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class GatewayDisconnected(ProtocolError):
    """The serving gateway died (or dropped the session) mid-call.

    A :class:`ProtocolError` so transport-level handlers keep working,
    but typed so clients can distinguish "the *gateway* is gone —
    reconnect/fail over" from a protocol violation inside a healthy
    session.  Carries ``address`` — the last known ``host:port`` of the
    gateway — so a caller (or its error reporter) knows *which* gateway
    to re-dial without keeping its own bookkeeping.
    """

    def __init__(self, message: str, address: str | None = None):
        super().__init__(message)
        self.address = address
