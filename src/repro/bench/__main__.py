"""CLI for the experiment harness.

Usage::

    python -m repro.bench            # run every experiment
    python -m repro.bench fig3 fig5  # run a subset
    python -m repro.bench fig4 --json out.json
    REPRO_SCALE=5 python -m repro.bench table12   # 5x larger workloads
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import EXPERIMENTS
from repro.bench.reporting import dump_json


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the Prism paper's evaluation artefacts.",
    )
    parser.add_argument(
        "experiments", nargs="*", choices=[*EXPERIMENTS, []],
        help=f"which artefacts to regenerate (default: all of "
             f"{', '.join(EXPERIMENTS)})",
    )
    parser.add_argument("--json", metavar="PATH",
                        help="also dump structured results to a JSON file")
    args = parser.parse_args(argv)

    names = args.experiments or list(EXPERIMENTS)
    payloads = {}
    for name in names:
        payload = EXPERIMENTS[name]()
        payloads[name] = payload
        print(payload["text"])
        print()
    if args.json:
        dump_json(payloads, args.json)
        print(f"structured results written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
