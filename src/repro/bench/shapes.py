"""Programmatic checks of the paper's *shape* claims.

EXPERIMENTS.md asserts qualitative shapes (linear in m, linear in b,
monotone collapse with fill factor...).  These helpers turn those into
testable predicates over experiment payloads, so the claims cannot rot
silently: `tests/test_shapes.py` runs the experiments at toy scale and
asserts every shape.
"""

from __future__ import annotations

from scipy import stats

from repro.exceptions import ParameterError


def linear_fit(points) -> tuple[float, float, float]:
    """Least-squares fit of ``(x, y)`` pairs: returns (slope, intercept, r).

    Raises:
        ParameterError: with fewer than 3 points (r is meaningless).
    """
    points = list(points)
    if len(points) < 3:
        raise ParameterError("need at least 3 points for a fit")
    xs = [float(x) for x, _ in points]
    ys = [float(y) for _, y in points]
    result = stats.linregress(xs, ys)
    return float(result.slope), float(result.intercept), float(result.rvalue)


def is_linear_increasing(points, min_r: float = 0.9) -> bool:
    """True if y grows linearly in x (positive slope, correlation >= min_r)."""
    slope, _, r = linear_fit(points)
    return slope > 0 and r >= min_r


def is_monotone_decreasing(values) -> bool:
    """True if the sequence never increases."""
    values = list(values)
    return all(a >= b for a, b in zip(values, values[1:]))


def is_roughly_flat(values, tolerance: float = 3.0) -> bool:
    """True if max/min stays within ``tolerance`` (for flat-line claims).

    Timing lines regarded as "flat" in the paper (e.g. data-fetch time
    across thread counts) still jitter; a 3x band is deliberately loose —
    the claim being checked is "does not grow with x", not "constant".
    """
    values = [float(v) for v in values]
    if not values:
        raise ParameterError("no values supplied")
    low = min(values)
    if low <= 0:
        return max(values) - low < 1e-6 or low >= 0
    return max(values) / low <= tolerance


def ratio(points_or_values, numerator_index: int = -1,
          denominator_index: int = 0) -> float:
    """Last-to-first (by default) y-ratio of a series — growth factor."""
    items = list(points_or_values)
    if not items:
        raise ParameterError("no values supplied")
    def y(item):
        return float(item[1]) if isinstance(item, (tuple, list)) else float(item)
    denom = y(items[denominator_index])
    if denom == 0:
        raise ParameterError("zero denominator in ratio")
    return y(items[numerator_index]) / denom
