"""Shared machinery for the §8 experiments.

Scaling: the paper ran 5M/20M-value domains on an AWS testbed; this
reproduction defaults to 20k/80k cells so every experiment finishes on a
laptop, and multiplies all sizes by the ``REPRO_SCALE`` environment
variable (set ``REPRO_SCALE=10`` for 200k/800k, etc.).  All claims the
experiments check are shape claims (linearity, ratios, crossovers), which
are scale-invariant.
"""

from __future__ import annotations

import os
import time

from repro.core.system import PrismSystem
from repro.data.tpch import generate_fleet, lineitem_domain

#: Unscaled domain sizes standing in for the paper's 5M / 20M.
SMALL_DOMAIN = 20_000
LARGE_DOMAIN = 80_000

#: Default owner count for Exp 1 (the paper fixes 10 owners there).
DEFAULT_OWNERS = 10

#: Rows each owner generates, as a fraction of the domain size.
ROWS_FRACTION = 0.25


def scale() -> float:
    """The ``REPRO_SCALE`` multiplier (default 1.0)."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def scaled(size: int) -> int:
    """Apply the global scale factor to a base size."""
    return max(16, int(size * scale()))


def small_domain_size() -> int:
    """Scaled stand-in for the paper's 5M OK domain."""
    return scaled(SMALL_DOMAIN)


def large_domain_size() -> int:
    """Scaled stand-in for the paper's 20M OK domain."""
    return scaled(LARGE_DOMAIN)


def build_system(num_owners: int = DEFAULT_OWNERS,
                 domain_size: int | None = None,
                 agg_attributes: tuple = ("DT", "PK", "LN", "SK"),
                 with_verification: bool = False,
                 num_threads: int = 1, seed: int = 7,
                 rows_per_owner: int | None = None,
                 **system_kwargs) -> PrismSystem:
    """A ready-to-query deployment over synthetic LineItem fragments.

    Extra keyword arguments reach :meth:`PrismSystem.build` directly —
    e.g. ``deployment="subprocess"`` or ``num_shards="auto"`` for the
    deployment/sharding benches.
    """
    domain_size = domain_size if domain_size is not None else small_domain_size()
    rows = rows_per_owner if rows_per_owner is not None else max(
        64, int(domain_size * ROWS_FRACTION))
    domain = lineitem_domain(domain_size)
    relations = generate_fleet(num_owners, domain, rows, seed=seed)
    return PrismSystem.build(
        relations, domain, "OK", agg_attributes=agg_attributes,
        with_verification=with_verification, num_threads=num_threads,
        seed=seed,
        # LineItem values are small; per-group sums stay far below this.
        value_bound=100_000,
        **system_kwargs,
    )


def timed(fn, *args, **kwargs) -> tuple[float, object]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def one_common_value(system: PrismSystem) -> list:
    """A single common value for isolating §6.3/§6.4 round-2 cost.

    The paper's extrema exposition assumes one common item; benches follow
    it so the per-value announcer round is measured once.
    """
    result = system.psi("OK")
    if not result.values:
        raise RuntimeError("fleet has an empty intersection; raise overlap")
    return [result.values[0]]
