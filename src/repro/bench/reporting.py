"""Paper-style output for the experiment harness.

Every experiment returns a structured dict; these helpers render it the
way the paper presents it — an ASCII table for the table-artefacts and a
labelled series block for the figure-artefacts — and optionally dump JSON
for downstream plotting.
"""

from __future__ import annotations

import json
from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row]
                                           for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: dict, x_label: str, y_label: str,
                  title: str = "") -> str:
    """Render figure data as labelled series (one line per curve).

    ``series`` maps curve name → list of ``(x, y)`` pairs.
    """
    lines = []
    if title:
        lines.append(title)
    lines.append(f"x = {x_label}, y = {y_label}")
    for name, points in series.items():
        pts = "  ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in points)
        lines.append(f"  {name}: {pts}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def dump_json(payload: dict, path: str) -> None:
    """Write an experiment's structured result to a JSON file."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, default=str)
