"""The seven §8 experiments, each regenerating a paper table or figure.

Every function returns a structured payload (also JSON-dumpable) and a
``text`` field rendered the way the paper presents the artefact.  The
pytest-benchmark targets in ``benchmarks/`` wrap the same building blocks
with statistical repetition; these functions are the one-shot "print the
paper's rows" harness behind ``python -m repro.bench``.
"""

from __future__ import annotations

import time

from repro.baselines.bloom import bloom_psi
from repro.baselines.dh_psi import dh_psi
from repro.baselines.freedman import FreedmanPSI
from repro.baselines.naive import plaintext_intersection
from repro.bench.harness import (
    build_system,
    large_domain_size,
    one_common_value,
    scaled,
    small_domain_size,
    timed,
)
from repro.bench.reporting import format_series, format_table
from repro.core.bucketized import simulate_actual_domain_size
from repro.core.psi import run_psi
from repro.data.tpch import generate_fleet, lineitem_domain

#: The operation suite of Fig. 3, in the paper's legend order.
EXP1_OPERATIONS = ("PSI", "PSU", "PSI Count", "PSI Sum", "PSI Avg",
                   "PSI Median", "PSI Max")


def _run_operation(system, op: str, num_threads: int, common=None):
    """Run one Fig.-3 operation; returns its PhaseTimings."""
    if op == "PSI":
        return system.psi("OK", num_threads=num_threads).timings
    if op == "PSU":
        return system.psu("OK", num_threads=num_threads).timings
    if op == "PSI Count":
        return system.psi_count("OK", num_threads=num_threads).timings
    if op == "PSI Sum":
        return system.psi_sum("OK", "DT",
                              num_threads=num_threads)["DT"].timings
    if op == "PSI Avg":
        return system.psi_average("OK", "DT",
                                  num_threads=num_threads)["DT"].timings
    if op == "PSI Median":
        return system.psi_median("OK", "PK", num_threads=num_threads,
                                 common_values=common).timings
    if op == "PSI Max":
        return system.psi_max("OK", "PK", num_threads=num_threads,
                              common_values=common).timings
    raise ValueError(f"unknown operation {op!r}")


def exp1_threads(domain_size: int | None = None, num_owners: int = 10,
                 thread_counts=(1, 2, 3, 4, 5), seed: int = 7) -> dict:
    """Fig. 3: operation latency vs server thread count (10 owners).

    For the extrema/median rows the PSI round runs threaded and the
    announcer round runs once (single common value, per the §6.3
    exposition), so the threading effect shows on the dominant kernel.
    """
    domain_size = domain_size or small_domain_size()
    system = build_system(num_owners=num_owners, domain_size=domain_size,
                          seed=seed)
    common = one_common_value(system)
    series: dict[str, list] = {op: [] for op in EXP1_OPERATIONS}
    series["Data Fetch Time"] = []
    for threads in thread_counts:
        # The unified execution path folds data fetch into the fused
        # sweep, so the paper's separate fetch phase is probed via the
        # sequential runner (which still times it apart) — reusing the
        # run the extrema rows need anyway.
        fetch_probe = None
        for op in EXP1_OPERATIONS:
            needs_common = op in ("PSI Median", "PSI Max")
            timings = _run_operation(system, op, threads,
                                     common if needs_common else None)
            # PSI max/median with explicit common values skip the PSI
            # round; add it back so the row reflects the full query.
            if needs_common:
                psi_t = run_psi(system, "OK", num_threads=threads).timings
                total = (timings.server_seconds + timings.announcer_seconds
                         + psi_t.server_seconds)
                if fetch_probe is None:
                    fetch_probe = psi_t.fetch_seconds
            else:
                total = timings.server_seconds
            series[op].append((threads, total))
        if fetch_probe is None:
            fetch_probe = run_psi(system, "OK",
                                  num_threads=threads).timings.fetch_seconds
        series["Data Fetch Time"].append((threads, fetch_probe))
    text = format_series(
        series, "threads", "time (s)",
        title=f"Fig. 3 — Prism multi-threaded performance "
              f"(domain={domain_size}, owners={num_owners})")
    return {"experiment": "fig3", "domain_size": domain_size,
            "num_owners": num_owners, "series": series, "text": text}


def exp2_multiattr(domain_sizes=None, attr_counts=(1, 2, 3, 4),
                   num_owners: int = 10, seed: int = 7) -> dict:
    """Table 12: sum/max over 1–4 aggregation attributes."""
    domain_sizes = domain_sizes or [small_domain_size(), large_domain_size()]
    attrs = ("DT", "PK", "LN", "SK")
    rows = []
    payload = {}
    for b in domain_sizes:
        system = build_system(num_owners=num_owners, domain_size=b, seed=seed)
        common = one_common_value(system)
        sums, maxes = [], []
        for k in attr_counts:
            secs, _ = timed(system.psi_sum, "OK", list(attrs[:k]))
            sums.append(secs)
            start = time.perf_counter()
            system.psi("OK")  # round 1 of the extrema query
            for a in attrs[:k]:
                system.psi_max("OK", a, reveal_holders=False,
                               common_values=common)
            maxes.append(time.perf_counter() - start)
        rows.append([b] + [f"{s:.3f}" for s in sums] + [f"{m:.3f}" for m in maxes])
        payload[b] = {"sum": sums, "max": maxes}
    headers = (["Domain size"]
               + [f"Sum x{k}" for k in attr_counts]
               + [f"Max x{k}" for k in attr_counts])
    text = format_table(headers, rows,
                        title="Table 12 — multi-column aggregation (seconds)")
    return {"experiment": "table12", "attr_counts": list(attr_counts),
            "results": payload, "text": text}


def exp3_owners(owner_counts=(10, 20, 30, 40, 50),
                domain_size: int | None = None, seed: int = 7) -> dict:
    """Fig. 4: server processing time vs number of DB owners."""
    domain_size = domain_size or small_domain_size()
    ops = ("PSI", "PSU", "PSI Count", "PSI Sum")
    series: dict[str, list] = {op: [] for op in ops}
    for m in owner_counts:
        system = build_system(num_owners=m, domain_size=domain_size, seed=seed)
        for op in ops:
            timings = _run_operation(system, op, 1)
            series[op].append((m, timings.server_seconds))
    text = format_series(
        series, "#DB owners", "server time (s)",
        title=f"Fig. 4 — scaling with DB owners (domain={domain_size})")
    return {"experiment": "fig4", "domain_size": domain_size,
            "series": series, "text": text}


def exp4_owner_time(domain_sizes=None, num_owners: int = 10,
                    seed: int = 7) -> dict:
    """Table 14: DB-owner processing time in result construction."""
    domain_sizes = domain_sizes or [small_domain_size(), large_domain_size()]
    ops = ("PSI", "Count", "Sum", "Avg", "Max", "PSU")
    per_domain = {}
    for b in domain_sizes:
        system = build_system(num_owners=num_owners, domain_size=b, seed=seed)
        common = one_common_value(system)
        times = {
            "PSI": system.psi("OK").timings.owner_seconds,
            "Count": system.psi_count("OK").timings.owner_seconds,
            "Sum": system.psi_sum("OK", "DT")["DT"].timings.owner_seconds,
            "Avg": system.psi_average("OK", "DT")["DT"].timings.owner_seconds,
            "Max": system.psi_max("OK", "PK", reveal_holders=False,
                                  common_values=common).timings.owner_seconds,
            "PSU": system.psu("OK").timings.owner_seconds,
        }
        per_domain[b] = times
    rows = [[op] + [f"{per_domain[b][op]:.4f}" for b in domain_sizes]
            for op in ops]
    headers = ["Operation"] + [f"b={b}" for b in domain_sizes]
    text = format_table(
        headers, rows,
        title="Table 14 — owner-side result-construction time (seconds)")
    return {"experiment": "table14", "results": per_domain, "text": text}


def exp5_bucketization(fill_factors=(1.0, 0.1, 0.01, 0.001, 0.0001),
                       num_leaves: int | None = None, fanout: int = 10,
                       seed: int = 7) -> dict:
    """Fig. 5: bucketization actual-domain-size vs fill factor."""
    num_leaves = num_leaves or scaled(1_000_000)
    with_bucket = []
    without = []
    for ff in fill_factors:
        actual = simulate_actual_domain_size(num_leaves, fanout, ff, seed)
        with_bucket.append((f"{ff * 100:g}%", actual))
        without.append((f"{ff * 100:g}%", num_leaves))
    series = {"W Bucketization": with_bucket, "W/O Bucketization": without}
    text = format_series(
        series, "fill factor", "actual domain size",
        title=f"Fig. 5 — impact of bucketization "
              f"(leaves={num_leaves}, fanout={fanout})")
    return {"experiment": "fig5", "num_leaves": num_leaves, "fanout": fanout,
            "series": series, "text": text}


def exp6_comparison(prism_domain: int | None = None, freedman_n: int = 96,
                    seed: int = 7) -> dict:
    """Table 13: Prism (2 owners) against the baseline families.

    Freedman PSI is O(n²) Paillier exponentiations, so it runs at a small
    ``n`` and the per-element cost column is what carries the comparison —
    matching how the paper cites the competitors' own reported numbers.
    """
    prism_domain = prism_domain or small_domain_size()
    system = build_system(num_owners=2, domain_size=prism_domain, seed=seed)
    prism_secs, prism_result = timed(system.psi, "OK")
    sets = [rel.distinct("OK") for rel in system.relations]

    plain_secs, plain_result = timed(plaintext_intersection, sets)
    bloom_secs, bloom_result = timed(bloom_psi, [sets[0], sets[1]])
    dh_secs, dh_result = timed(dh_psi, sets[0], sets[1], seed)

    small_sets = [sorted(sets[0])[:freedman_n], sorted(sets[1])[:freedman_n]]
    freedman = FreedmanPSI(key_bits=96, seed=seed)
    freedman_secs, freedman_result = timed(
        freedman.intersect, small_sets[0], small_sets[1])

    rows = [
        ["Prism (this work)", prism_domain, f"{prism_secs:.3f}",
         f"{prism_secs / prism_domain * 1e6:.3f}", "PSI/PSU/aggr", "Yes", "No"],
        ["Freedman+Paillier [23,39]", freedman_n, f"{freedman_secs:.3f}",
         f"{freedman_secs / freedman_n * 1e6:.0f}", "PSI", "No", "N/A"],
        ["DH-PSI ([19]-style)", len(sets[0]), f"{dh_secs:.3f}",
         f"{dh_secs / len(sets[0]) * 1e6:.1f}", "PSI", "No", "N/A"],
        ["Bloom-filter PSI [47]", len(sets[0]), f"{bloom_secs:.3f}",
         f"{bloom_secs / len(sets[0]) * 1e6:.3f}", "PSI", "No", "N/A"],
        ["Plaintext (insecure, [37]-like)", len(sets[0]), f"{plain_secs:.4f}",
         f"{plain_secs / len(sets[0]) * 1e6:.4f}", "all (leaks)", "No", "N/A"],
    ]
    headers = ["System", "n", "time (s)", "us/element", "operations",
               "verification", "server comm"]
    text = format_table(headers, rows,
                        title="Table 13 — comparison with other approaches "
                              "(2 DB owners)")
    return {
        "experiment": "table13",
        "prism": {"n": prism_domain, "seconds": prism_secs,
                  "result_size": len(prism_result)},
        "freedman": {"n": freedman_n, "seconds": freedman_secs,
                     "result_size": len(freedman_result)},
        "dh": {"n": len(sets[0]), "seconds": dh_secs,
               "result_size": len(dh_result)},
        "bloom": {"n": len(sets[0]), "seconds": bloom_secs,
                  "result_size": len(bloom_result)},
        "plaintext": {"n": len(sets[0]), "seconds": plain_secs,
                      "result_size": len(plain_result)},
        "text": text,
    }


def exp7_sharegen(domain_size: int | None = None, num_owners: int = 2,
                  seed: int = 7) -> dict:
    """§8.1 prose: share-generation time, data vs verification columns."""
    domain_size = domain_size or small_domain_size()
    domain = lineitem_domain(domain_size)
    rows = max(64, int(domain_size * 0.25))
    relations = generate_fleet(num_owners, domain, rows, seed=seed)

    from repro.core.system import PrismSystem
    system_plain = PrismSystem(relations, domain, seed=seed,
                               value_bound=100_000)
    data_secs, _ = timed(system_plain.outsource, "OK",
                         ("DT", "PK", "LN", "SK"), False)
    system_verif = PrismSystem(relations, domain, seed=seed,
                               value_bound=100_000)
    all_secs, _ = timed(system_verif.outsource, "OK",
                        ("DT", "PK", "LN", "SK"), True)
    verification_secs = max(0.0, all_secs - data_secs)
    per_vcolumn = verification_secs / 5  # vOK..vDT as in Table 11

    rows_out = [
        ["5 data columns + aOK", f"{data_secs:.3f}"],
        ["5 verification columns (total)", f"{verification_secs:.3f}"],
        ["per verification column", f"{per_vcolumn:.3f}"],
    ]
    text = format_table(["Share generation step", "time (s)"], rows_out,
                        title=f"§8.1 — share-generation time "
                              f"(domain={domain_size}, owners={num_owners})")
    return {"experiment": "sharegen", "domain_size": domain_size,
            "data_seconds": data_secs,
            "verification_seconds": verification_secs,
            "per_verification_column": per_vcolumn, "text": text}


#: CLI name → experiment function.
EXPERIMENTS = {
    "fig3": exp1_threads,
    "table12": exp2_multiattr,
    "fig4": exp3_owners,
    "table14": exp4_owner_time,
    "fig5": exp5_bucketization,
    "table13": exp6_comparison,
    "sharegen": exp7_sharegen,
}
