"""Experiment harness regenerating every table and figure of §8."""

from repro.bench.experiments import (
    EXPERIMENTS,
    exp1_threads,
    exp2_multiattr,
    exp3_owners,
    exp4_owner_time,
    exp5_bucketization,
    exp6_comparison,
    exp7_sharegen,
)
from repro.bench.harness import (
    build_system,
    large_domain_size,
    one_common_value,
    small_domain_size,
)
from repro.bench.reporting import dump_json, format_series, format_table
from repro.bench.shapes import (
    is_linear_increasing,
    is_monotone_decreasing,
    is_roughly_flat,
    linear_fit,
    ratio,
)

__all__ = [
    "EXPERIMENTS",
    "build_system",
    "dump_json",
    "exp1_threads",
    "exp2_multiattr",
    "exp3_owners",
    "exp4_owner_time",
    "exp5_bucketization",
    "exp6_comparison",
    "exp7_sharegen",
    "format_series",
    "format_table",
    "is_linear_increasing",
    "is_monotone_decreasing",
    "is_roughly_flat",
    "large_domain_size",
    "linear_fit",
    "one_common_value",
    "ratio",
    "small_domain_size",
]
