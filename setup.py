"""Package configuration for the Prism reproduction."""

import pathlib

from setuptools import find_packages, setup

README = pathlib.Path(__file__).with_name("README.md")

setup(
    name="prism-repro",
    version="1.0.0",
    description=(
        "Reproduction of Prism: private verifiable set computation over "
        "multi-owner outsourced databases (SIGMOD 2021), with a batched "
        "multi-query execution engine"
    ),
    long_description=README.read_text(encoding="utf-8")
    if README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
        "pytest>=7.0",
    ],
    extras_require={
        "test": [
            "pytest>=7.0",
            "pytest-benchmark",
            "hypothesis",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro-bench=repro.bench.__main__:main",
            "repro-entity-host=repro.network.host:main",
            "repro-gateway=repro.serving.gateway:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Security :: Cryptography",
        "Topic :: Database",
    ],
)
