"""Setuptools shim (the build configuration lives in pyproject.toml)."""

from setuptools import setup

setup()
