"""Unit and property tests for permutation functions and Eq. (1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.permutation import Permutation, equation1_quadruple
from repro.exceptions import ParameterError


class TestBasics:
    def test_identity(self):
        p = Permutation.identity(5)
        values = np.asarray([10, 20, 30, 40, 50])
        assert np.array_equal(p.apply(values), values)
        assert np.array_equal(p.invert(values), values)

    def test_apply_semantics(self):
        # out[mapping[i]] = in[i]
        p = Permutation(np.asarray([2, 0, 1]))
        out = p.apply(np.asarray([10, 20, 30]))
        assert out.tolist() == [20, 30, 10]

    def test_invert_undoes_apply(self):
        p = Permutation.random(20, seed=3)
        values = np.arange(100, 120)
        assert np.array_equal(p.invert(p.apply(values)), values)
        assert np.array_equal(p.apply(p.invert(values)), values)

    def test_inverse_object(self):
        p = Permutation.random(15, seed=4)
        values = np.arange(15)
        assert np.array_equal(p.inverse().apply(p.apply(values)), values)

    def test_index_ops(self):
        p = Permutation(np.asarray([2, 0, 1]))
        assert p.apply_index(0) == 2
        assert p.invert_index(2) == 0
        for i in range(3):
            assert p.invert_index(p.apply_index(i)) == i

    def test_random_is_deterministic(self):
        assert Permutation.random(30, 1) == Permutation.random(30, 1)
        assert Permutation.random(30, 1) != Permutation.random(30, 2)

    def test_hash_consistent_with_eq(self):
        a, b = Permutation.random(10, 5), Permutation.random(10, 5)
        assert a == b
        assert hash(a) == hash(b)


class TestCompose:
    def test_compose_order(self):
        # compose(q, p) applies p first, then q.
        p = Permutation(np.asarray([1, 2, 0]))
        q = Permutation(np.asarray([2, 1, 0]))
        values = np.asarray([10, 20, 30])
        assert np.array_equal(q.compose(p).apply(values),
                              q.apply(p.apply(values)))

    @given(st.integers(2, 64), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_compose_property(self, n, seed):
        p = Permutation.random(n, seed, "p")
        q = Permutation.random(n, seed, "q")
        values = np.arange(n) * 7
        assert np.array_equal(q.compose(p).apply(values),
                              q.apply(p.apply(values)))

    def test_size_mismatch(self):
        with pytest.raises(ParameterError):
            Permutation.identity(3).compose(Permutation.identity(4))


class TestValidation:
    def test_non_permutation_rejected(self):
        with pytest.raises(ParameterError):
            Permutation(np.asarray([0, 0, 1]))
        with pytest.raises(ParameterError):
            Permutation(np.asarray([1, 2, 3]))

    def test_2d_rejected(self):
        with pytest.raises(ParameterError):
            Permutation(np.zeros((2, 2), dtype=np.int64))

    def test_length_mismatch_on_apply(self):
        p = Permutation.identity(3)
        with pytest.raises(ParameterError):
            p.apply(np.arange(4))
        with pytest.raises(ParameterError):
            p.invert(np.arange(4))


class TestEquationOne:
    @given(st.integers(2, 128), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_quadruple_law(self, n, seed):
        # PF_s1 ⊙ PF_db1 == PF_s2 ⊙ PF_db2 == PF_i (Eq. 1).
        q = equation1_quadruple(n, seed)
        left = q["pf_s1"].compose(q["pf_db1"])
        right = q["pf_s2"].compose(q["pf_db2"])
        assert left == q["pf_i"]
        assert right == q["pf_i"]

    def test_halves_differ(self):
        # The two decompositions should not be trivially identical.
        q = equation1_quadruple(64, 7)
        assert q["pf_db1"] != q["pf_db2"]
        assert q["pf_s1"] != q["pf_s2"]

    def test_streams_align_under_quadruple(self):
        # The count-verification pairing: permuting a vector with PF_db1
        # then PF_s1 equals permuting with PF_db2 then PF_s2.
        q = equation1_quadruple(32, 9)
        values = np.arange(32) + 100
        via1 = q["pf_s1"].apply(q["pf_db1"].apply(values))
        via2 = q["pf_s2"].apply(q["pf_db2"].apply(values))
        assert np.array_equal(via1, via2)
