"""Cross-feature integration tests: feature combinations that must compose.

Each test exercises two or more orthogonal features together (threads ×
verification, subsets × aggregation, serialization × adversaries, hashed
domains × counts, ...) — the places where implementations usually crack.
"""

import pytest

from repro import (
    Domain,
    HashedDomain,
    PrismSystem,
    Relation,
    VerificationError,
)
from repro.entities.adversary import InjectFakeServer

DOMAIN32 = list(range(1, 33))


def rel_fleet(sets, with_values=False):
    relations = []
    for i, s in enumerate(sets):
        cols = {"k": sorted(s)}
        if with_values:
            cols["v"] = [(x * 3) % 17 + 1 for x in sorted(s)]
        relations.append(Relation(f"o{i}", cols))
    return relations


class TestThreadsTimesVerification:
    def test_threaded_verified_psi(self):
        system = PrismSystem.build(
            rel_fleet([{1, 2, 9}, {2, 9, 30}]), Domain("k", DOMAIN32), "k",
            with_verification=True, num_threads=4, seed=1)
        result = system.psi("k", verify=True)
        assert result.verified
        assert set(result.values) == {2, 9}

    def test_threaded_verified_sum(self):
        system = PrismSystem.build(
            rel_fleet([{1, 2}, {2, 3}], with_values=True),
            Domain("k", DOMAIN32), "k", agg_attributes=("v",),
            with_verification=True, num_threads=3, seed=1)
        result = system.psi_sum("k", "v", verify=True)["v"]
        assert result.verified


class TestSubsetsTimesAggregation:
    def test_subset_owner_sum(self):
        # Aggregate over only owners 0 and 2 of a 3-owner fleet.
        relations = rel_fleet([{1, 2}, {5}, {2, 9}], with_values=True)
        system = PrismSystem.build(relations, Domain("k", DOMAIN32), "k",
                                   agg_attributes=("v",), seed=4)
        result = system.psi_sum("k", "v", owner_ids=[0, 2])["v"]
        expect = {2: relations[0].group_by_sum("k", "v")[2]
                  + relations[2].group_by_sum("k", "v")[2]}
        assert result.per_value == expect

    def test_subset_psu_count(self):
        system = PrismSystem.build(
            rel_fleet([{1}, {2}, {3}]), Domain("k", DOMAIN32), "k", seed=4)
        assert system.psu_count("k", owner_ids=[1, 2]).count == 2


class TestSerializationTimesAdversaries:
    def test_adversary_detected_over_wire(self):
        factory = lambda i, p: InjectFakeServer(i, p, cells=(4,))
        system = PrismSystem.build(
            rel_fleet([{1, 2}, {2, 3}]), Domain("k", DOMAIN32), "k",
            with_verification=True, serialize_transport=True, seed=2,
            server_factories={0: factory})
        with pytest.raises(VerificationError):
            system.psi("k", verify=True)


class TestHashedDomainTimesCounts:
    def test_count_over_hashed_domain(self):
        relations = [Relation("a", {"uid": ["x", "y", "z"]}),
                     Relation("b", {"uid": ["y", "z", "w"]})]
        hd = HashedDomain("uid", 2048, seed=5)
        system = PrismSystem.build(relations, hd, "uid", seed=5)
        assert system.psi_count("uid").count == 2
        assert system.psu_count("uid").count == 4


class TestMaskZerosTimesSubsets:
    def test_masked_subset_query(self):
        system = PrismSystem.build(
            rel_fleet([{1, 5}, {5, 9}, {7}]), Domain("k", DOMAIN32), "k",
            mask_zeros=True, seed=6)
        assert system.psi("k", owner_ids=[0, 1]).values == [5]


class TestBucketizedTimesThreads:
    def test_threaded_bucketized(self):
        system = PrismSystem.build(
            rel_fleet([{4, 7, 30}, {7, 30, 31}]), Domain("k", DOMAIN32),
            "k", num_threads=4, seed=7)
        system.outsource_bucketized("k", fanout=4)
        result, _ = system.bucketized_psi("k")
        assert set(result.values) == {7, 30}


class TestQuerierIndependence:
    def test_every_owner_reaches_same_answer(self):
        sets = [{1, 2, 9}, {2, 9, 12}, {2, 9, 30}]
        system = PrismSystem.build(rel_fleet(sets), Domain("k", DOMAIN32),
                                   "k", seed=8)
        answers = [set(system.psi("k", querier=q).values)
                   for q in range(len(sets))]
        assert all(a == {2, 9} for a in answers)

    def test_aggregate_querier_independence(self):
        relations = rel_fleet([{1, 2}, {2, 3}], with_values=True)
        system = PrismSystem.build(relations, Domain("k", DOMAIN32), "k",
                                   agg_attributes=("v",), seed=8)
        a = system.psi_sum("k", "v", querier=0)["v"].per_value
        b = system.psi_sum("k", "v", querier=1)["v"].per_value
        assert a == b


class TestRepeatedQueriesOneDeployment:
    def test_interleaved_query_mix(self):
        relations = rel_fleet([{1, 2, 9}, {2, 9, 30}], with_values=True)
        system = PrismSystem.build(relations, Domain("k", DOMAIN32), "k",
                                   agg_attributes=("v",),
                                   with_verification=True, seed=9)
        for _ in range(3):
            assert set(system.psi("k", verify=True).values) == {2, 9}
            assert system.psi_count("k").count == 2
            assert set(system.psu("k").values) == {1, 2, 9, 30}
            sums = system.psi_sum("k", "v")["v"].per_value
            assert set(sums) == {2, 9}
