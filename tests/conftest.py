"""Shared fixtures: the paper's running example (Tables 1–3) and helpers."""

from __future__ import annotations

import pytest

from repro import Domain, PrismSystem, Relation


@pytest.fixture()
def hospital_relations():
    """Tables 1–3 of the paper: three hospitals' patient relations."""
    hospital1 = Relation("hospital1", {
        "name": ["John", "Adam", "Mike"],
        "age": [4, 6, 2],
        "disease": ["Cancer", "Cancer", "Heart"],
        "cost": [100, 200, 300],
    })
    hospital2 = Relation("hospital2", {
        "name": ["John", "Adam", "Bob"],
        "age": [8, 5, 4],
        "disease": ["Cancer", "Fever", "Fever"],
        "cost": [100, 70, 50],
    })
    hospital3 = Relation("hospital3", {
        "name": ["Carl", "John", "Lisa"],
        "age": [8, 4, 5],
        "disease": ["Cancer", "Cancer", "Heart"],
        "cost": [300, 700, 500],
    })
    return [hospital1, hospital2, hospital3]


@pytest.fixture()
def disease_domain():
    """The disease attribute domain shared by the hospitals."""
    return Domain("disease", ["Cancer", "Fever", "Heart"])


@pytest.fixture()
def hospital_system(hospital_relations, disease_domain):
    """A fully outsourced deployment over the running example."""
    return PrismSystem.build(
        hospital_relations, disease_domain, "disease",
        agg_attributes=("cost", "age"), with_verification=True, seed=11,
    )


def make_system(sets, seed=0, with_verification=False, domain_values=None,
                **kwargs):
    """Deployment over plain value sets (one single-column relation each)."""
    values = domain_values
    if values is None:
        values = sorted({v for s in sets for v in s})
        if not values:
            values = [0]
    relations = [
        Relation(f"owner{i}", {"A": sorted(s)}) for i, s in enumerate(sets)
    ]
    domain = Domain("A", values)
    system = PrismSystem.build(relations, domain, "A",
                               with_verification=with_verification,
                               seed=seed, **kwargs)
    return system
