"""End-to-end PSU tests against the plaintext oracle (§7)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.psu import psu_reference
from repro.exceptions import ProtocolError
from tests.conftest import make_system

DOMAIN16 = list(range(1, 17))


class TestPsuCorrectness:
    def test_paper_example(self, hospital_system):
        result = hospital_system.psu("disease")
        assert sorted(result.values) == ["Cancer", "Fever", "Heart"]

    def test_matches_oracle(self):
        sets = [{1, 2}, {2, 5}, {9}]
        system = make_system(sets, domain_values=DOMAIN16)
        assert set(system.psu("A").values) == {1, 2, 5, 9}

    def test_disjoint_sets(self):
        system = make_system([{1}, {5}, {9}], domain_values=DOMAIN16)
        assert set(system.psu("A").values) == {1, 5, 9}

    def test_all_empty(self):
        system = make_system([set(), set()], domain_values=DOMAIN16)
        assert system.psu("A").values == []

    def test_full_domain(self):
        system = make_system([set(DOMAIN16[:8]), set(DOMAIN16[8:])],
                             domain_values=DOMAIN16)
        assert set(system.psu("A").values) == set(DOMAIN16)

    @given(st.lists(st.sets(st.integers(1, 24)), min_size=2, max_size=6),
           st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_oracle_property(self, sets, seed):
        system = make_system(sets, seed=seed, domain_values=list(range(1, 25)))
        expected = set()
        for s in sets:
            expected |= s
        assert set(system.psu("A").values) == expected

    def test_subset_owner_query(self):
        system = make_system([{1}, {2}, {3}], domain_values=DOMAIN16)
        assert set(system.psu("A", owner_ids=[0, 2]).values) == {1, 3}

    def test_repeat_queries_fresh_masks(self):
        # Nonce freshness: two runs give the same membership with
        # different masked vectors.
        system = make_system([{1, 4}, {4, 8}], domain_values=DOMAIN16)
        first = system.psu("A")
        second = system.psu("A")
        assert set(first.values) == set(second.values) == {1, 4, 8}


class TestPsuPrivacyShape:
    def test_single_round(self):
        system = make_system([{1}, {2}], domain_values=DOMAIN16)
        system.transport.reset()
        assert system.psu("A").traffic["rounds"] == 1

    def test_no_server_communication(self):
        system = make_system([{1}, {2}], domain_values=DOMAIN16)
        assert system.psu("A").traffic["server_to_server_bytes"] == 0

    def test_masked_counts_hide_multiplicity(self):
        # A value held by 1 owner and a value held by all owners both
        # surface as "present"; the owner-visible sums must not equal the
        # multiplicities themselves for all cells (masking happened).
        sets = [{1, 2}, {2}, {2}]
        system = make_system(sets, domain_values=DOMAIN16)
        out0 = system.servers[0].psu_round("A", query_nonce=99)
        out1 = system.servers[1].psu_round("A", query_nonce=99)
        delta = system.initiator.delta
        combined = (out0 + out1) % delta
        # Cell of value 2 would be 3 without masking; with masking it is
        # 3 * rand mod delta, which is 3 only with probability ~1/delta.
        cell2 = system.domain.cell_of(2)
        cell1 = system.domain.cell_of(1)
        assert combined[cell2] != 0
        assert combined[cell1] != 0
        assert not (combined[cell1] == 1 and combined[cell2] == 3)

    def test_reference_requires_relations(self):
        with pytest.raises(ProtocolError):
            psu_reference([], "A")
