"""Unit tests for the server kernels (Eq. 3, 7, 11, 18 and threading)."""

import numpy as np
import pytest

from repro.data.domain import Domain
from repro.data.relation import Relation
from repro.entities.initiator import Initiator
from repro.entities.owner import DBOwner
from repro.entities.server import PrismServer, _chunk_bounds
from repro.exceptions import ProtocolError


def deploy(sets, seed=0, num_owners=None, domain_size=None):
    values = sorted({v for s in sets for v in s})
    domain = Domain("A", values if domain_size is None
                    else range(1, domain_size + 1))
    m = num_owners or len(sets)
    initiator = Initiator(m, domain, seed=seed)
    owners = [DBOwner(i, initiator.owner_params(),
                      Relation(f"o{i}", {"A": sorted(s)}), seed=seed)
              for i, s in enumerate(sets)]
    servers = [PrismServer(i, initiator.server_params(i)) for i in range(3)]
    for owner in owners:
        owner.outsource(servers, "A", with_verification=True)
    return initiator, owners, servers


class TestChunking:
    def test_chunk_bounds_cover_range(self):
        for n in (0, 1, 7, 100):
            for chunks in (1, 3, 8):
                bounds = _chunk_bounds(n, chunks)
                covered = []
                for lo, hi in bounds:
                    covered.extend(range(lo, hi))
                assert covered == list(range(n))

    def test_no_more_chunks_than_elements(self):
        assert len(_chunk_bounds(3, 10)) <= 3


class TestPsiKernel:
    def test_matches_equation3(self):
        # Verify the kernel against a direct computation of Eq. 3.
        initiator, owners, servers = deploy(
            [{1, 2, 5}, {2, 5, 7}, {2, 7}], seed=4)
        delta = initiator.delta
        for server in servers[:2]:
            shares = server.fetch_additive("A")
            m_share = server.params.m_share
            expect = []
            for i in range(len(shares[0])):
                total = sum(int(s[i]) for s in shares) % delta
                e = (total - m_share) % delta
                expect.append(pow(initiator.group.g, e,
                                  initiator.group.eta_prime))
            out = server.psi_round("A")
            assert out.tolist() == expect

    def test_thread_counts_agree(self):
        _, _, servers = deploy([set(range(1, 40)), set(range(20, 60))])
        base = servers[0].psi_round("A", num_threads=1)
        for threads in (2, 3, 8):
            assert np.array_equal(servers[0].psi_round("A", threads), base)

    def test_subset_m_shares_sum(self):
        initiator, _, servers = deploy([{1, 2}, {2, 3}, {3, 4}])
        delta = initiator.delta
        s0 = servers[0]._subset_m_share(2)
        s1 = servers[1]._subset_m_share(2)
        assert (s0 + s1) % delta == 2

    def test_output_in_eta_prime_range(self):
        _, _, servers = deploy([{1, 2}, {2, 3}])
        out = servers[0].psi_round("A")
        assert out.min() >= 0
        assert out.max() < servers[0].params.group.eta_prime


class TestOtherKernels:
    def test_verification_round_no_m_subtraction(self):
        initiator, _, servers = deploy([{1}, {1}])
        server = servers[0]
        shares = server.fetch_additive("vA")
        delta = initiator.delta
        expect = [pow(initiator.group.g,
                      sum(int(s[i]) for s in shares) % delta,
                      initiator.group.eta_prime)
                  for i in range(len(shares[0]))]
        assert server.verification_round("vA").tolist() == expect

    def test_psu_masks_agree_across_servers(self):
        initiator, _, servers = deploy([{1, 3}, {3, 5}])
        delta = initiator.delta
        out0 = servers[0].psu_round("A", query_nonce=5)
        out1 = servers[1].psu_round("A", query_nonce=5)
        member = (out0 + out1) % delta != 0
        assert member.tolist() == [True, True, True]  # domain {1,3,5}

    def test_psu_nonce_changes_masks(self):
        _, _, servers = deploy([{1, 3}, {3, 5}])
        a = servers[0].psu_round("A", query_nonce=1)
        b = servers[0].psu_round("A", query_nonce=2)
        assert not np.array_equal(a, b)

    def test_count_round_is_permuted_psi(self):
        _, _, servers = deploy([{1, 2, 3}, {2, 3, 4}])
        server = servers[0]
        psi = server.psi_round("A")
        count = server.count_round("A")
        assert np.array_equal(count, server.params.pf_s1.apply(psi))

    def test_aggregate_round_length_mismatch(self):
        _, _, servers = deploy([{1}, {1}])
        with pytest.raises(ProtocolError):
            servers[0].aggregate_round("A", np.zeros(5, dtype=np.int64))


class TestExtremaRounds:
    def test_extrema_collect_permutes(self):
        initiator, _, servers = deploy([{1}, {1}, {1}])
        shares = {0: 100, 1: 200, 2: 300}
        out = servers[0].extrema_collect(shares)
        assert sorted(out) == [100, 200, 300]
        pf = servers[0].params.pf_owners
        assert out[pf.apply_index(0)] == 100

    def test_extrema_collect_missing_owner(self):
        _, _, servers = deploy([{1}, {1}, {1}])
        with pytest.raises(ProtocolError):
            servers[0].extrema_collect({0: 1, 1: 2})

    def test_fpos_round_order(self):
        _, _, servers = deploy([{1}, {1}, {1}])
        assert servers[0].fpos_round({2: 30, 0: 10, 1: 20}) == [10, 20, 30]

    def test_fpos_round_missing_owner(self):
        _, _, servers = deploy([{1}, {1}])
        with pytest.raises(ProtocolError):
            servers[0].fpos_round({0: 1})

    def test_forward_passthrough(self):
        _, _, servers = deploy([{1}, {1}])
        assert servers[0].forward("payload") == "payload"
