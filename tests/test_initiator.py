"""Unit tests for the initiator and the knowledge-separated views (§4)."""

import dataclasses

import pytest

from repro.core.params import AnnouncerParams, OwnerParams, ServerParams
from repro.crypto.primes import is_prime
from repro.data.domain import Domain
from repro.entities.initiator import Initiator
from repro.exceptions import ParameterError


@pytest.fixture()
def initiator():
    return Initiator(3, Domain.integer_range("OK", 32), seed=5)


class TestParameterGeneration:
    def test_moduli_structure(self, initiator):
        assert is_prime(initiator.delta)
        assert initiator.delta > initiator.num_owners
        assert is_prime(initiator.group.eta)
        assert (initiator.group.eta - 1) % initiator.delta == 0
        assert initiator.group.eta_prime == 13 * initiator.group.eta

    def test_generator_order(self, initiator):
        g, eta, delta = (initiator.group.g, initiator.group.eta,
                         initiator.delta)
        assert pow(g, delta, eta) == 1
        assert g != 1

    def test_polynomial_degree_exceeds_owner_count(self, initiator):
        assert initiator.polynomial.degree == initiator.num_owners + 1

    def test_extrema_modulus_covers_blinded_values(self, initiator):
        poly = initiator.polynomial
        bound = initiator.value_bound
        assert initiator.extrema_modulus > poly.max_blinded_value(bound)
        assert is_prime(initiator.extrema_modulus)

    def test_m_shares_sum_to_m(self, initiator):
        shares = initiator._m_shares
        assert sum(shares) % initiator.delta == 3

    def test_custom_delta_paper_example(self):
        # delta=5, m=3 gives eta=11 and eta'=143, Example 5.1's numbers.
        init = Initiator(3, Domain.integer_range("x", 3), seed=0, delta=5)
        assert init.group.eta == 11
        assert init.group.eta_prime == 143

    def test_deterministic_for_seed(self):
        d = Domain.integer_range("x", 16)
        a, b = Initiator(3, d, seed=9), Initiator(3, d, seed=9)
        assert a.group.g == b.group.g
        assert a.pf == b.pf
        assert a.polynomial.coefficients == b.polynomial.coefficients

    def test_too_few_owners(self):
        with pytest.raises(ParameterError):
            Initiator(1, Domain.integer_range("x", 4))

    def test_delta_not_prime(self):
        with pytest.raises(ParameterError):
            Initiator(3, Domain.integer_range("x", 4), delta=10)

    def test_delta_not_exceeding_owners(self):
        with pytest.raises(ParameterError):
            Initiator(7, Domain.integer_range("x", 4), delta=7)


class TestKnowledgeSeparation:
    def test_owner_view_withholds_g_and_prg(self, initiator):
        params = initiator.owner_params()
        fields = {f.name for f in dataclasses.fields(OwnerParams)}
        assert "g" not in fields
        assert "prg_seed" not in fields
        assert "pf_s1" not in fields
        assert "pf_s2" not in fields
        assert params.eta == initiator.group.eta  # owners do know eta

    def test_server_view_withholds_eta_and_pf_db(self, initiator):
        params = initiator.server_params(0)
        fields = {f.name for f in dataclasses.fields(ServerParams)}
        assert "eta" not in fields
        assert "pf_db1" not in fields
        assert "pf_db2" not in fields
        assert "polynomial" not in fields  # F(x) is owner knowledge
        # Servers do know g and eta'.
        assert params.group.g == initiator.group.g
        assert params.group.eta_prime == initiator.group.eta_prime

    def test_announcer_view_is_minimal(self, initiator):
        params = initiator.announcer_params()
        fields = {f.name for f in dataclasses.fields(AnnouncerParams)}
        assert fields == {"extrema_modulus", "eta"}
        assert params.extrema_modulus == initiator.extrema_modulus
        assert params.eta is None  # eta withheld by default

    def test_announcer_eta_opt_in(self, initiator):
        params = initiator.announcer_params(include_eta=True)
        assert params.eta == initiator.group.eta

    def test_views_are_frozen(self, initiator):
        params = initiator.owner_params()
        with pytest.raises(dataclasses.FrozenInstanceError):
            params.delta = 999

    def test_eq1_quadruple_dealt_consistently(self, initiator):
        owner = initiator.owner_params()
        server = initiator.server_params(0)
        left = server.pf_s1.compose(owner.pf_db1)
        right = server.pf_s2.compose(owner.pf_db2)
        assert left == right

    def test_server_m_shares(self, initiator):
        s0 = initiator.server_params(0)
        s1 = initiator.server_params(1)
        s2 = initiator.server_params(2)
        assert (s0.m_share + s1.m_share) % initiator.delta == 3
        assert s2.m_share == 0  # the Shamir-only server never uses one

    def test_pf_owners_sized_to_owner_count(self, initiator):
        assert initiator.owner_params().pf_owners.size == 3
        assert initiator.server_params(0).pf_owners.size == 3
