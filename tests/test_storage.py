"""Unit tests for the server-side share store (Table 11 layout)."""

import numpy as np
import pytest

from repro.data.storage import ServerStore, ShareKind
from repro.exceptions import ProtocolError


@pytest.fixture()
def store():
    s = ServerStore()
    s.put(0, "OK", np.asarray([1, 2, 3]), ShareKind.ADDITIVE)
    s.put(1, "OK", np.asarray([4, 5, 6]), ShareKind.ADDITIVE)
    s.put(0, "PK", np.asarray([7, 8, 9]), ShareKind.SHAMIR)
    return s


class TestStore:
    def test_get(self, store):
        col = store.get(0, "OK")
        assert col.kind is ShareKind.ADDITIVE
        assert col.values.tolist() == [1, 2, 3]

    def test_missing(self, store):
        with pytest.raises(ProtocolError):
            store.get(9, "OK")

    def test_has(self, store):
        assert store.has(0, "OK")
        assert not store.has(0, "nope")

    def test_overwrite(self, store):
        store.put(0, "OK", np.asarray([9, 9, 9]), ShareKind.ADDITIVE)
        assert store.get(0, "OK").values.tolist() == [9, 9, 9]
        assert len(store) == 3

    def test_owners_with(self, store):
        assert store.owners_with("OK") == [0, 1]
        assert store.owners_with("PK") == [0]
        assert store.owners_with("nope") == []

    def test_columns_of(self, store):
        assert store.columns_of(0) == ["OK", "PK"]
        assert store.columns_of(1) == ["OK"]

    def test_fetch_column_ordered(self, store):
        shares = store.fetch_column("OK", ShareKind.ADDITIVE)
        assert [s.tolist() for s in shares] == [[1, 2, 3], [4, 5, 6]]

    def test_fetch_subset(self, store):
        shares = store.fetch_column("OK", ShareKind.ADDITIVE, owner_ids=[1])
        assert len(shares) == 1
        assert shares[0].tolist() == [4, 5, 6]

    def test_fetch_wrong_kind(self, store):
        with pytest.raises(ProtocolError):
            store.fetch_column("OK", ShareKind.SHAMIR)

    def test_fetch_unknown_column(self, store):
        with pytest.raises(ProtocolError):
            store.fetch_column("nope", ShareKind.ADDITIVE)

    def test_nbytes_positive(self, store):
        assert store.nbytes == 3 * 3 * 8

    def test_values_cast_to_int64(self):
        s = ServerStore()
        s.put(0, "c", np.asarray([1.0, 2.0]), ShareKind.ADDITIVE)
        assert s.get(0, "c").values.dtype == np.int64
