"""Unit and property tests for Shamir secret sharing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.shamir import DEFAULT_FIELD_PRIME, ShamirSharing
from repro.exceptions import ShareError

P = DEFAULT_FIELD_PRIME


@pytest.fixture()
def scheme():
    return ShamirSharing(num_shares=3, degree=1,
                         rng=np.random.default_rng(0))


class TestRoundTrip:
    def test_vector_roundtrip(self, scheme):
        secrets = np.asarray([0, 1, 123456789, P - 1], dtype=np.int64)
        shares = scheme.share_vector(secrets)
        assert len(shares) == 3
        assert np.array_equal(scheme.reconstruct_vector(shares), secrets)

    def test_scalar_roundtrip(self, scheme):
        for s in (0, 1, 999_999_937, P - 1):
            assert scheme.reconstruct_scalar(scheme.share_scalar(s)) == s

    def test_degree1_needs_two_shares(self, scheme):
        shares = scheme.share_vector(np.asarray([42]))
        # Any 2 of the 3 points suffice for a degree-1 polynomial.
        assert scheme.reconstruct_vector(shares[:2], points=[1, 2])[0] == 42
        assert scheme.reconstruct_vector(shares[1:], points=[2, 3])[0] == 42

    def test_higher_degree(self):
        scheme = ShamirSharing(num_shares=5, degree=3,
                               rng=np.random.default_rng(2))
        shares = scheme.share_vector(np.asarray([777]))
        assert scheme.reconstruct_vector(shares, degree=3)[0] == 777

    @given(st.lists(st.integers(0, P - 1), min_size=1, max_size=30),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, secrets, seed):
        scheme = ShamirSharing(rng=np.random.default_rng(seed))
        arr = np.asarray(secrets, dtype=np.int64)
        assert np.array_equal(
            scheme.reconstruct_vector(scheme.share_vector(arr)), arr)


class TestLagrange:
    def test_weights_at_points_1_2(self, scheme):
        # lambda_1 = 2, lambda_2 = -1 for points (1, 2) evaluated at 0.
        w = scheme.lagrange_weights([1, 2])
        assert w[0] == 2
        assert w[1] == P - 1

    def test_weights_sum_to_one_shifted(self, scheme):
        # Reconstructing the constant polynomial 1 from any points gives 1.
        for points in ([1, 2], [1, 2, 3], [2, 3]):
            w = scheme.lagrange_weights(points)
            assert sum(w) % P == 1

    def test_duplicate_points_rejected(self, scheme):
        with pytest.raises(ShareError):
            scheme.lagrange_weights([1, 1])


class TestHomomorphism:
    @given(st.integers(0, P - 1), st.integers(0, P - 1),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_additive(self, x, y, seed):
        scheme = ShamirSharing(rng=np.random.default_rng(seed))
        sx = scheme.share_vector(np.asarray([x]))
        sy = scheme.share_vector(np.asarray([y]))
        combined = [scheme.add_shares(a, b) for a, b in zip(sx, sy)]
        assert scheme.reconstruct_vector(combined)[0] == (x + y) % P

    @given(st.integers(0, 10**6), st.integers(0, 10**6),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_multiplicative_degree_doubles(self, x, y, seed):
        # The PSI-Sum core: product of two degree-1 shares reconstructs
        # with three points as a degree-2 polynomial (Eq. 11).
        scheme = ShamirSharing(rng=np.random.default_rng(seed))
        sx = scheme.share_vector(np.asarray([x]))
        sy = scheme.share_vector(np.asarray([y]))
        product = [scheme.mul_shares(a, b) for a, b in zip(sx, sy)]
        assert scheme.reconstruct_vector(product, degree=2)[0] == (x * y) % P

    def test_product_of_sums_vectorised(self):
        scheme = ShamirSharing(rng=np.random.default_rng(3))
        xs = np.asarray([3, 5, 7, 0], dtype=np.int64)
        zs = np.asarray([1, 0, 1, 1], dtype=np.int64)
        sx = scheme.share_vector(xs)
        sz = scheme.share_vector(zs)
        prod = [scheme.mul_shares(a, b) for a, b in zip(sx, sz)]
        out = scheme.reconstruct_vector(prod, degree=2)
        assert np.array_equal(out, xs * zs)


class TestValidation:
    def test_composite_prime_rejected(self):
        with pytest.raises(ShareError):
            ShamirSharing(prime=91)

    def test_degree_zero_rejected(self):
        with pytest.raises(ShareError):
            ShamirSharing(degree=0)

    def test_insufficient_points_rejected(self):
        with pytest.raises(ShareError):
            ShamirSharing(num_shares=2, degree=2)

    def test_reconstruct_insufficient_shares(self, scheme):
        shares = scheme.share_vector(np.asarray([1]))
        with pytest.raises(ShareError):
            scheme.reconstruct_vector(shares[:2], degree=2)

    def test_mismatched_points(self, scheme):
        shares = scheme.share_vector(np.asarray([1]))
        with pytest.raises(ShareError):
            scheme.reconstruct_vector(shares, points=[1, 2])

    def test_prime_must_exceed_points(self):
        with pytest.raises(ShareError):
            ShamirSharing(prime=3, num_shares=3, degree=1)


class TestSecrecy:
    def test_degree_many_fewer_shares_random(self):
        # One share of a degree-1 sharing is uniform: check spread.
        scheme = ShamirSharing(prime=101, num_shares=3, degree=1,
                               rng=np.random.default_rng(9))
        ones = np.ones(4000, dtype=np.int64)
        first = scheme.share_vector(ones)[0]
        counts = np.bincount(first, minlength=101)
        assert counts.min() > 0
