"""The concurrent coalescing scheduler (PrismClient.submit).

The contract under test: submissions in flight at a drain tick execute
as ONE fused QueryBatch (observable on the wire as ``batch:*[k]`` with
k >= 2), results are identical to sequential execution, and a failing
query poisons only its own future.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import Domain, PrismSystem, Q, Relation
from repro.core.interactive import ExtremaProgram
from repro.exceptions import QueryError, VerificationError


def build_hospitals(**kwargs):
    relations = [
        Relation("hospital1", {
            "disease": ["Cancer", "Cancer", "Heart"],
            "cost": [100, 200, 300],
            "age": [4, 6, 2],
        }),
        Relation("hospital2", {
            "disease": ["Cancer", "Fever", "Fever"],
            "cost": [100, 70, 50],
            "age": [8, 5, 4],
        }),
        Relation("hospital3", {
            "disease": ["Cancer", "Cancer", "Heart"],
            "cost": [300, 700, 500],
            "age": [8, 4, 5],
        }),
    ]
    domain = Domain("disease", ["Cancer", "Fever", "Heart"])
    return PrismSystem.build(relations, domain, "disease",
                             agg_attributes=("cost", "age"),
                             with_verification=True, seed=11, **kwargs)


def test_submit_returns_future_with_correct_result():
    system = build_hospitals()
    with system.client() as client:
        future = client.submit(Q.psi("disease"))
        assert future.result(timeout=60).values == ["Cancer"]
        assert client.stats["scheduler"]["submitted"] == 1


def test_concurrent_submissions_coalesce_into_one_fused_batch():
    """Acceptance: >= 2 in-flight queries run as one batch:*[k], k >= 2."""
    system = build_hospitals()
    with system.client() as client:
        with client.hold():
            f1 = client.submit(Q.psi("disease"))
            f2 = client.submit(Q.psi("disease").verify())
        r1 = f1.result(timeout=60)
        r2 = f2.result(timeout=60)
    assert r1.values == ["Cancer"]
    assert r2.values == ["Cancer"] and r2.verified
    kinds = system.transport.stats.messages_by_kind
    # One fused sweep carried both queries' rows: the verified query's
    # data row deduplicated onto the unverified one, plus its proof row.
    assert kinds.get("batch:psi-output[2]", 0) > 0
    assert "batch:psi-output[1]" not in kinds
    assert client.stats["scheduler"]["ticks"] == 1
    assert client.stats["scheduler"]["max_coalesced"] == 2


def test_submissions_from_many_threads_coalesce():
    """Truly concurrent submitters share one tick (under hold)."""
    system = build_hospitals()
    queries = [Q.psi("disease"), Q.psu("disease"),
               Q.psi("disease").count(), Q.psu("disease").count()]
    futures = [None] * len(queries)
    with system.client() as client:
        barrier = threading.Barrier(len(queries))

        def worker(slot, query):
            barrier.wait()
            futures[slot] = client.submit(query)

        with client.hold():
            threads = [threading.Thread(target=worker, args=(i, q))
                       for i, q in enumerate(queries)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        results = [f.result(timeout=60) for f in futures]
    assert results[0].values == ["Cancer"]
    assert sorted(results[1].values) == ["Cancer", "Fever", "Heart"]
    assert results[2].count == 1
    assert results[3].count == 3
    assert client.stats["scheduler"]["max_coalesced"] == len(queries)
    assert client.stats["scheduler"]["ticks"] == 1


def test_submit_without_hold_still_completes():
    """The steady-state path: no pinning, the window does the batching."""
    system = build_hospitals()
    with system.client() as client:
        futures = [client.submit(Q.psi("disease")) for _ in range(5)]
        for future in futures:
            assert future.result(timeout=60).values == ["Cancer"]
        stats = client.stats["scheduler"]
        assert stats["submitted"] == 5
        assert 1 <= stats["ticks"] <= 5


def test_failing_query_poisons_only_its_own_future():
    system = build_hospitals()
    # Tamper one share so any *verified* PSI fails while unverified
    # queries keep succeeding.
    server = system.servers[0]
    stored = server.store.get(0, "disease")
    tampered = stored.values.copy()
    tampered[0] = (tampered[0] + 1) % system.initiator.delta
    server.store.put(0, "disease", tampered, stored.kind)
    with system.client() as client:
        with client.hold():
            good = client.submit(Q.psu("disease"))
            bad = client.submit(Q.psi("disease").verify())
        assert sorted(good.result(timeout=60).values) == \
            ["Cancer", "Fever", "Heart"]
        with pytest.raises(VerificationError):
            bad.result(timeout=60)


def test_unlowerable_submission_fails_only_itself():
    system = build_hospitals()
    with system.client() as client:
        with client.hold():
            good = client.submit(Q.psi("disease"))
            bad = client.submit(object())  # not a query in any form
        assert good.result(timeout=60).values == ["Cancer"]
        with pytest.raises(Exception):
            bad.result(timeout=60)


def test_submit_explain_resolves_immediately():
    system = build_hospitals()
    with system.client() as client:
        future = client.submit(
            "EXPLAIN SELECT disease FROM h1 INTERSECT SELECT disease FROM h2")
        text = future.result(timeout=60)
    assert "fused batch kernel" in text
    assert "rows_deduplicated" in text


def test_close_drains_pending_and_rejects_new_submissions():
    system = build_hospitals()
    client = system.client()
    with client.hold():
        future = client.submit(Q.psi("disease"))
        # Close while held: close overrides the hold and drains.
        client.close()
    assert future.result(timeout=60).values == ["Cancer"]
    with pytest.raises(RuntimeError):
        client.submit(Q.psi("disease"))
    client.close()  # idempotent


def test_submit_matches_execute_results():
    system = build_hospitals()
    with system.client() as client:
        sequential = client.execute(Q.psi("disease").sum("cost"))
        future = client.submit(Q.psi("disease").sum("cost"))
        assert future.result(timeout=60).per_value == sequential.per_value


def test_session_accounting_covers_submissions():
    system = build_hospitals()
    with system.client() as client:
        with client.hold():
            futures = [client.submit(Q.psi("disease")),
                       client.submit(Q.psu("disease"))]
        for future in futures:
            future.result(timeout=60)
        stats = client.stats
    assert stats["queries"] == 2
    assert stats["by_kind"] == {"psi": 1, "psu": 1}
    assert stats["batched_units"] == 2
    assert stats["traffic"]["messages"] > 0


def build_many_common_values(num_values=6):
    """A deployment whose extrema queries run many per-value rounds."""
    keys = list(range(1, num_values + 1))
    relations = [
        Relation("a", {"k": keys, "v": [10 * k for k in keys]}),
        Relation("b", {"k": keys, "v": [10 * k + 1 for k in keys]}),
    ]
    return PrismSystem.build(relations, Domain.integer_range("k", 8), "k",
                             agg_attributes=("v",), with_verification=True,
                             seed=5)


class TestInteractiveScheduling:
    """Interactive submissions coexist with coalesced batch traffic."""

    def test_interactive_and_batchable_share_one_hold(self):
        system = build_hospitals()
        with system.client() as client:
            with client.hold():
                f_max = client.submit(Q.psi("disease").max("age"))
                f_psi = client.submit(Q.psi("disease"))
                f_psu = client.submit(Q.psu("disease"))
            assert f_max.result(timeout=60).per_value == {"Cancer": 8}
            assert f_psi.result(timeout=60).values == ["Cancer"]
            assert sorted(f_psu.result(timeout=60).values) == \
                ["Cancer", "Fever", "Heart"]
            stats = client.stats
        # The batchable pair still coalesced into one fused batch while
        # the interactive query rode the job lane of the same tick.
        assert stats["scheduler"]["max_coalesced"] == 2
        assert stats["scheduler"]["interactive_jobs"] == 1
        assert stats["interactive_units"] == 1
        assert stats["batched_units"] == 2
        assert stats["queries"] == 3

    def test_drain_tick_not_blocked_across_rounds(self, monkeypatch):
        """Batchable queries drain *between* an interactive query's
        rounds: a query submitted mid-flight resolves before the
        in-flight interactive query runs out of rounds."""
        order = []
        original_step = ExtremaProgram.step

        def recording_step(self):
            original_step(self)
            order.append("round")
            # Slow each round enough for the submitting thread to land a
            # batchable query while rounds remain; the drain happens
            # *between* rounds, never inside one.
            time.sleep(0.02)

        monkeypatch.setattr(ExtremaProgram, "step", recording_step)
        system = build_many_common_values(num_values=6)
        with system.client() as client:
            f_max = client.submit(Q.psi("k").max("v"))
            deadline = time.monotonic() + 30
            while not order:  # the job has started stepping rounds
                assert time.monotonic() < deadline
                time.sleep(0.001)
            f_psi = client.submit(Q.psi("k"))
            f_psi.add_done_callback(lambda f: order.append("batch"))
            assert sorted(f_psi.result(timeout=60).values) == \
                list(range(1, 7))
            assert len(f_max.result(timeout=60).per_value) == 6
        # 6 value rounds follow the PSI round, so the batch had to land
        # strictly before the interactive query's final round — the
        # drain tick was not blocked across rounds.
        assert "batch" in order
        assert order.index("batch") < len(order) - 1
        assert client.stats["scheduler"]["interactive_rounds"] >= 7

    def test_interactive_error_isolated_to_its_future(self):
        system = build_hospitals()
        with system.client() as client:
            with client.hold():
                good = client.submit(Q.psi("disease"))
                # PSU has no extrema protocol: no dispatch route.
                bad = client.submit(Q.psu("disease").max("age"))
            assert good.result(timeout=60).values == ["Cancer"]
            with pytest.raises(QueryError):
                bad.result(timeout=60)

    def test_failing_interactive_round_poisons_only_its_future(self):
        # Costs (up to 1000) exceed the declared value bound, so the
        # extrema blinding round fails loudly mid-protocol — while the
        # batchable tick-mate keeps succeeding.
        from repro.exceptions import ProtocolError
        system = build_hospitals(value_bound=50)
        with system.client() as client:
            with client.hold():
                good = client.submit(Q.psu("disease"))
                bad = client.submit(Q.psi("disease").max("cost"))
            assert sorted(good.result(timeout=60).values) == \
                ["Cancer", "Fever", "Heart"]
            with pytest.raises(ProtocolError):
                bad.result(timeout=60)

    def test_interactive_session_accounting(self):
        system = build_hospitals()
        with system.client() as client:
            future = client.submit(Q.psi("disease").median("cost"))
            assert future.result(timeout=60).per_value == {"Cancer": 300}
            stats = client.stats
        assert stats["queries"] == 1
        assert stats["by_kind"] == {"psi_median": 1}
        assert stats["interactive_units"] == 1
        assert stats["traffic"]["messages"] > 0
        assert stats["scheduler"]["interactive_jobs"] == 1

    def test_close_drains_interactive_jobs(self):
        system = build_hospitals()
        client = system.client()
        with client.hold():
            future = client.submit(Q.psi("disease").min("age"))
            client.close()  # close overrides the hold and drains the job
        assert future.result(timeout=60).per_value == {"Cancer": 4}
        with pytest.raises(RuntimeError):
            client.submit(Q.psi("disease"))


def test_submit_on_sharded_deployment():
    with build_hospitals(num_shards=2) as system:
        with system.client() as client:
            with client.hold():
                futures = [client.submit(Q.psi("disease")),
                           client.submit(Q.psi("disease").verify())]
            assert futures[0].result(timeout=60).values == ["Cancer"]
            assert futures[1].result(timeout=60).verified
        assert system._shard_runtime.dispatches > 0
