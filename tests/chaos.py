"""Chaos harness: inject process/transport faults at named protocol points.

A :class:`Fault` names *where* in the protocol a failure strikes — a
server role, a pool seat, and a frame-kind pattern (the "named protocol
point": ``psi_round_batch``, ``extrema_collect``, a span frame, …) —
and *what* happens there:

* ``sigkill`` — SIGKILL the seat's host process the moment the matching
  frame is about to be issued to it (the crash lands mid-request:
  frames already in flight die with the process).
* ``sigstop`` — SIGSTOP the process instead: the member hangs rather
  than dies, exercising the timeout → eject path.
* ``slow`` — SIGSTOP now, SIGCONT after ``resume_after`` seconds on a
  timer thread: a transient stall (slow socket) rather than a death.
* ``disconnect`` — raise :class:`ConnectionLost` at the injection seam
  without touching any process: a pure transport fault.

:class:`ChaosInjector` wires a :class:`FaultPlan` into a built system's
pooled channels through their ``fault_injector`` seam (consulted before
every unicast issue), mapping ``(role, slot)`` seats to the forked
processes of :func:`~repro.network.host.launch_forked_pools`.

Tampering (a *malicious*, not crashed, member) is deliberately not a
``Fault`` action: CONSTRUCT broadcasts one server class to every pool
member, so per-member tamper is not expressible at this seam — whole-
role adversaries via ``server_factories`` cover it
(``test_multihost_matrix.py::test_malicious_pool_member_detected``).
"""

from __future__ import annotations

import os
import signal
import threading
from dataclasses import dataclass, field
from fnmatch import fnmatch

from repro.network.dispatch import ConnectionLost


@dataclass
class Fault:
    """One injected failure at a named protocol point."""

    role: int                  #: server role whose pool is targeted
    member: int = 0            #: pool slot of the victim seat
    kind: str = "*"            #: fnmatch pattern over the frame kind
    after: int = 0             #: matching frames to let through first
    action: str = "sigkill"    #: sigkill | sigstop | slow | disconnect
    resume_after: float = 0.5  #: seconds until SIGCONT (action="slow")
    seen: int = field(default=0, compare=False)
    done: bool = field(default=False, compare=False)

    def matches(self, role: int, slot: int, kind: str) -> bool:
        return (not self.done and role == self.role
                and slot == self.member and fnmatch(kind, self.kind))


class FaultPlan:
    """An ordered collection of faults armed into one injector."""

    def __init__(self, *faults: Fault):
        self.faults = list(faults)

    def __iter__(self):
        return iter(self.faults)


class ChaosInjector:
    """Arm faults against a built pooled system's dispatch seams.

    Args:
        system: a :class:`~repro.core.system.PrismSystem` on a pooled
            tcp deployment (channels exposing ``fault_injector``).
        processes: the flat pool-ordered process list from
            :func:`~repro.network.host.launch_forked_pools` (the same
            pools the system connected to).
        pools: the pools structure itself, to map flat processes to
            ``(role, slot)`` seats.
    """

    def __init__(self, system, pools, processes):
        self._processes: dict[tuple[int, int], object] = {}
        process_iter = iter(processes)
        for role, pool in enumerate(pools):
            for slot, _address in enumerate(pool):
                self._processes[(role, slot)] = next(process_iter)
        self._plan: list[Fault] = []
        self._stopped: list[int] = []
        self._lock = threading.Lock()
        self.fired = 0
        for role, channel in enumerate(system._channels):
            if hasattr(channel, "fault_injector"):
                channel.fault_injector = self._interceptor(role)

    def arm(self, *faults: Fault) -> "ChaosInjector":
        """Queue faults (replacing any spent plan is the caller's job)."""
        with self._lock:
            self._plan.extend(faults)
        return self

    def _interceptor(self, role: int):
        def intercept(member, message):
            self._intercept(role, member, message)
        return intercept

    def _intercept(self, role: int, member, message) -> None:
        with self._lock:
            fault = None
            for candidate in self._plan:
                if candidate.matches(role, member.slot, message.kind):
                    if candidate.seen < candidate.after:
                        candidate.seen += 1
                        continue
                    candidate.done = True
                    fault = candidate
                    break
            if fault is None:
                return
            self.fired += 1
        self._fire(fault, role, member)

    def _fire(self, fault: Fault, role: int, member) -> None:
        if fault.action == "disconnect":
            raise ConnectionLost(
                f"chaos: injected disconnect from pool member "
                f"{member.label}")
        process = self._processes[(role, fault.member)]
        if fault.action == "sigkill":
            os.kill(process.pid, signal.SIGKILL)
            # Join before the frame is issued: the death is guaranteed
            # to land mid-request, never racing the reply.
            process.join(10)
        elif fault.action in ("sigstop", "slow"):
            os.kill(process.pid, signal.SIGSTOP)
            with self._lock:
                self._stopped.append(process.pid)
            if fault.action == "slow":
                pid = process.pid
                timer = threading.Timer(
                    fault.resume_after, _sigcont, args=(pid,))
                timer.daemon = True
                timer.start()
        else:
            raise ValueError(f"unknown chaos action {fault.action!r}")

    def resume_all(self) -> None:
        """SIGCONT everything this injector stopped (idempotent)."""
        with self._lock:
            stopped, self._stopped = self._stopped, []
        for pid in stopped:
            _sigcont(pid)


def _sigcont(pid: int) -> None:
    try:
        os.kill(pid, signal.SIGCONT)
    except (ProcessLookupError, OSError):
        pass
