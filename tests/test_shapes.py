"""Shape-claim tests: the EXPERIMENTS.md assertions, enforced by pytest.

These run the actual experiment harness at toy scale and check every
qualitative shape the paper's evaluation reports.  Kept separate from the
micro-unit tests because each costs a second or two.
"""

import pytest

from repro.bench.experiments import (
    exp2_multiattr,
    exp3_owners,
    exp5_bucketization,
    exp6_comparison,
)
from repro.bench.shapes import (
    is_linear_increasing,
    is_monotone_decreasing,
    is_roughly_flat,
    linear_fit,
    ratio,
)
from repro.exceptions import ParameterError


class TestHelpers:
    def test_linear_fit_exact(self):
        slope, intercept, r = linear_fit([(1, 3), (2, 5), (3, 7)])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)
        assert r == pytest.approx(1.0)

    def test_linear_fit_needs_points(self):
        with pytest.raises(ParameterError):
            linear_fit([(1, 1), (2, 2)])

    def test_monotone(self):
        assert is_monotone_decreasing([5, 4, 4, 1])
        assert not is_monotone_decreasing([1, 2])

    def test_flat(self):
        assert is_roughly_flat([1.0, 1.4, 0.9])
        assert not is_roughly_flat([1.0, 10.0])

    def test_ratio(self):
        assert ratio([(1, 2.0), (4, 8.0)]) == pytest.approx(4.0)
        with pytest.raises(ParameterError):
            ratio([])


class TestFig4Shape:
    """Server time linear in the number of owners."""

    def test_psi_sum_linear_in_owners(self):
        # The Eq. 11 sweep is the heavier, cleanly linear kernel; fit the
        # per-point minimum of three runs to suppress scheduler jitter.
        owner_counts = (4, 8, 12, 16)
        runs = [exp3_owners(owner_counts=owner_counts, domain_size=2048)
                ["series"]["PSI Sum"] for _ in range(3)]
        points = [(m, min(run[i][1] for run in runs))
                  for i, m in enumerate(owner_counts)]
        assert is_linear_increasing(points, min_r=0.85)


class TestTable12Shape:
    """Aggregation time grows with the attribute count; linear in b."""

    def test_sum_grows_with_attributes(self):
        # Wall-clock at toy scale jitters; fit the per-point minimum of
        # three runs, the standard noise-floor estimator.
        runs = [exp2_multiattr(domain_sizes=[2048], attr_counts=(1, 2, 3, 4),
                               num_owners=4)["results"][2048]["sum"]
                for _ in range(3)]
        sums = [min(r[i] for r in runs) for i in range(4)]
        points = list(zip((1, 2, 3, 4), sums))
        assert is_linear_increasing(points, min_r=0.85)

    def test_time_grows_with_domain(self):
        payload = exp2_multiattr(domain_sizes=[1024, 4096],
                                 attr_counts=(1,), num_owners=4)
        small = payload["results"][1024]["sum"][0]
        large = payload["results"][4096]["sum"][0]
        assert large > small


class TestFig5Shape:
    """Actual domain size collapses with the fill factor; 1.11x at 100%."""

    def test_monotone_collapse(self):
        payload = exp5_bucketization(
            fill_factors=(1.0, 0.1, 0.01, 0.001), num_leaves=100_000)
        sizes = [y for _, y in payload["series"]["W Bucketization"]]
        assert is_monotone_decreasing(sizes)

    def test_dense_overhead_matches_paper(self):
        # 100% fill with fanout 10: actual/real ~= 1.111 (the paper's
        # 111M over 100M).
        payload = exp5_bucketization(fill_factors=(1.0,),
                                     num_leaves=1_000_000)
        actual = payload["series"]["W Bucketization"][0][1]
        assert actual / 1_000_000 == pytest.approx(1.111, abs=0.01)

    def test_sparse_collapse_matches_paper(self):
        # 0.01% fill: the paper's 400K of 100M is ~0.004 of the domain.
        payload = exp5_bucketization(fill_factors=(0.0001,),
                                     num_leaves=1_000_000)
        actual = payload["series"]["W Bucketization"][0][1]
        assert actual / 1_000_000 < 0.02


class TestTable13Shape:
    """Prism beats the crypto baselines per element, loses to plaintext."""

    def test_ordering(self):
        payload = exp6_comparison(prism_domain=2048, freedman_n=32)
        per_element = {
            name: payload[name]["seconds"] / payload[name]["n"]
            for name in ("prism", "freedman", "bloom", "plaintext")
        }
        assert per_element["freedman"] > 50 * per_element["prism"]
        assert per_element["bloom"] > per_element["prism"]
        # Prism stays within two orders of magnitude of insecure plaintext.
        assert per_element["prism"] < 100 * per_element["plaintext"]
