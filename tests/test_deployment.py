"""Deployment equivalence: local vs subprocess vs TCP entity hosts.

The acceptance bar of the pluggable-deployment redesign: a query issued
through :meth:`PrismClient.connect` against server entities running in
separate OS processes returns **bit-identical** results to
``deployment="local"`` for every Table-4 kind — PSI, PSU, counts,
SUM/AVG aggregates, extrema, median — including verified mode and
malicious-server fault injection over the socket channel.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro import (
    Deployment,
    Domain,
    ParameterError,
    PrismClient,
    PrismSystem,
    ProtocolError,
    Q,
    Relation,
    VerificationError,
)
from repro.entities.adversary import (
    DropAggregateServer,
    InjectFakeServer,
    SkipCellsServer,
)
from repro.entities.remote import LazyShares, RemoteServer
from repro.entities.server import PrismServer
from repro.network.host import ServerAdapter, launch_forked_hosts
from repro.network.rpc import (
    InProcessChannel,
    RpcMessage,
    SubprocessChannel,
)

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available, reason="fork-based entity hosts unavailable")


def relations():
    return [
        Relation("a", {"k": [1, 2, 3], "amt": [10, 20, 30]}),
        Relation("b", {"k": [2, 3, 4], "amt": [1, 2, 3]}),
        Relation("c", {"k": [2, 3, 5], "amt": [5, 6, 7]}),
    ]


def build(deployment="local", seed=3, **kwargs):
    return PrismSystem.build(
        relations(), Domain.integer_range("k", 8), "k",
        agg_attributes=("amt",), with_verification=True, seed=seed,
        deployment=deployment, **kwargs)


def run_table4(system) -> dict:
    """One query per Table-4 kind, verified where supported.

    The per-query order is fixed, so the nonce and blinding streams
    advance identically in every deployment mode — results must match
    bit for bit.
    """
    psi = system.psi("k", verify=True)
    psu = system.psu("k", verify=True)
    max_result = system.psi_max("k", "amt", verify=True)
    min_result = system.psi_min("k", "amt")
    return {
        "psi_values": sorted(psi.values),
        "psi_membership": psi.membership.tolist(),
        "psu_values": sorted(psu.values),
        "psu_membership": psu.membership.tolist(),
        "psi_count": system.psi_count("k", verify=True).count,
        "psu_count": system.psu_count("k").count,
        "sum": system.psi_sum("k", "amt", verify=True)["amt"].per_value,
        "avg": system.psi_average("k", "amt")["amt"].per_value,
        "psu_sum": system.psu_sum("k", "amt")["amt"].per_value,
        "max": max_result.per_value,
        "max_holders": max_result.holders,
        "min": min_result.per_value,
        "median": system.psi_median("k", "amt").per_value,
    }


@pytest.fixture(scope="module")
def expected_table4():
    with build("local") as system:
        return run_table4(system)


@pytest.fixture(scope="module")
def tcp_hosts():
    if not fork_available:
        pytest.skip("fork-based entity hosts unavailable")
    spec, processes = launch_forked_hosts(3)
    yield spec
    for process in processes:
        process.terminate()
    for process in processes:
        process.join(timeout=10)


# -- the deployment spec ------------------------------------------------------


class TestDeploymentSpec:
    def test_local_and_subprocess(self):
        assert Deployment.parse("local").is_local
        assert Deployment.parse("subprocess").mode == "subprocess"

    def test_tcp_parses_three_addresses(self):
        spec = Deployment.parse("tcp://a:1,b:2,c:3")
        assert spec.mode == "tcp"
        assert spec.addresses == (("a", 1), ("b", 2), ("c", 3))

    def test_tcp_needs_one_address_per_server(self):
        with pytest.raises(ParameterError):
            Deployment.parse("tcp://a:1,b:2")

    def test_malformed_inputs_rejected(self):
        for bad in ("tcp://a:b,c:d,e:f", "udp://a:1,b:2,c:3", "nope", 7):
            with pytest.raises(ParameterError):
                Deployment.parse(bad)

    def test_passthrough(self):
        spec = Deployment.parse("tcp://a:1,b:2,c:3")
        assert Deployment.parse(spec) is spec

    def test_system_records_deployment(self):
        with build("local") as system:
            assert system.deployment.is_local
            assert system.channel_stats()["bytes_sent"] == 0


# -- the channel surface, without any process boundary ------------------------


class TestInProcessChannel:
    def make_channel(self, serialize=False):
        system = build("local")
        return system, InProcessChannel(system.servers[0],
                                        serialize=serialize)

    def test_call_matches_direct(self):
        system, channel = self.make_channel()
        direct = system.servers[0].psi_round("k")
        assert np.array_equal(channel.call("psi_round", "k"), direct)
        assert channel.stats["requests"] == 1
        system.close()

    def test_serialize_mode_round_trips_frames(self):
        system, channel = self.make_channel(serialize=True)
        direct = system.servers[0].psi_round_batch(["k", "vk"],
                                                   subtract_m=[True, False])
        out = channel.call("psi_round_batch", ["k", "vk"],
                           subtract_m=[True, False])
        assert np.array_equal(out, direct)
        assert channel.stats["bytes_sent"] > 0
        assert channel.stats["bytes_received"] > direct.nbytes
        system.close()

    def test_remote_errors_rebuild_local_types(self):
        system, channel = self.make_channel()
        with pytest.raises(ProtocolError):
            channel.call("fetch_additive", "no-such-column", None)
        with pytest.raises(ProtocolError):
            channel.call("_sum_shares", [])  # not on the allowlist
        system.close()

    def test_proxy_over_inprocess_channel_is_equivalent(self):
        # RemoteServer(InProcessChannel(server)) must behave exactly
        # like the raw server: the proxy surface is channel-agnostic.
        system, channel = self.make_channel(serialize=True)
        raw = system.servers[0]
        proxy = RemoteServer(0, raw.params, channel)
        assert np.array_equal(proxy.psi_round("k"), raw.psi_round("k"))
        assert proxy.owners_with("k") == raw.owners_with("k")
        shares = proxy.fetch_additive("k")
        assert isinstance(shares, LazyShares)
        assert not shares.materialized
        assert len(shares) == 3  # materialises over the channel
        assert np.array_equal(shares[0], raw.fetch_additive("k")[0])
        system.close()


# -- subprocess deployment ----------------------------------------------------


@needs_fork
class TestSubprocessDeployment:
    def test_bit_identical_to_local(self, expected_table4):
        with build("subprocess") as system:
            assert run_table4(system) == expected_table4

    def test_batch_and_builder_surfaces(self, expected_table4):
        with build("subprocess") as system:
            batch = system.run_batch([
                "SELECT k FROM a INTERSECT SELECT k FROM b",
                {"kind": "psu_count", "attribute": "k"},
                Q.psi("k").sum("amt"),
            ])
            assert sorted(batch[0].values) == expected_table4["psi_values"]
            assert batch[1].count == expected_table4["psu_count"]
            # run_batch keeps the legacy attribute-keyed aggregate shape.
            assert batch[2]["amt"].per_value == expected_table4["sum"]

    def test_sharded_batch_over_channel(self, expected_table4):
        with build("subprocess") as system:
            result = system.run_batch(
                ["SELECT k FROM a INTERSECT SELECT k FROM b"], num_shards=2)
            assert sorted(result[0].values) == expected_table4["psi_values"]

    def test_concurrent_submit_coalesces_over_channel(self, expected_table4):
        with build("subprocess") as system, system.client() as client:
            with client.hold():
                futures = [client.submit("SELECT k FROM a INTERSECT "
                                         "SELECT k FROM b")
                           for _ in range(4)]
            values = [sorted(f.result().values) for f in futures]
            assert values == [expected_table4["psi_values"]] * 4
            assert client.stats["scheduler"]["max_coalesced"] == 4

    def test_bucketized_psi_keeps_shares_server_side(self, expected_table4):
        # The per-level rounds ship active cell *indices* through
        # psi_cells_round_batch; the χ shares never cross the channel.
        with build("subprocess") as system:
            system.outsource_bucketized("k", fanout=2)
            received_before = system.channel_stats()["bytes_received"]
            result, stats = system.bucketized_psi("k")
            received = system.channel_stats()["bytes_received"] \
                - received_before
            assert sorted(result.values) == expected_table4["psi_values"]
            assert stats["rounds"] >= 2
            # Replies carry only the active-cell outputs (plus framing),
            # far below even one owner's full χ share vector per round.
            assert received < stats["numbers_sent"] * 8 * 4 + 4096

    def test_malicious_factory_callable_travels_by_fork(self):
        factories = {1: lambda i, p: SkipCellsServer(i, p)}
        with build("subprocess", server_factories=factories) as system:
            with pytest.raises(VerificationError):
                system.psi("k", verify=True)

    def test_channels_count_wire_bytes(self):
        with build("subprocess") as system:
            system.psi("k")
            stats = system.channel_stats()
            assert stats["mode"] == "subprocess"
            assert stats["requests"] >= 2
            assert stats["bytes_sent"] > 0
            assert stats["bytes_received"] > 0


# -- TCP deployment -----------------------------------------------------------


@needs_fork
class TestTcpDeployment:
    def test_bit_identical_to_local(self, tcp_hosts, expected_table4):
        with build(tcp_hosts) as system:
            assert run_table4(system) == expected_table4

    def test_client_connect_runs_identical_surface(self, tcp_hosts,
                                                   expected_table4):
        client = PrismClient.connect(
            tcp_hosts, relations(), Domain.integer_range("k", 8), "k",
            agg_attributes=("amt",), with_verification=True, seed=3)
        try:
            sql = client.execute(
                "SELECT k FROM a INTERSECT SELECT k FROM b")
            assert sorted(sql.values) == expected_table4["psi_values"]
            fluent = client.execute(Q.psi("k").sum("amt").verify())
            assert fluent.per_value == expected_table4["sum"]
            many = client.execute_many(
                [Q.psu("k").count(), Q.psi("k").count()])
            assert many[0].count == expected_table4["psu_count"]
            assert many[1].count == expected_table4["psi_count"]
            assert client.stats["traffic"]["messages"] > 0
        finally:
            client.close()
            client.system.close()

    def test_verified_queries_over_socket(self, tcp_hosts):
        with build(tcp_hosts) as system:
            assert system.psi("k", verify=True).verified
            assert system.psu("k", verify=True).verified
            assert system.psi_sum("k", "amt", verify=True)["amt"].verified
            assert system.psi_count("k", verify=True).count == 2

    def test_skip_cells_server_caught_over_socket(self, tcp_hosts):
        with build(tcp_hosts,
                   server_factories={1: SkipCellsServer}) as system:
            with pytest.raises(VerificationError):
                system.psi("k", verify=True)

    def test_inject_fake_server_caught_over_socket(self, tcp_hosts):
        with build(tcp_hosts,
                   server_factories={0: InjectFakeServer}) as system:
            with pytest.raises(VerificationError):
                system.psi("k", verify=True)

    def test_drop_aggregate_server_caught_over_socket(self, tcp_hosts):
        # Constructor kwargs travel in the bootstrap payload: target
        # cells inside the intersection so the drop is observable.
        factories = {2: (DropAggregateServer, {"cells": (2, 3)})}
        with build(tcp_hosts, server_factories=factories) as system:
            with pytest.raises(VerificationError):
                system.psi_sum("k", "amt", verify=True)

    def test_lambda_factories_rejected_for_tcp(self, tcp_hosts):
        with pytest.raises(ParameterError):
            build(tcp_hosts,
                  server_factories={1: lambda i, p: SkipCellsServer(i, p)})

    def test_span_scoped_requests_concatenate_bit_identically(
            self, tcp_hosts):
        with build(tcp_hosts) as system:
            server = system.servers[0]
            full = server.psi_round_batch(["k", "vk"],
                                          subtract_m=[True, False])
            b = system.domain.size
            payload = {"a": [["k", "vk"]],
                       "k": {"subtract_m": [True, False]}}
            halves = [
                server.channel.send(RpcMessage(
                    "psi_round_batch", payload, span=span)).payload
                for span in ((0, b // 2), (b // 2, b))
            ]
            assert np.array_equal(np.concatenate(halves, axis=1), full)

    def test_span_requests_refuse_modified_servers(self, tcp_hosts):
        with build(tcp_hosts,
                   server_factories={0: SkipCellsServer}) as system:
            with pytest.raises(ProtocolError):
                system.servers[0].channel.send(RpcMessage(
                    "psi_round_batch", {"a": [["k"]], "k": {}}, span=(0, 4)))

    def test_sharded_batch_over_socket(self, tcp_hosts, expected_table4):
        with build(tcp_hosts, num_shards=2) as system:
            batch = system.run_batch([
                "SELECT k FROM a INTERSECT SELECT k FROM b",
                "SELECT k FROM a UNION SELECT k FROM b",
            ])
            assert sorted(batch[0].values) == expected_table4["psi_values"]
            assert sorted(batch[1].values) == expected_table4["psu_values"]


# -- subprocess channel plumbing ----------------------------------------------


@needs_fork
class TestSubprocessChannel:
    def test_spawn_ping_shutdown(self):
        system = build("local")
        server = system.servers[0]
        channel = SubprocessChannel.spawn(lambda: server)
        try:
            reply = channel.send(RpcMessage("__ping__"))
            assert reply.payload["entity"] == "server"
            assert reply.payload["index"] == 0
        finally:
            channel.close()
            system.close()
        assert not channel.process.is_alive()

    def test_closed_channel_refuses_sends(self):
        system = build("local")
        channel = SubprocessChannel.spawn(
            lambda: PrismServer(0, system.initiator.server_params(0)))
        channel.close()
        with pytest.raises(ProtocolError):
            channel.call("psi_round", "k")
        system.close()


# -- host adapter guard rails -------------------------------------------------


class TestServerAdapter:
    def test_private_methods_unreachable(self):
        system = build("local")
        adapter = ServerAdapter(system.servers[0])
        reply = adapter.dispatch(RpcMessage("_thread_pool", {"a": [1]}))
        assert reply.kind == "__error__"
        reply = adapter.dispatch(RpcMessage("store", {}))
        assert reply.kind == "__error__"
        system.close()

    def test_span_rejects_non_uniform_owner_sets(self):
        # A fused span sums a fixed share set per row; a column held by
        # fewer owners must fail loudly, not sweep with the wrong A(m).
        from repro.data.storage import ShareKind
        system = build("local")
        server = system.servers[0]
        server.store.put(0, "solo",
                         np.zeros(system.domain.size, dtype=np.int64),
                         ShareKind.ADDITIVE)
        adapter = ServerAdapter(server)
        reply = adapter.dispatch(RpcMessage(
            "psi_round_batch", {"a": [["k", "solo"]], "k": {}}, span=(0, 4)))
        assert reply.kind == "__error__"
        assert "uniform" in reply.payload["message"]
        system.close()

    def test_span_on_unsupported_kernel_rejected(self):
        # count_round_batch's post-sweep permutation is not span-local,
        # so it stays whole-sweep-only: the dispatcher fans out psi
        # spans and permutes client-side instead.
        system = build("local")
        adapter = ServerAdapter(system.servers[0])
        reply = adapter.dispatch(RpcMessage(
            "count_round_batch", {"a": [["k"]], "k": {}}, span=(0, 4)))
        assert reply.kind == "__error__"
        assert "span" in reply.payload["message"]
        system.close()

    def test_span_psu_rejects_permute_flags(self):
        # Span-scoped PSU serves the unpermuted sweep; a frame asking
        # the host to permute a span would corrupt the concatenation.
        system = build("local")
        adapter = ServerAdapter(system.servers[0])
        reply = adapter.dispatch(RpcMessage(
            "psu_round_batch",
            {"a": [["k"], [1]], "k": {"permute": [True]}}, span=(0, 4)))
        assert reply.kind == "__error__"
        assert "unpermuted" in reply.payload["message"]
        system.close()


# -- span kernels, in-process -------------------------------------------------


class TestSpanKernels:
    """Span-scoped sweep frames concatenate bit-identically, per family."""

    def test_psi_span_frames_concatenate(self):
        system = build("local")
        server = system.servers[0]
        adapter = ServerAdapter(server)
        full = server.psi_round_batch(["k", "k"], subtract_m=[True, False])
        parts = []
        for span in ((0, 3), (3, 8)):
            reply = adapter.dispatch(RpcMessage(
                "psi_round_batch",
                {"a": [["k", "k"], 1, None],
                 "k": {"subtract_m": [True, False]}}, span=span))
            assert reply.kind == "__result__"
            parts.append(reply.payload)
        assert np.array_equal(np.concatenate(parts, axis=1), full)
        system.close()

    def test_psu_span_frames_concatenate_unpermuted(self):
        system = build("local")
        server = system.servers[0]
        adapter = ServerAdapter(server)
        full = server.psu_round_batch(["k", "k"], [5, 9])
        parts = []
        for span in ((0, 5), (5, 8)):
            reply = adapter.dispatch(RpcMessage(
                "psu_round_batch",
                {"a": [["k", "k"], [5, 9], 1, None], "k": {}}, span=span))
            assert reply.kind == "__result__"
            parts.append(reply.payload)
        assert np.array_equal(np.concatenate(parts, axis=1), full)
        system.close()

    def test_agg_span_frames_ship_sliced_z(self):
        system = build("local")
        server = system.servers[0]
        adapter = ServerAdapter(server)
        rng = np.random.default_rng(11)
        z = rng.integers(0, 1 << 20, size=(2, 8), dtype=np.int64)
        full = server.aggregate_round_batch(["amt", "amt"], z)
        parts = []
        for span in ((0, 4), (4, 8)):
            lo, hi = span
            reply = adapter.dispatch(RpcMessage(
                "aggregate_round_batch",
                {"a": [["amt", "amt"], z[:, lo:hi], 1, None], "k": {}},
                span=span))
            assert reply.kind == "__result__"
            parts.append(reply.payload)
        assert np.array_equal(np.concatenate(parts, axis=1), full)
        system.close()

    @pytest.mark.parametrize("kind,payload,message", [
        ("psu_round_batch", {"a": [["k"], [1, 2]], "k": {}},
         "query_nonces must match"),
        ("psu_round_batch", {"a": [["k"]], "k": {}}, "no query nonces"),
        ("aggregate_round_batch", {"a": [["amt"]], "k": {}}, "no z matrix"),
        ("aggregate_round_batch",
         {"a": [["amt"], [[1, 2, 3]]], "k": {}}, "does not cover span"),
        ("psi_round_batch", {"a": [[]], "k": {}}, "malformed"),
    ])
    def test_malformed_span_requests_rejected(self, kind, payload, message):
        system = build("local")
        adapter = ServerAdapter(system.servers[0])
        reply = adapter.dispatch(RpcMessage(kind, payload, span=(0, 4)))
        assert reply.kind == "__error__"
        assert message in reply.payload["message"]
        system.close()

    def test_span_beyond_sweep_length_rejected(self):
        system = build("local")
        adapter = ServerAdapter(system.servers[0])
        for kind, payload in [
            ("psi_round_batch", {"a": [["k"]], "k": {}}),
            ("psu_round_batch", {"a": [["k"], [1]], "k": {}}),
        ]:
            reply = adapter.dispatch(RpcMessage(kind, payload, span=(0, 99)))
            assert reply.kind == "__error__"
            assert "exceeds sweep length" in reply.payload["message"]
        system.close()


# -- the host loop, served in-process -----------------------------------------


class TestHostServing:
    """`serve_tcp` driven by a thread: bootstrap handshake, error
    frames, client-death resilience, and shutdown — the very loop the
    forked hosts run, exercised in-process."""

    @pytest.fixture()
    def served_host(self):
        import threading

        from repro.network.host import serve_tcp

        ports: list[int] = []
        ready = threading.Event()

        def announce(line, flush=True):
            ports.append(int(line.split()[1]))
            ready.set()

        thread = threading.Thread(target=serve_tcp, args=(0,),
                                  kwargs={"announce": announce}, daemon=True)
        thread.start()
        assert ready.wait(5)
        yield ports[0], thread
        if thread.is_alive():
            from repro.network.dispatch import SocketChannel
            SocketChannel.connect("127.0.0.1", ports[0]).shutdown_remote()
            thread.join(timeout=5)
        assert not thread.is_alive()

    def test_bootstrap_and_kernel_cycle(self, served_host):
        from repro.network.dispatch import SocketChannel
        from repro.network.rpc import CONSTRUCT, server_params_to_wire

        port, _ = served_host
        system = build("local")
        channel = SocketChannel.connect("127.0.0.1", port)
        # Kernel requests before construction fail typed, never hang.
        with pytest.raises(ProtocolError, match="no entity constructed"):
            channel.call("owners_with", "k")
        params = system.initiator.server_params(0)
        reply = channel.send(RpcMessage(CONSTRUCT, {
            "entity": "server", "index": 0,
            "params": server_params_to_wire(params),
            "server_class": None, "kwargs": {}}))
        assert reply.payload["index"] == 0
        proxy = RemoteServer(0, params, channel)
        assert proxy.ping()["entity"] == "server"
        # Ship the local twin's shares, then sweep remotely — sharded,
        # so the host builds its local plan from the shipped count.
        local = system.servers[0]
        for owner_id in range(3):
            stored = local.store.get(owner_id, "k")
            proxy.receive_shares(owner_id, "k", stored.values, stored.kind)
        from repro.core.sharding import ShardPlan
        out = proxy.psi_round_batch(["k"], shard_plan=ShardPlan(2))
        assert np.array_equal(out, local.psi_round_batch(["k"]))
        channel.close()
        system.close()

    def test_construct_payload_validation(self, served_host):
        from repro.network.dispatch import SocketChannel
        from repro.network.rpc import CONSTRUCT

        port, _ = served_host
        channel = SocketChannel.connect("127.0.0.1", port)
        for payload, message in [
            (None, "must be a dict"),
            ({"entity": "owner"}, "cannot host entity kind"),
            ({"entity": "server", "index": 0, "params": {},
              "server_class": "os.system"}, "outside the repro package"),
            ({"entity": "server", "index": 0, "params": {},
              "server_class": "repro.missing.X"}, "cannot import"),
            ({"entity": "server", "index": 0, "params": {},
              "server_class": "repro.network.host.EntityHost"},
             "not a PrismServer subclass"),
        ]:
            with pytest.raises(ProtocolError, match=message):
                channel.send(RpcMessage(CONSTRUCT, payload))
        channel.close()

    def test_host_survives_bad_frames_and_dead_clients(self, served_host):
        import socket as socket_module

        from repro.network.codec import FULL_SPAN, decode_frame, encode_frame
        from repro.network.rpc import PING, recv_frame, send_frame

        port, _ = served_host
        # An undecodable request earns a cid-0 error frame; the
        # connection keeps serving.
        conn = socket_module.create_connection(("127.0.0.1", port))
        send_frame(conn, b"this is not a frame")
        frame = decode_frame(recv_frame(conn))
        assert frame.kind == "__error__"
        assert frame.correlation_id == 0
        # Dying mid-frame must not take the host down ...
        conn.sendall(b"\x10\x00")
        conn.close()
        # ... the next connection is served as if nothing happened.
        conn = socket_module.create_connection(("127.0.0.1", port))
        send_frame(conn, encode_frame(PING, 7, FULL_SPAN, None))
        frame = decode_frame(recv_frame(conn))
        assert frame.correlation_id == 7
        conn.close()

    def test_shutdown_request_stops_the_host(self, served_host):
        from repro.network.dispatch import SocketChannel

        port, thread = served_host
        SocketChannel.connect("127.0.0.1", port).shutdown_remote()
        thread.join(timeout=5)
        assert not thread.is_alive()

    def test_adapter_for_rejects_unknown_entities(self):
        from repro.network.host import adapter_for

        with pytest.raises(ProtocolError, match="no host adapter"):
            adapter_for(object())


# -- shared-memory deployment --------------------------------------------------


@needs_fork
class TestShmDeployment:
    """``deployment="shm"``: subprocess hosts + pre-fork share arenas."""

    def test_bit_identical_to_local(self, expected_table4):
        with build("shm") as system:
            assert run_table4(system) == expected_table4

    def test_mode_recorded(self):
        with build("shm") as system:
            system.psi("k")
            stats = system.channel_stats()
            assert stats["mode"] == "shm"
            assert stats["requests"] >= 2

    def test_spec_parses(self):
        assert Deployment.parse("shm").mode == "shm"
        assert not Deployment.parse("shm").is_local

    def test_large_payloads_skip_the_socket(self):
        """Above the shm threshold, share vectors ride the arena: the
        socket traffic collapses to constant-size reference frames."""
        def relations_512():
            return [
                Relation("a", {"k": list(range(1, 301))}),
                Relation("b", {"k": list(range(151, 451))}),
                Relation("c", {"k": list(range(101, 401))}),
            ]

        def build_512(deployment):
            return PrismSystem.build(
                relations_512(), Domain.integer_range("k", 512), "k",
                with_verification=True, seed=3, deployment=deployment)

        results, sent = {}, {}
        for mode in ("subprocess", "shm"):
            with build_512(mode) as system:
                psi = system.psi("k", verify=True)
                results[mode] = (sorted(psi.values),
                                 psi.membership.tolist(), psi.verified)
                sent[mode] = system.channel_stats()["bytes_sent"]
        assert results["shm"] == results["subprocess"]
        # Outsourcing ships 512-cell share vectors per owner; through
        # the arena each costs a ~30-byte frame instead of ~4 KB.
        assert sent["shm"] < sent["subprocess"] / 2
