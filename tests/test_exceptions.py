"""Tests for the exception hierarchy and error ergonomics."""

import pytest

from repro.exceptions import (
    AdmissionError,
    AuthError,
    DomainError,
    GatewayDisconnected,
    ParameterError,
    PrismError,
    ProtocolError,
    QueryError,
    ShareError,
    VerificationError,
)

MEDIAN_VERIFY_MESSAGE = "MEDIAN has no verification stream"


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ParameterError, ShareError, ProtocolError, VerificationError,
        DomainError, QueryError, AuthError, AdmissionError,
        GatewayDisconnected,
    ])
    def test_all_derive_from_prism_error(self, exc):
        assert issubclass(exc, PrismError)
        with pytest.raises(PrismError):
            raise exc("boom")

    def test_single_catch_covers_library(self):
        caught = []
        for exc in (ParameterError, VerificationError, QueryError):
            try:
                raise exc("x")
            except PrismError as e:
                caught.append(type(e))
        assert caught == [ParameterError, VerificationError, QueryError]


class TestVerificationErrorPayload:
    def test_failed_cells_recorded(self):
        err = VerificationError("bad", failed_cells=[3, 7])
        assert err.failed_cells == [3, 7]
        assert "bad" in str(err)

    def test_failed_cells_optional(self):
        assert VerificationError("bad").failed_cells is None

    def test_failed_cells_copied_to_list(self):
        err = VerificationError("bad", failed_cells=(1, 2))
        assert err.failed_cells == [1, 2]
        assert isinstance(err.failed_cells, list)


class TestServingErrorPayloads:
    def test_admission_error_carries_retry_after(self):
        err = AdmissionError("slow down", retry_after=0.25)
        assert err.retry_after == 0.25
        assert "slow down" in str(err)

    def test_admission_error_retry_after_optional(self):
        assert AdmissionError("full").retry_after is None

    def test_gateway_disconnected_carries_address(self):
        err = GatewayDisconnected("gateway gone", address="10.0.0.7:9000")
        assert err.address == "10.0.0.7:9000"
        assert "gateway gone" in str(err)
        # Connection-level failures must be catchable as protocol
        # errors by code that predates the typed subclass.
        assert isinstance(err, ProtocolError)

    def test_gateway_disconnected_address_optional(self):
        assert GatewayDisconnected("gone").address is None


class TestServingWireRoundTrip:
    """AuthError/AdmissionError cross the framed wire as themselves.

    The gateway replies with the standard ``__error__`` frame; the
    client side rebuilds the typed exception by name — the same
    machinery entity channels use, so there is nothing session-specific
    to get wrong.
    """

    @staticmethod
    def _round_trip(exc):
        from repro.network.codec import FULL_SPAN, decode_frame, encode_frame
        from repro.network.rpc import ERROR, _remote_exception
        payload = {"type": type(exc).__name__, "message": str(exc)}
        if getattr(exc, "retry_after", None) is not None:
            payload["retry_after"] = float(exc.retry_after)
        if getattr(exc, "address", None) is not None:
            payload["address"] = str(exc.address)
        frame = decode_frame(encode_frame(ERROR, 7, FULL_SPAN, payload))
        assert frame.kind == ERROR
        return _remote_exception(frame.payload)

    def test_auth_error_round_trips(self):
        rebuilt = self._round_trip(AuthError("tenant 'b' may not"))
        assert type(rebuilt) is AuthError
        assert "may not" in str(rebuilt)
        assert isinstance(rebuilt, PrismError)

    def test_admission_error_round_trips_with_retry_after(self):
        rebuilt = self._round_trip(
            AdmissionError("over limit", retry_after=1.5))
        assert type(rebuilt) is AdmissionError
        assert rebuilt.retry_after == 1.5

    def test_admission_error_round_trips_without_retry_after(self):
        rebuilt = self._round_trip(AdmissionError("queue full"))
        assert type(rebuilt) is AdmissionError
        assert rebuilt.retry_after is None

    def test_gateway_disconnected_round_trips_with_address(self):
        rebuilt = self._round_trip(
            GatewayDisconnected("mid-call loss", address="127.0.0.1:8443"))
        assert type(rebuilt) is GatewayDisconnected
        assert rebuilt.address == "127.0.0.1:8443"
        assert isinstance(rebuilt, ProtocolError)


class TestMedianVerifyRejection:
    """Every path rejects verified MEDIAN with one typed exception.

    The shim (``PrismSystem.psi_median``), the direct runner
    (``run_median``), the program, and the plan IR must all raise
    :class:`QueryError` with the same message — historically the shim
    path leaked a ``TypeError`` instead.
    """

    @staticmethod
    def _system():
        from repro import Domain, PrismSystem, Relation
        relations = [Relation("a", {"k": [1, 2], "v": [3, 4]}),
                     Relation("b", {"k": [1, 2], "v": [5, 6]})]
        return PrismSystem.build(relations, Domain.integer_range("k", 4),
                                 "k", agg_attributes=("v",), seed=1)

    def test_plan_ir_rejects(self):
        from repro.api.plan import LogicalPlan
        with pytest.raises(QueryError, match=MEDIAN_VERIFY_MESSAGE):
            LogicalPlan(set_op="psi", attribute="k",
                        aggregates=(("MEDIAN", "v"),), verify=True)

    def test_run_median_rejects(self):
        from repro.core.extrema import run_median
        system = self._system()
        with pytest.raises(QueryError, match=MEDIAN_VERIFY_MESSAGE):
            run_median(system, "k", "v", verify=True)

    def test_median_program_rejects(self):
        from repro.core.interactive import MedianProgram
        system = self._system()
        with pytest.raises(QueryError, match=MEDIAN_VERIFY_MESSAGE):
            MedianProgram(system, "k", "v", verify=True)

    def test_system_shim_rejects(self):
        system = self._system()
        with pytest.raises(QueryError, match=MEDIAN_VERIFY_MESSAGE):
            system.psi_median("k", "v", verify=True)

    def test_builder_path_rejects(self):
        from repro import Q
        system = self._system()
        with system.client() as client:
            with pytest.raises(QueryError, match=MEDIAN_VERIFY_MESSAGE):
                client.execute(Q.psi("k").median("v").verify())
