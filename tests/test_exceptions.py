"""Tests for the exception hierarchy and error ergonomics."""

import pytest

from repro.exceptions import (
    DomainError,
    ParameterError,
    PrismError,
    ProtocolError,
    QueryError,
    ShareError,
    VerificationError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ParameterError, ShareError, ProtocolError, VerificationError,
        DomainError, QueryError,
    ])
    def test_all_derive_from_prism_error(self, exc):
        assert issubclass(exc, PrismError)
        with pytest.raises(PrismError):
            raise exc("boom")

    def test_single_catch_covers_library(self):
        caught = []
        for exc in (ParameterError, VerificationError, QueryError):
            try:
                raise exc("x")
            except PrismError as e:
                caught.append(type(e))
        assert caught == [ParameterError, VerificationError, QueryError]


class TestVerificationErrorPayload:
    def test_failed_cells_recorded(self):
        err = VerificationError("bad", failed_cells=[3, 7])
        assert err.failed_cells == [3, 7]
        assert "bad" in str(err)

    def test_failed_cells_optional(self):
        assert VerificationError("bad").failed_cells is None

    def test_failed_cells_copied_to_list(self):
        err = VerificationError("bad", failed_cells=(1, 2))
        assert err.failed_cells == [1, 2]
        assert isinstance(err.failed_cells, list)
