"""Compiled kernel tier: bit-identity pins against the numpy reference.

The acceptance bar of the opt-in C backend (``repro.kernels``): every
compiled sweep — fused PSI/verification (Eq. 3/7), PSU masking
(Eq. 18), Shamir aggregation (Eq. 11) — and the counter-mode PRG
stream compute **bit-identically** to the numpy/hashlib reference
kernels, including int64 wraparound, floored-mod reduction points and
the SHA-256 block stream.  Pinned three ways:

* unit level — each sweep builder's ``kernel(lo, hi)`` closure against
  a hand-written numpy replica of the server fallback, chunked so the
  span seams are exercised;
* stream level — ``prg_fill`` / ``integers_at`` against the hashlib
  counter stream at odd offsets, in both backends;
* system level — every batchable Table-4 kind (verified where
  supported) and every interactive kind, ``num_shards ∈ {1, 2, 7}``,
  compared against the numpy-mode seed run.

Plus the selection ladder itself: mode off, unknown mode, the
below-crossover and ineligible-operand rungs, and the forced-fallback
path (no compiler → ``configure("c")`` stays on numpy and queries keep
working).
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np
import pytest
from test_multihost_matrix import (
    SHARD_COUNTS,
    build,
    needs_fork,
    run_batchable,
    run_interactive,
)

from repro import kernels
from repro.crypto.prg import SeededPRG
from repro.kernels import cbackend

compiled_available = kernels.available()
needs_cc = pytest.mark.skipif(
    not compiled_available,
    reason="compiled kernel tier unavailable (no C toolchain)")

DELTA = 2039
PRIME = 2_147_483_647  # the Shamir field prime (Eq. 11)


@pytest.fixture
def compiled():
    """Activate the compiled tier for one test; restore the env default."""
    if not compiled_available:
        pytest.skip("compiled kernel tier unavailable (no C toolchain)")
    assert kernels.configure("c") == "c"
    yield
    kernels.configure(None)


def _share_lists(rng, rows, owners, n, low=-2**62, high=2**62):
    """Per-row owner share vectors, spanning most of int64 so the
    accumulator genuinely wraps — the compiled sweep must wrap the same
    way numpy does."""
    return [[rng.integers(low, high, size=n, dtype=np.int64)
             for _ in range(owners)] for _ in range(rows)]


def _chunked(kernel, n, splits=(0.3, 0.7)):
    """Drive a sweep closure in uneven chunks (seams must be invisible)."""
    bounds = [0, *(int(n * f) for f in splits), n]
    for lo, hi in zip(bounds, bounds[1:]):
        kernel(lo, hi)


# -- numpy replicas of the server fallback kernels ----------------------------


def psi_reference(share_lists, m_flat, delta, table, cells=None):
    n = len(cells) if cells is not None else share_lists[0][0].shape[0]
    out = np.empty((len(share_lists), n), dtype=np.int64)
    for q, row_shares in enumerate(share_lists):
        acc = np.zeros(n, dtype=np.int64)
        for s in row_shares:
            acc += s if cells is None else s[cells]
        acc -= np.int64(m_flat[q])
        np.mod(acc, delta, out=acc)
        out[q] = table[acc]
    return out


def psu_reference(share_lists, row_map, nonces, seed, delta):
    n = share_lists[0][0].shape[0]
    acc = np.zeros((len(share_lists), n), dtype=np.int64)
    for u, col_shares in enumerate(share_lists):
        for s in col_shares:
            acc[u] += s
        np.mod(acc[u], delta, out=acc[u])
    rand = np.stack([SeededPRG(seed, f"psu-{nonce}").integers(n, 1, delta)
                     for nonce in nonces])
    return np.mod(acc[row_map] * rand, delta)


def agg_reference(share_lists, z_matrix, p):
    n = share_lists[0][0].shape[0]
    acc = np.zeros((len(share_lists), n), dtype=np.int64)
    for q, row_shares in enumerate(share_lists):
        for s in row_shares:
            acc[q] += np.mod(s * z_matrix[q], p)
            np.mod(acc[q], p, out=acc[q])
    return acc


def _stream_reference(key, start, n):
    first = start // 32
    last = -(-(start + n) // 32)
    blob = b"".join(hashlib.sha256(key + struct.pack("<Q", c)).digest()
                    for c in range(first, last))
    return blob[start - first * 32:][:n]


# -- unit-level sweep equivalence ----------------------------------------------


class TestSweepBitIdentity:
    def test_psi_sweep(self, compiled):
        rng = np.random.default_rng(11)
        n = 1500
        shares = _share_lists(rng, rows=3, owners=3, n=n)
        table = rng.permutation(DELTA).astype(np.int64)
        m_rows = np.array([[777], [0], [-12345]], dtype=np.int64)
        out = np.empty((3, n), dtype=np.int64)
        kernel = kernels.psi_sweep(shares, m_rows, DELTA, table, out)
        assert kernel is not None, "compiled sweep must engage"
        _chunked(kernel, n)
        expected = psi_reference(shares, m_rows.ravel(), DELTA, table)
        np.testing.assert_array_equal(out, expected)

    def test_psi_cells_sweep(self, compiled):
        rng = np.random.default_rng(12)
        b, n = 4000, 1300
        shares = _share_lists(rng, rows=2, owners=2, n=b)
        cells = rng.choice(b, size=n, replace=False).astype(np.int64)
        table = rng.permutation(DELTA).astype(np.int64)
        m_rows = np.array([[5], [0]], dtype=np.int64)
        out = np.empty((2, n), dtype=np.int64)
        kernel = kernels.psi_sweep(shares, m_rows, DELTA, table, out,
                                   cells=cells)
        assert kernel is not None
        _chunked(kernel, n)
        expected = psi_reference(shares, m_rows.ravel(), DELTA, table,
                                 cells=cells)
        np.testing.assert_array_equal(out, expected)

    def test_psu_sweep(self, compiled):
        rng = np.random.default_rng(13)
        n, seed = 1600, 42
        shares = _share_lists(rng, rows=2, owners=3, n=n)
        nonces = [1, 2, 3]
        row_map = np.array([0, 1, 0], dtype=np.int64)
        keys = [SeededPRG(seed, f"psu-{nonce}").key_bytes
                for nonce in nonces]
        acc = np.zeros((2, n), dtype=np.int64)
        out = np.empty((3, n), dtype=np.int64)
        kernel = kernels.psu_sweep(shares, acc, row_map, keys, DELTA, out)
        assert kernel is not None
        _chunked(kernel, n)
        expected = psu_reference(shares, row_map, nonces, seed, DELTA)
        np.testing.assert_array_equal(out, expected)

    def test_psu_sweep_draw_base_seeks_the_mask_stream(self, compiled):
        """Span-local arrays + draw_base == slicing the full sweep.

        This is exactly how ``compute_sweep_span`` invokes the kernel on
        a shard worker: the share arrays cover only the shard's span,
        and the Eq. 18 mask draws must come from the *absolute* stream
        offsets — bit-identical to slicing a full-length sweep.
        """
        rng = np.random.default_rng(14)
        n, seed, base = 2000, 9, 517
        span = 1100
        shares = _share_lists(rng, rows=1, owners=2, n=n)
        nonces = [7]
        row_map = np.array([0], dtype=np.int64)
        keys = [SeededPRG(seed, "psu-7").key_bytes]
        full = psu_reference(shares, row_map, nonces, seed, DELTA)
        local_shares = [[np.ascontiguousarray(s[base:base + span])
                         for s in shares[0]]]
        acc = np.zeros((1, span), dtype=np.int64)
        out = np.empty((1, span), dtype=np.int64)
        kernel = kernels.psu_sweep(local_shares, acc, row_map, keys, DELTA,
                                   out, draw_base=base)
        assert kernel is not None
        _chunked(kernel, span)
        np.testing.assert_array_equal(out, full[:, base:base + span])

    def test_agg_sweep(self, compiled):
        rng = np.random.default_rng(15)
        n = 1500
        shares = _share_lists(rng, rows=2, owners=3, n=n, low=0, high=PRIME)
        z_matrix = rng.integers(0, PRIME, size=(2, n), dtype=np.int64)
        out = np.zeros((2, n), dtype=np.int64)
        kernel = kernels.agg_sweep(shares, z_matrix, PRIME, out)
        assert kernel is not None
        _chunked(kernel, n)
        expected = agg_reference(shares, z_matrix, PRIME)
        np.testing.assert_array_equal(out, expected)

    def test_agg_sweep_extreme_values_hit_the_mersenne_fold(self, compiled):
        """Negative / wrapping products through the division-free
        Mersenne-31 fast path must still match numpy exactly."""
        rng = np.random.default_rng(16)
        n = 1200
        shares = _share_lists(rng, rows=2, owners=3, n=n)  # full ±2^62 range
        z_matrix = rng.integers(-PRIME, PRIME, size=(2, n), dtype=np.int64)
        out = np.zeros((2, n), dtype=np.int64)
        kernel = kernels.agg_sweep(shares, z_matrix, PRIME, out)
        assert kernel is not None
        _chunked(kernel, n)
        expected = agg_reference(shares, z_matrix, PRIME)
        np.testing.assert_array_equal(out, expected)

    def test_agg_sweep_generic_modulus(self, compiled):
        """A non-Mersenne prime pins the generic division branch."""
        rng = np.random.default_rng(17)
        n, p = 1100, 2_147_483_629
        shares = _share_lists(rng, rows=1, owners=4, n=n)
        z_matrix = rng.integers(0, p, size=(1, n), dtype=np.int64)
        out = np.zeros((1, n), dtype=np.int64)
        kernel = kernels.agg_sweep(shares, z_matrix, p, out)
        assert kernel is not None
        _chunked(kernel, n)
        expected = agg_reference(shares, z_matrix, p)
        np.testing.assert_array_equal(out, expected)


# -- the selection ladder -------------------------------------------------------


class TestSelectionLadder:
    def test_mode_off_disables_builders(self):
        assert kernels.configure("off") == "numpy"
        try:
            out = np.empty((1, 4096), dtype=np.int64)
            table = np.arange(DELTA, dtype=np.int64)
            shares = [[np.zeros(4096, dtype=np.int64)]]
            assert kernels.psi_sweep(shares, [[0]], DELTA, table, out) is None
            assert not kernels.enabled()
        finally:
            kernels.configure(None)

    def test_unknown_mode_is_a_typed_error(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.configure("vectorized-maybe")
        kernels.configure(None)

    @needs_cc
    def test_configure_on_reports_c(self, compiled):
        assert kernels.active_backend() == "c"
        assert kernels.enabled()
        assert kernels.native_lib() is not None

    def test_below_crossover_stays_on_numpy(self, compiled):
        n = kernels.NATIVE_MIN_SPAN - 1
        out = np.empty((1, n), dtype=np.int64)
        table = np.arange(DELTA, dtype=np.int64)
        shares = [[np.zeros(n, dtype=np.int64)]]
        assert kernels.psi_sweep(shares, [[0]], DELTA, table, out) is None

    def test_ineligible_operand_falls_back_per_sweep(self, compiled):
        n = 2048
        out = np.empty((1, n), dtype=np.int64)
        table = np.arange(DELTA, dtype=np.int64)
        strided = np.zeros(2 * n, dtype=np.int64)[::2]  # not contiguous
        assert kernels.psi_sweep([[strided]], [[0]], DELTA, table,
                                 out) is None
        floats = [[np.zeros(n, dtype=np.float64)]]  # wrong dtype
        assert kernels.psi_sweep(floats, [[0]], DELTA, table, out) is None

    def test_forced_fallback_without_a_compiler(self, monkeypatch, tmp_path):
        """No compiler + empty cache: ``configure("c")`` stays on numpy
        (transparently — not an error) and queries still run."""
        monkeypatch.setattr(cbackend, "cache_dir",
                            lambda: tmp_path / "kernel-cache")
        monkeypatch.setenv(cbackend.CC_ENV, "/nonexistent/bin/cc")
        try:
            assert kernels.configure("c") == "numpy"
            assert not kernels.enabled()
            assert kernels.prg_fill(b"\0" * 32, 0, 8) is None
            with build() as system:
                assert system.psi("k", verify=True).verified
        finally:
            monkeypatch.undo()
            kernels.configure(None)


# -- PRG stream equivalence ------------------------------------------------------


STREAM_WINDOWS = [(0, 0), (0, 1), (0, 32), (5, 3), (31, 2), (32, 32),
                  (7, 100), (1000, 77)]


class TestPrgStream:
    def test_prg_fill_matches_hashlib(self, compiled):
        key = hashlib.sha256(b"kernel-prg-pin").digest()
        for start, n in STREAM_WINDOWS:
            assert kernels.prg_fill(key, start, n) == \
                _stream_reference(key, start, n), (start, n)

    @pytest.mark.parametrize("mode", ["off", "c"])
    def test_integers_at_seeks_the_integers_stream(self, mode):
        """Seeking == slicing, in both backends (PSU shard splitting)."""
        if mode == "c" and not compiled_available:
            pytest.skip("compiled kernel tier unavailable (no C toolchain)")
        assert kernels.configure(mode) in ("numpy", "c")
        try:
            prg = SeededPRG(1234, "psu-99")
            full = SeededPRG(1234, "psu-99").integers(300, 1, DELTA)
            for offset, count in [(0, 300), (0, 1), (17, 40), (299, 1),
                                  (128, 172)]:
                window = prg.integers_at(offset, count, 1, DELTA)
                np.testing.assert_array_equal(
                    window, full[offset:offset + count])
        finally:
            kernels.configure(None)

    @needs_cc
    def test_stream_is_backend_independent(self):
        """The whole point: both servers derive one mask stream, no
        matter which backend each happens to run."""
        draws = {}
        for mode in ("off", "c"):
            kernels.configure(mode)
            try:
                draws[mode] = SeededPRG(7, "psu-1").integers(257, 1, DELTA)
            finally:
                kernels.configure(None)
        np.testing.assert_array_equal(draws["off"], draws["c"])


# -- system-level equivalence -----------------------------------------------------


@pytest.fixture(scope="module")
def expected():
    """The seed result: numpy backend, single shard, in-process."""
    assert kernels.configure("off") == "numpy"
    try:
        with build() as system:
            return {"batch": run_batchable(system),
                    "interactive": run_interactive(system)}
    finally:
        kernels.configure(None)


@needs_cc
@needs_fork
class TestSystemEquivalence:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_bit_identical_with_compiled_tier(self, expected, monkeypatch,
                                              num_shards):
        """Every batchable + interactive kind, verified where supported.

        The mode travels via the environment so forked shard workers
        inherit the compiled tier too.
        """
        monkeypatch.setenv(kernels.MODE_ENV, "c")
        assert kernels.configure(None) == "c"
        try:
            with build(num_shards=num_shards) as system:
                assert run_batchable(system) == expected["batch"]
                assert run_interactive(system) == expected["interactive"]
        finally:
            monkeypatch.delenv(kernels.MODE_ENV, raising=False)
            kernels.configure(None)

    def test_subprocess_deployment_with_compiled_tier(self, expected,
                                                      monkeypatch):
        """Entity hosts across a fork boundary pick the tier up too."""
        monkeypatch.setenv(kernels.MODE_ENV, "c")
        assert kernels.configure(None) == "c"
        try:
            with build("subprocess") as system:
                assert run_batchable(system) == expected["batch"]
        finally:
            monkeypatch.delenv(kernels.MODE_ENV, raising=False)
            kernels.configure(None)
