"""Unit tests for the announcer (§6.3–6.4)."""

import pytest

from repro.core.params import AnnouncerParams
from repro.crypto.additive import share_bigint
from repro.crypto.prg import SeededPRG
from repro.entities.announcer import Announcer
from repro.exceptions import ProtocolError

Q = 1_000_003  # a prime comfortably above the test values


@pytest.fixture()
def announcer():
    return Announcer(AnnouncerParams(extrema_modulus=Q), seed=4)


def shared(values, seed=0):
    """Split each value into two additive share lists."""
    prg = SeededPRG(seed)
    s1, s2 = [], []
    for v in values:
        a, b = share_bigint(v, Q, 2, prg)
        s1.append(a)
        s2.append(b)
    return s1, s2


def reconstruct(pair):
    return (pair[0] + pair[1]) % Q


class TestMax:
    def test_finds_max_and_index(self, announcer):
        s1, s2 = shared([170, 4682, 1771])
        out = announcer.announce_max(s1, s2)
        assert reconstruct(out["value"]) == 4682
        assert reconstruct(out["index"]) == 1

    def test_paper_example_631(self, announcer):
        # The announcer sees <4682, 5000, 1771> and reports 5000 at slot 1.
        s1, s2 = shared([4682, 5000, 1771])
        out = announcer.announce_max(s1, s2)
        assert reconstruct(out["value"]) == 5000
        assert reconstruct(out["index"]) == 1

    def test_shares_are_not_cleartext(self, announcer):
        s1, s2 = shared([10, 20])
        out = announcer.announce_max(s1, s2)
        # The two returned shares should differ from the value itself
        # (overwhelmingly likely given a fresh PRG).
        assert out["value"][0] != 20 or out["value"][1] != 0


class TestMin:
    def test_finds_min(self, announcer):
        s1, s2 = shared([170, 4682, 42, 1771])
        out = announcer.announce_min(s1, s2)
        assert reconstruct(out["value"]) == 42
        assert reconstruct(out["index"]) == 2


class TestMedian:
    def test_odd_count(self, announcer):
        s1, s2 = shared([30, 10, 20])
        out = announcer.announce_median(s1, s2)
        assert reconstruct(out["low"]) == 20
        assert out["high"] is None

    def test_even_count(self, announcer):
        s1, s2 = shared([40, 10, 30, 20])
        out = announcer.announce_median(s1, s2)
        assert reconstruct(out["low"]) == 20
        assert reconstruct(out["high"]) == 30

    def test_empty_rejected(self, announcer):
        with pytest.raises(ProtocolError):
            announcer.announce_median([], [])


class TestValidation:
    def test_length_mismatch(self, announcer):
        with pytest.raises(ProtocolError):
            announcer.announce_max([1, 2], [3])
