"""Unit tests for the deterministic PRG and seed derivation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.prg import SeededPRG, derive_seed
from repro.exceptions import ParameterError


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SeededPRG(42, "x").bytes(1000)
        b = SeededPRG(42, "x").bytes(1000)
        assert a == b

    def test_different_seed_different_stream(self):
        assert SeededPRG(1).bytes(64) != SeededPRG(2).bytes(64)

    def test_label_separates_streams(self):
        assert SeededPRG(1, "a").bytes(64) != SeededPRG(1, "b").bytes(64)

    def test_stream_continuation_consistent(self):
        # Drawing 10 + 10 bytes equals drawing 20 at once.
        prg = SeededPRG(5)
        first = prg.bytes(10) + prg.bytes(10)
        assert first == SeededPRG(5).bytes(20)

    def test_psu_mask_agreement(self):
        # The PSU invariant: two servers derive identical masks from the
        # shared seed without communicating.
        m1 = SeededPRG(99, "psu-7").integers(1000, 1, 113)
        m2 = SeededPRG(99, "psu-7").integers(1000, 1, 113)
        assert np.array_equal(m1, m2)


class TestIntegers:
    def test_range_respected(self):
        values = SeededPRG(3).integers(5000, 1, 113)
        assert values.min() >= 1
        assert values.max() < 113
        assert values.dtype == np.int64

    def test_coverage(self):
        values = SeededPRG(4).integers(5000, 0, 10)
        assert set(values.tolist()) == set(range(10))

    def test_integers_at_matches_stream_slices(self):
        """Seekable access returns exactly integers()[offset:offset+n]."""
        full = SeededPRG(42, "seek").integers(100, 1, 9973)
        prg = SeededPRG(42, "seek")
        for offset, n in [(0, 100), (0, 1), (3, 7), (17, 40), (99, 1),
                          (50, 0), (4, 96)]:
            window = prg.integers_at(offset, n, 1, 9973)
            assert np.array_equal(window, full[offset:offset + n])
        # Seeking never consumes the instance's own stream state.
        assert np.array_equal(prg.integers(100, 1, 9973), full)

    def test_integers_at_empty_range_rejected(self):
        with pytest.raises(ParameterError):
            SeededPRG(1).integers_at(0, 4, 5, 5)

    def test_integers_at_negative_window_rejected(self):
        with pytest.raises(ParameterError):
            SeededPRG(1).integers_at(-2, 4, 0, 10)
        with pytest.raises(ParameterError):
            SeededPRG(1).integers_at(3, -2, 0, 10)

    def test_empty_range_rejected(self):
        with pytest.raises(ParameterError):
            SeededPRG(0).integers(1, 5, 5)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ParameterError):
            SeededPRG(0).bytes(-1)

    @given(st.integers(0, 2**40), st.integers(1, 100))
    @settings(max_examples=30, deadline=None)
    def test_scalar_integer_in_range(self, seed, span):
        value = SeededPRG(seed).integer(10, 10 + span)
        assert 10 <= value < 10 + span

    def test_scalar_integer_bigint_range(self):
        low, high = 2**100, 2**101
        value = SeededPRG(8).integer(low, high)
        assert low <= value < high

    def test_scalar_empty_range_rejected(self):
        with pytest.raises(ParameterError):
            SeededPRG(0).integer(5, 5)


class TestShuffle:
    @pytest.mark.parametrize("n", [0, 1, 2, 10, 257])
    def test_valid_permutation(self, n):
        idx = SeededPRG(7).shuffle_indices(n)
        assert sorted(idx.tolist()) == list(range(n))

    def test_deterministic(self):
        a = SeededPRG(7).shuffle_indices(50)
        b = SeededPRG(7).shuffle_indices(50)
        assert np.array_equal(a, b)

    def test_not_identity_for_large_n(self):
        idx = SeededPRG(7).shuffle_indices(100)
        assert not np.array_equal(idx, np.arange(100))


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")

    def test_label_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_63_bit_range(self):
        for i in range(20):
            s = derive_seed(i, "label")
            assert 0 <= s < 2**63
