"""Tests for the Table 13 baseline implementations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.bloom import BloomFilter, bloom_psi
from repro.baselines.freedman import (
    FreedmanPSI,
    multiparty_intersect,
    polynomial_from_roots,
)
from repro.baselines.naive import (
    plaintext_intersection,
    plaintext_psi_sum,
    plaintext_union,
)
from repro.baselines.paillier import generate_keypair
from repro.data.relation import Relation
from repro.exceptions import ParameterError


class TestPaillier:
    @pytest.fixture(scope="class")
    def keys(self):
        return generate_keypair(96, seed=5)

    def test_roundtrip(self, keys):
        pub, priv = keys
        for m in (0, 1, 12345, pub.n - 1):
            assert priv.decrypt(pub.encrypt(m)) == m

    def test_probabilistic_encryption(self, keys):
        pub, _ = keys
        assert pub.encrypt(7) != pub.encrypt(7)

    @given(st.integers(0, 2**40), st.integers(0, 2**40))
    @settings(max_examples=25, deadline=None)
    def test_additive_homomorphism(self, a, b):
        pub, priv = generate_keypair(96, seed=6)
        c = pub.add(pub.encrypt(a), pub.encrypt(b))
        assert priv.decrypt(c) == (a + b) % pub.n

    @given(st.integers(0, 2**30), st.integers(0, 2**10))
    @settings(max_examples=25, deadline=None)
    def test_scalar_multiplication(self, m, k):
        pub, priv = generate_keypair(96, seed=7)
        c = pub.mul_plain(pub.encrypt(m), k)
        assert priv.decrypt(c) == (m * k) % pub.n

    def test_add_plain(self, keys):
        pub, priv = keys
        assert priv.decrypt(pub.add_plain(pub.encrypt(10), 32)) == 42

    def test_ciphertext_range_check(self, keys):
        pub, priv = keys
        from repro.exceptions import ShareError
        with pytest.raises(ShareError):
            priv.decrypt(0)

    def test_mismatched_factors_rejected(self):
        from repro.baselines.paillier import (
            PaillierPrivateKey, PaillierPublicKey)
        pub = PaillierPublicKey(15)
        with pytest.raises(ParameterError):
            PaillierPrivateKey(pub, 3, 7)


class TestPolynomialFromRoots:
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_roots_evaluate_to_zero(self, roots):
        p = 2_147_483_647
        coeffs = polynomial_from_roots(roots, p)
        assert len(coeffs) == len(roots) + 1
        for r in roots:
            value = sum(c * pow(r, i, p) for i, c in enumerate(coeffs)) % p
            assert value == 0

    def test_non_roots_nonzero(self):
        p = 2_147_483_647
        coeffs = polynomial_from_roots([1, 2, 3], p)
        value = sum(c * pow(9, i, p) for i, c in enumerate(coeffs)) % p
        assert value != 0


class TestFreedman:
    def test_two_party_intersection(self):
        psi = FreedmanPSI(key_bits=96, seed=1)
        assert psi.intersect([1, 5, 9, 12], [5, 9, 40]) == {5, 9}

    def test_disjoint(self):
        psi = FreedmanPSI(key_bits=96, seed=2)
        assert psi.intersect([1, 2], [3, 4]) == set()

    def test_identical(self):
        psi = FreedmanPSI(key_bits=96, seed=3)
        assert psi.intersect([7, 8], [7, 8]) == {7, 8}

    def test_empty_client_rejected(self):
        psi = FreedmanPSI(key_bits=96, seed=4)
        with pytest.raises(ParameterError):
            psi.client_encrypt_polynomial([])

    @given(st.sets(st.integers(1, 60), min_size=1, max_size=8),
           st.sets(st.integers(1, 60), min_size=1, max_size=8))
    @settings(max_examples=15, deadline=None)
    def test_oracle_property(self, x, y):
        psi = FreedmanPSI(key_bits=96, seed=9)
        assert psi.intersect(sorted(x), sorted(y)) == (x & y)

    def test_multiparty(self):
        sets = [[1, 2, 3, 9], [2, 3, 9, 11], [3, 9, 20]]
        assert multiparty_intersect(sets, key_bits=96) == {3, 9}

    def test_multiparty_early_exit(self):
        sets = [[1], [2], [3]]
        assert multiparty_intersect(sets, key_bits=96) == set()

    def test_multiparty_needs_two(self):
        with pytest.raises(ParameterError):
            multiparty_intersect([[1]])


class TestBloom:
    def test_no_false_negatives(self):
        f = BloomFilter.for_capacity(100, seed=2)
        f.add_all(range(100))
        for v in range(100):
            assert v in f

    def test_sizing(self):
        f = BloomFilter.for_capacity(1000, false_positive_rate=1e-3)
        assert f.num_bits > 10_000
        assert f.num_hashes >= 5

    def test_psi_matches_exact_at_low_fp(self):
        sets = [list(range(1, 200)), list(range(100, 300)),
                list(range(150, 250))]
        assert bloom_psi(sets, false_positive_rate=1e-9) == set(range(150, 200))

    def test_intersect_with_incompatible(self):
        a = BloomFilter(64, 3, seed=1)
        b = BloomFilter(64, 3, seed=2)
        with pytest.raises(ParameterError):
            a.intersect_with(b)

    def test_fill_ratio(self):
        f = BloomFilter(64, 2, seed=0)
        assert f.fill_ratio == 0.0
        f.add(1)
        assert f.fill_ratio > 0

    def test_validation(self):
        with pytest.raises(ParameterError):
            BloomFilter(4, 1)
        with pytest.raises(ParameterError):
            BloomFilter(64, 0)
        with pytest.raises(ParameterError):
            BloomFilter.for_capacity(10, false_positive_rate=2.0)
        with pytest.raises(ParameterError):
            bloom_psi([[1]])


class TestNaive:
    def test_intersection(self):
        assert plaintext_intersection([[1, 2], [2, 3]]) == {2}

    def test_union(self):
        assert plaintext_union([[1], [2]]) == {1, 2}

    def test_psi_sum(self):
        rels = [
            Relation("a", {"k": ["x", "y"], "v": [1, 2]}),
            Relation("b", {"k": ["x"], "v": [10]}),
        ]
        assert plaintext_psi_sum(rels, "k", "v") == {"x": 11}

    def test_validation(self):
        with pytest.raises(ParameterError):
            plaintext_intersection([[1]])
        with pytest.raises(ParameterError):
            plaintext_union([[1]])

    @given(st.lists(st.sets(st.integers(0, 30)), min_size=2, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_agreement_with_python_sets(self, sets):
        as_lists = [sorted(s) for s in sets]
        expect_i = set(sets[0])
        expect_u = set()
        for s in sets:
            expect_i &= s
            expect_u |= s
        assert plaintext_intersection(as_lists) == expect_i
        assert plaintext_union(as_lists) == expect_u


class TestDhPsi:
    def test_two_party_intersection(self):
        from repro.baselines.dh_psi import dh_psi
        assert dh_psi([1, 2, 3, 9], [2, 9, 40]) == {2, 9}

    def test_disjoint_and_empty(self):
        from repro.baselines.dh_psi import dh_psi
        assert dh_psi([1, 2], [3, 4]) == set()
        assert dh_psi([], [1]) == set()
        assert dh_psi([1], []) == set()

    def test_strings_supported(self):
        from repro.baselines.dh_psi import dh_psi
        assert dh_psi(["a", "b"], ["b", "c"]) == {"b"}

    @given(st.sets(st.integers(0, 200), max_size=20),
           st.sets(st.integers(0, 200), max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_oracle_property(self, a, b):
        from repro.baselines.dh_psi import dh_psi
        assert dh_psi(sorted(a), sorted(b), seed=3) == (a & b)

    def test_multiparty(self):
        from repro.baselines.dh_psi import dh_multiparty
        assert dh_multiparty([[1, 2, 3], [2, 3, 4], [3, 4, 5]]) == {3}

    def test_multiparty_needs_two(self):
        from repro.baselines.dh_psi import dh_multiparty
        with pytest.raises(ParameterError):
            dh_multiparty([[1]])

    def test_bad_modulus_rejected(self):
        from repro.baselines.dh_psi import DHPsiParty
        with pytest.raises(ParameterError):
            DHPsiParty(p=97)  # (97-1)/2 = 48 is not prime

    def test_cardinality_mode_shuffles(self):
        from repro.baselines.dh_psi import DHPsiParty
        party = DHPsiParty(seed=1)
        points = party.first_pass(range(40))
        other = DHPsiParty(seed=2)
        plain = other.second_pass(points)
        shuffled = other.second_pass(points, shuffle=True)
        assert sorted(plain) == sorted(shuffled)
        assert plain != shuffled
