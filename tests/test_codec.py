"""Tests for the binary wire codec and serialized-transport conformance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Domain, PrismSystem, Relation
from repro.exceptions import ProtocolError
from repro.network.codec import MAGIC, decode, encode


class TestRoundTrips:
    def test_vector(self):
        vec = np.asarray([0, 1, -5, 2**62], dtype=np.int64)
        out = decode(encode(vec))
        assert isinstance(out, np.ndarray)
        assert np.array_equal(out, vec)
        assert out.dtype == np.int64

    def test_empty_vector(self):
        out = decode(encode(np.asarray([], dtype=np.int64)))
        assert out.shape == (0,)

    @given(st.integers(-(2**300), 2**300))
    @settings(max_examples=60, deadline=None)
    def test_bigint(self, value):
        assert decode(encode(value)) == value

    def test_none(self):
        assert decode(encode(None)) is None

    def test_string(self):
        assert decode(encode("psi-output-λ")) == "psi-output-λ"

    def test_list_and_tuple(self):
        payload = [1, (2, 3), "x", None]
        out = decode(encode(payload))
        assert out == [1, (2, 3), "x", None]
        assert isinstance(out[1], tuple)

    def test_dict(self):
        payload = {"value": (10, 20), "index": (1, 2), "note": None}
        assert decode(encode(payload)) == payload

    def test_nested_protocol_shapes(self):
        # The announcer's reply shape and an fpos vector.
        announce = {"value": (2**150, 7), "index": (0, 3)}
        assert decode(encode(announce)) == announce
        fpos = [0, 1, 1, 0, 2**90]
        assert decode(encode(fpos)) == fpos

    @given(st.lists(st.integers(-(2**63), 2**63 - 1), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_int_list_property(self, values):
        assert decode(encode(values)) == values


class TestValidation:
    def test_bad_magic(self):
        blob = bytearray(encode(5))
        blob[0] = MAGIC ^ 0xFF
        with pytest.raises(ProtocolError):
            decode(bytes(blob))

    def test_bad_version(self):
        blob = bytearray(encode(5))
        blob[1] = 99
        with pytest.raises(ProtocolError):
            decode(bytes(blob))

    def test_truncated(self):
        blob = encode(np.arange(10))
        with pytest.raises(ProtocolError):
            decode(blob[:-4])

    def test_trailing_garbage(self):
        with pytest.raises(ProtocolError):
            decode(encode(5) + b"xx")

    def test_too_short(self):
        with pytest.raises(ProtocolError):
            decode(b"\x5a")

    def test_unknown_tag(self):
        import struct
        blob = struct.pack("<BBB", MAGIC, 1, 200)
        with pytest.raises(ProtocolError):
            decode(blob)

    def test_matrix_roundtrip(self):
        """2-D batch matrices (fused multi-query streams) are a wire type."""
        matrix = np.arange(12, dtype=np.int64).reshape(3, 4) - 5
        decoded = decode(encode(matrix))
        assert decoded.shape == (3, 4)
        assert np.array_equal(decoded, matrix)

    def test_empty_matrix_roundtrip(self):
        decoded = decode(encode(np.zeros((0, 7), dtype=np.int64)))
        assert decoded.shape == (0, 7)

    def test_truncated_matrix(self):
        blob = encode(np.ones((4, 4), dtype=np.int64))
        with pytest.raises(ProtocolError):
            decode(blob[:-8])

    def test_truncated_matrix_header(self):
        blob = encode(np.ones((2, 2), dtype=np.int64))
        with pytest.raises(ProtocolError):
            decode(blob[:6])

    def test_3d_array_rejected(self):
        with pytest.raises(ProtocolError):
            encode(np.zeros((2, 2, 2), dtype=np.int64))

    def test_bool_rejected(self):
        with pytest.raises(ProtocolError):
            encode(True)

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(ProtocolError):
            encode({1: 2})

    def test_opaque_object_rejected(self):
        with pytest.raises(ProtocolError):
            encode(object())


class TestSerializedTransportConformance:
    """Every protocol must survive a real encode/decode per message."""

    def make(self, **kwargs):
        relations = [
            Relation("a", {"k": [1, 2, 3], "v": [10, 20, 30]}),
            Relation("b", {"k": [2, 3, 4], "v": [1, 2, 3]}),
            Relation("c", {"k": [2, 3, 5], "v": [5, 6, 7]}),
        ]
        return PrismSystem.build(relations, Domain.integer_range("k", 8),
                                 "k", agg_attributes=("v",),
                                 with_verification=True,
                                 serialize_transport=True, seed=3, **kwargs)

    def test_all_protocols_over_wire(self):
        system = self.make()
        assert set(system.psi("k", verify=True).values) == {2, 3}
        assert set(system.psu("k", verify=True).values) == {1, 2, 3, 4, 5}
        assert system.psi_count("k", verify=True).count == 2
        assert system.psi_sum("k", "v", verify=True)["v"].per_value == {
            2: 26, 3: 38}
        assert system.psi_max("k", "v").per_value == {2: 20, 3: 30}
        assert system.psi_median("k", "v").per_value == {2: 5, 3: 6}

    def test_bucketized_over_wire(self):
        system = self.make()
        system.outsource_bucketized("k", fanout=2)
        result, _ = system.bucketized_psi("k")
        assert set(result.values) == {2, 3}

    def test_wire_bytes_match_model(self):
        from repro.analysis import CostModel
        system = self.make()
        system.transport.reset()
        system.psi("k")
        measured = system.transport.stats.summary()["server_to_owner_bytes"]
        # The unified execution path ships every query as a batch of one,
        # so each server's output is a (1, b) matrix whose wire framing
        # is 19 bytes per message (magic, version, tag, rows, cols) on
        # top of the model's raw share bytes.
        predicted = CostModel(3, 8).psi()
        messages = 2 * 3  # 2 servers broadcast to 3 owners
        assert measured == predicted.server_to_owner_bytes + 19 * messages
