"""Tests for the binary wire codec and serialized-transport conformance."""

import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Domain, PrismSystem, Relation
from repro.exceptions import ProtocolError
from repro.network.codec import (
    FULL_SPAN,
    MAGIC,
    decode,
    decode_frame,
    encode,
    encode_frame,
)


class TestRoundTrips:
    def test_vector(self):
        vec = np.asarray([0, 1, -5, 2**62], dtype=np.int64)
        out = decode(encode(vec))
        assert isinstance(out, np.ndarray)
        assert np.array_equal(out, vec)
        assert out.dtype == np.int64

    def test_empty_vector(self):
        out = decode(encode(np.asarray([], dtype=np.int64)))
        assert out.shape == (0,)

    @given(st.integers(-(2**300), 2**300))
    @settings(max_examples=60, deadline=None)
    def test_bigint(self, value):
        assert decode(encode(value)) == value

    def test_none(self):
        assert decode(encode(None)) is None

    def test_string(self):
        assert decode(encode("psi-output-λ")) == "psi-output-λ"

    def test_list_and_tuple(self):
        payload = [1, (2, 3), "x", None]
        out = decode(encode(payload))
        assert out == [1, (2, 3), "x", None]
        assert isinstance(out[1], tuple)

    def test_dict(self):
        payload = {"value": (10, 20), "index": (1, 2), "note": None}
        assert decode(encode(payload)) == payload

    def test_nested_protocol_shapes(self):
        # The announcer's reply shape and an fpos vector.
        announce = {"value": (2**150, 7), "index": (0, 3)}
        assert decode(encode(announce)) == announce
        fpos = [0, 1, 1, 0, 2**90]
        assert decode(encode(fpos)) == fpos

    @given(st.lists(st.integers(-(2**63), 2**63 - 1), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_int_list_property(self, values):
        assert decode(encode(values)) == values


class TestValidation:
    def test_bad_magic(self):
        blob = bytearray(encode(5))
        blob[0] = MAGIC ^ 0xFF
        with pytest.raises(ProtocolError):
            decode(bytes(blob))

    def test_bad_version(self):
        blob = bytearray(encode(5))
        blob[1] = 99
        with pytest.raises(ProtocolError):
            decode(bytes(blob))

    def test_truncated(self):
        blob = encode(np.arange(10))
        with pytest.raises(ProtocolError):
            decode(blob[:-4])

    def test_trailing_garbage(self):
        with pytest.raises(ProtocolError):
            decode(encode(5) + b"xx")

    def test_too_short(self):
        with pytest.raises(ProtocolError):
            decode(b"\x5a")

    def test_unknown_tag(self):
        import struct
        blob = struct.pack("<BBB", MAGIC, 1, 200)
        with pytest.raises(ProtocolError):
            decode(blob)

    def test_matrix_roundtrip(self):
        """2-D batch matrices (fused multi-query streams) are a wire type."""
        matrix = np.arange(12, dtype=np.int64).reshape(3, 4) - 5
        decoded = decode(encode(matrix))
        assert decoded.shape == (3, 4)
        assert np.array_equal(decoded, matrix)

    def test_empty_matrix_roundtrip(self):
        decoded = decode(encode(np.zeros((0, 7), dtype=np.int64)))
        assert decoded.shape == (0, 7)

    def test_truncated_matrix(self):
        blob = encode(np.ones((4, 4), dtype=np.int64))
        with pytest.raises(ProtocolError):
            decode(blob[:-8])

    def test_truncated_matrix_header(self):
        blob = encode(np.ones((2, 2), dtype=np.int64))
        with pytest.raises(ProtocolError):
            decode(blob[:6])

    def test_3d_array_rejected(self):
        with pytest.raises(ProtocolError):
            encode(np.zeros((2, 2, 2), dtype=np.int64))

    def test_bool_roundtrips_as_bool(self):
        # Booleans have a dedicated tag (the RPC kernel flag lists):
        # they must come back as bools, never as 0/1 ints.
        for flag in (True, False):
            out = decode(encode(flag))
            assert out is flag

    def test_int_keyed_map_roundtrips(self):
        # The extrema rounds key share dicts by owner id.
        payload = {0: 2**90, 1: 7, 2: -3}
        out = decode(encode(payload))
        assert out == payload
        assert all(isinstance(k, int) for k in out)

    def test_container_map_key_rejected(self):
        with pytest.raises(ProtocolError):
            encode({(1, 2): 3})

    def test_opaque_object_rejected(self):
        with pytest.raises(ProtocolError):
            encode(object())

    def test_opaque_map_key_rejected(self):
        with pytest.raises(ProtocolError):
            encode({object(): 1})


class TestSerializedTransportConformance:
    """Every protocol must survive a real encode/decode per message."""

    def make(self, **kwargs):
        relations = [
            Relation("a", {"k": [1, 2, 3], "v": [10, 20, 30]}),
            Relation("b", {"k": [2, 3, 4], "v": [1, 2, 3]}),
            Relation("c", {"k": [2, 3, 5], "v": [5, 6, 7]}),
        ]
        return PrismSystem.build(relations, Domain.integer_range("k", 8),
                                 "k", agg_attributes=("v",),
                                 with_verification=True,
                                 serialize_transport=True, seed=3, **kwargs)

    def test_all_protocols_over_wire(self):
        system = self.make()
        assert set(system.psi("k", verify=True).values) == {2, 3}
        assert set(system.psu("k", verify=True).values) == {1, 2, 3, 4, 5}
        assert system.psi_count("k", verify=True).count == 2
        assert system.psi_sum("k", "v", verify=True)["v"].per_value == {
            2: 26, 3: 38}
        assert system.psi_max("k", "v").per_value == {2: 20, 3: 30}
        assert system.psi_median("k", "v").per_value == {2: 5, 3: 6}

    def test_bucketized_over_wire(self):
        system = self.make()
        system.outsource_bucketized("k", fanout=2)
        result, _ = system.bucketized_psi("k")
        assert set(result.values) == {2, 3}

    def test_wire_bytes_match_model(self):
        from repro.analysis import CostModel
        system = self.make()
        system.transport.reset()
        system.psi("k")
        measured = system.transport.stats.summary()["server_to_owner_bytes"]
        # The unified execution path ships every query as a batch of one,
        # so each server's output is a (1, b) matrix whose wire framing
        # is 19 bytes per message (magic, version, tag, rows, cols) on
        # top of the model's raw share bytes.
        predicted = CostModel(3, 8).psi()
        messages = 2 * 3  # 2 servers broadcast to 3 owners
        assert measured == predicted.server_to_owner_bytes + 19 * messages


# -- satellite hardening: fuzz/property coverage for every tag ---------------
#
# Frames arrive from real sockets now (the deployment channels), so the
# decoder must turn *any* malformed byte string into a ProtocolError —
# never an unhandled struct/unicode/recursion error — and every tag must
# round-trip exactly.

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**200), 2**200),
    st.floats(allow_nan=False, allow_infinity=True),
    st.text(max_size=20),
    st.binary(max_size=20),
)

vectors = st.lists(
    st.integers(-(2**63), 2**63 - 1), max_size=16
).map(lambda v: np.asarray(v, dtype=np.int64))

matrices = st.tuples(
    st.integers(0, 4), st.integers(0, 4), st.integers(-(2**40), 2**40)
).map(lambda rc: np.full((rc[0], rc[1]), rc[2], dtype=np.int64))


def payloads(depth=2):
    if depth == 0:
        return st.one_of(scalars, vectors, matrices)
    inner = payloads(depth - 1)
    return st.one_of(
        scalars,
        vectors,
        matrices,
        st.lists(inner, max_size=4),
        st.lists(inner, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=6), inner, max_size=4),
        st.dictionaries(st.integers(0, 50), inner, max_size=4),
    )


def assert_payload_equal(left, right):
    if isinstance(left, np.ndarray):
        assert isinstance(right, np.ndarray)
        assert left.shape == right.shape
        assert np.array_equal(left, right)
        return
    assert type(right) is type(left) or (
        isinstance(left, (int, float)) and isinstance(right, (int, float)))
    if isinstance(left, dict):
        assert left.keys() == right.keys()
        for key in left:
            assert_payload_equal(left[key], right[key])
    elif isinstance(left, (list, tuple)):
        assert len(left) == len(right)
        for a, b in zip(left, right):
            assert_payload_equal(a, b)
    else:
        assert left == right


class TestEveryTagRoundTrips:
    @given(payloads())
    @settings(max_examples=150, deadline=None)
    def test_roundtrip(self, payload):
        assert_payload_equal(payload, decode(encode(payload)))

    def test_bytes_tag(self):
        blob = bytes(range(256))
        assert decode(encode(blob)) == blob
        assert decode(encode(bytearray(b"xy"))) == b"xy"

    def test_float_tag(self):
        for value in (0.0, -1.5, 1e300, float("inf"), float("-inf")):
            assert decode(encode(value)) == value
        out = decode(encode(float("nan")))
        assert math.isnan(out)

    def test_numpy_scalars(self):
        assert decode(encode(np.int64(7))) == 7
        assert decode(encode(np.float64(1.25))) == 1.25
        assert decode(encode(np.bool_(True))) is True


class TestDecoderHardening:
    @given(payloads(depth=1), st.integers(0, 400))
    @settings(max_examples=150, deadline=None)
    def test_every_strict_prefix_raises(self, payload, cut):
        blob = encode(payload)
        prefix = blob[:min(cut, len(blob) - 1)]
        with pytest.raises(ProtocolError):
            decode(prefix)

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=300, deadline=None)
    def test_garbage_never_escapes_protocolerror(self, blob):
        try:
            decode(blob)
        except ProtocolError:
            pass  # the only acceptable failure mode

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=300, deadline=None)
    def test_garbage_with_valid_header(self, body):
        try:
            decode(struct.pack("<BB", MAGIC, 1) + body)
        except ProtocolError:
            pass

    def test_bad_magic_and_version(self):
        blob = bytearray(encode(5))
        blob[0] ^= 0xFF
        with pytest.raises(ProtocolError):
            decode(bytes(blob))
        blob = bytearray(encode(5))
        blob[1] = 200
        with pytest.raises(ProtocolError):
            decode(bytes(blob))

    def test_unknown_tag_raises(self):
        for tag in (0, 13, 57, 255):
            with pytest.raises(ProtocolError):
                decode(struct.pack("<BBB", MAGIC, 1, tag))

    def test_non_utf8_string_raises(self):
        blob = struct.pack("<BBBQ", MAGIC, 1, 7, 2) + b"\xff\xfe"
        with pytest.raises(ProtocolError):
            decode(blob)

    def test_depth_bomb_raises_not_recurses(self):
        # 2000 nested single-item lists: must hit the depth cap, not
        # the interpreter's recursion limit.
        bomb = struct.pack("<BB", MAGIC, 1)
        bomb += struct.pack("<BQ", 3, 1) * 2000 + struct.pack("<B", 6)
        with pytest.raises(ProtocolError):
            decode(bomb)

    def test_deep_payload_encode_rejected(self):
        payload = None
        for _ in range(100):
            payload = [payload]
        with pytest.raises(ProtocolError):
            encode(payload)

    def test_huge_vector_length_raises(self):
        blob = struct.pack("<BBBQ", MAGIC, 1, 1, 2**60)
        with pytest.raises(ProtocolError):
            decode(blob)

    def test_huge_matrix_header_raises(self):
        blob = struct.pack("<BBBQQ", MAGIC, 1, 8, 2**32, 2**32)
        with pytest.raises(ProtocolError):
            decode(blob)

    def test_bad_bool_byte_raises(self):
        blob = struct.pack("<BBBB", MAGIC, 1, 9, 7)
        with pytest.raises(ProtocolError):
            decode(blob)


class TestFrames:
    def test_roundtrip(self):
        payload = {"a": [np.arange(4, dtype=np.int64), "psi"], "k": {"x": 1}}
        blob = encode_frame("psi_round_batch", 42, (0, 100), payload)
        frame = decode_frame(blob)
        assert frame.kind == "psi_round_batch"
        assert frame.correlation_id == 42
        assert frame.span == (0, 100)
        assert np.array_equal(frame.payload["a"][0], np.arange(4))

    def test_full_span_default(self):
        frame = decode_frame(encode_frame("__ping__", 1, FULL_SPAN, None))
        assert frame.span == FULL_SPAN
        assert frame.payload is None

    @given(st.integers(0, 2**63 - 1), payloads(depth=1))
    @settings(max_examples=60, deadline=None)
    def test_correlation_and_payload_survive(self, correlation_id, payload):
        frame = decode_frame(
            encode_frame("m", correlation_id, (3, 9), payload))
        assert frame.correlation_id == correlation_id
        assert frame.span == (3, 9)
        assert_payload_equal(payload, frame.payload)

    def test_payload_magic_is_not_a_frame(self):
        with pytest.raises(ProtocolError):
            decode_frame(encode(5))

    def test_frame_magic_is_not_a_payload(self):
        with pytest.raises(ProtocolError):
            decode(encode_frame("m", 1, FULL_SPAN, None))

    def test_bad_span_rejected_both_ways(self):
        with pytest.raises(ProtocolError):
            encode_frame("m", 1, (5, 2), None)
        blob = bytearray(encode_frame("m", 1, (2, 5), None))
        # lo=7 > hi=5 in the fixed-offset span slots of the envelope.
        blob[10:18] = struct.pack("<q", 7)
        with pytest.raises(ProtocolError):
            decode_frame(bytes(blob))

    def test_non_string_kind_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame(None, 1, FULL_SPAN, None)

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(encode_frame("m", 1, FULL_SPAN, None) + b"z")

    @given(st.binary(min_size=0, max_size=80))
    @settings(max_examples=300, deadline=None)
    def test_frame_garbage_never_escapes_protocolerror(self, blob):
        try:
            decode_frame(blob)
        except ProtocolError:
            pass


# -- the reply multiplexer ----------------------------------------------------


def _mux():
    """A socket-free mux connection (protocol half only)."""
    from repro.network.dispatch import _MuxConnection
    return _MuxConnection(None, "test", None)


def _issue(conn, n):
    """Register ``n`` pipelined requests; returns their reply handles."""
    from repro.network.rpc import RpcMessage
    return [conn.request(RpcMessage("psi_round_batch", {"q": i}))
            for i in range(n)]


def _reply_bytes(correlation_id, payload, kind="__result__"):
    blob = encode_frame(kind, correlation_id, FULL_SPAN, payload)
    return struct.pack("<Q", len(blob)) + blob


class TestReplyMultiplexer:
    """Routing invariants of the dispatch-loop connection.

    Property-tested offline: :class:`_MuxConnection`'s protocol half is
    pure byte-stream logic, so out-of-order replies, arbitrary chunk
    boundaries, truncation, and garbage are all drivable without
    sockets — and none of them may ever deliver a frame to the wrong
    future.
    """

    @given(st.permutations(list(range(1, 7))))
    @settings(max_examples=40, deadline=None)
    def test_out_of_order_replies_route_by_correlation_id(self, order):
        conn = _mux()
        pending = _issue(conn, 6)
        for correlation_id in order:
            conn.receive_bytes(_reply_bytes(correlation_id,
                                            {"echo": correlation_id}))
        for index, handle in enumerate(pending):
            reply = handle.result(0)
            assert reply.payload == {"echo": index + 1}
        assert conn.in_flight == 0

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_chunk_boundaries_never_misdeliver(self, data):
        conn = _mux()
        count = data.draw(st.integers(2, 5))
        pending = _issue(conn, count)
        stream = b"".join(_reply_bytes(i, {"echo": i})
                          for i in range(1, count + 1))
        cuts = sorted(data.draw(st.lists(
            st.integers(0, len(stream)), max_size=8)))
        pieces = [stream[lo:hi]
                  for lo, hi in zip([0] + cuts, cuts + [len(stream)])]
        for piece in pieces:
            conn.receive_bytes(piece)
        for index, handle in enumerate(pending):
            assert handle.result(0).payload == {"echo": index + 1}

    def test_truncated_frame_waits_then_connection_loss_fails_all(self):
        from repro.network.dispatch import ConnectionLost
        conn = _mux()
        first, second = _issue(conn, 2)
        whole = _reply_bytes(1, {"echo": 1})
        truncated = _reply_bytes(2, {"echo": 2})[:-3]
        conn.receive_bytes(whole + truncated)
        assert first.result(0).payload == {"echo": 1}
        # The partial frame must wait for more bytes, not deliver.
        assert conn.in_flight == 1
        conn.connection_lost(ConnectionLost("host died mid-frame"))
        with pytest.raises(ConnectionLost, match="mid-frame"):
            second.result(0)
        # Nothing can land after a loss — the stream is poisoned.
        assert conn.closed

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_garbage_frames_poison_never_misdeliver(self, junk):
        conn = _mux()
        (handle,) = _issue(conn, 1)
        stream = struct.pack("<Q", len(junk)) + junk
        try:
            conn.receive_bytes(stream)
        except ProtocolError:
            return  # poisoned loudly: the only acceptable failure mode
        # Junk that happens to parse as a frame must still have routed
        # by our correlation id — never to a future we did not issue.
        if handle._future.done():
            frame = decode_frame(handle._future.result())
            assert frame.correlation_id == 1

    def test_unsolicited_correlation_id_is_a_protocol_error(self):
        conn = _mux()
        _issue(conn, 1)
        with pytest.raises(ProtocolError, match="unsolicited"):
            conn.receive_bytes(_reply_bytes(99, None))

    def test_error_frame_with_zero_cid_reaches_oldest_request(self):
        # A host that cannot decode a request never learns its
        # correlation id; it answers cid 0 and serves strictly in
        # order, so the error belongs to the oldest in-flight request.
        conn = _mux()
        oldest, newer = _issue(conn, 2)
        conn.receive_bytes(_reply_bytes(
            0, {"type": "ProtocolError", "message": "undecodable request"},
            kind="__error__"))
        with pytest.raises(ProtocolError, match="undecodable"):
            oldest.result(0)
        assert conn.in_flight == 1
        assert not newer._future.done()

    def test_oversized_length_prefix_rejected(self):
        conn = _mux()
        _issue(conn, 1)
        with pytest.raises(ProtocolError, match="wire cap"):
            conn.receive_bytes(struct.pack("<Q", 1 << 60) + b"x")


# -- zero-copy decode ----------------------------------------------------------


def _buffer_address(buf) -> int:
    return np.frombuffer(buf, dtype=np.uint8).__array_interface__["data"][0]


@pytest.mark.skipif(__import__("sys").byteorder != "little",
                    reason="zero-copy views are little-endian only")
class TestZeroCopyDecode:
    """Decoding a share vector must not copy it (the hot-path fix).

    An immutable ``bytes`` frame backs the returned read-only array
    directly; the regression asserts the array's data pointer lies
    *inside* the frame buffer, so any reintroduced ``.astype``/copy
    fails loudly.
    """

    def test_vector_decode_is_a_view_into_the_frame(self):
        vec = np.arange(4096, dtype=np.int64)
        blob = encode(vec)
        out = decode(blob)
        base, addr = _buffer_address(blob), out.__array_interface__["data"][0]
        assert base <= addr < base + len(blob), "decode copied the vector"
        assert not out.flags.writeable
        np.testing.assert_array_equal(out, vec)

    def test_matrix_decode_is_a_view_into_the_frame(self):
        matrix = np.arange(64 * 32, dtype=np.int64).reshape(64, 32)
        blob = encode(matrix)
        out = decode(blob)
        base, addr = _buffer_address(blob), out.__array_interface__["data"][0]
        assert base <= addr < base + len(blob), "decode copied the matrix"
        np.testing.assert_array_equal(out, matrix)

    def test_framed_vector_decode_is_a_view(self):
        vec = np.arange(2048, dtype=np.int64)
        blob = encode_frame("receive_shares", 7, FULL_SPAN,
                            {"a": [vec], "k": {}})
        out = decode_frame(blob).payload["a"][0]
        base, addr = _buffer_address(blob), out.__array_interface__["data"][0]
        assert base <= addr < base + len(blob), "frame decode copied"

    def test_mutable_buffers_copy_defensively(self):
        # A bytearray is a reused receive window: a view into it would
        # be corrupted by the next read, so the decoder must copy.
        vec = np.arange(512, dtype=np.int64)
        window = bytearray(encode(vec))
        out = decode(window)
        window[-8:] = b"\xff" * 8  # clobber the window post-decode
        np.testing.assert_array_equal(out, vec)


# -- shared-memory frames ------------------------------------------------------


class TestShmFrames:
    def _arena(self, size=1 << 20):
        from repro.network.shm import ShmArena
        return ShmArena(size)

    def test_large_vector_rides_the_arena(self):
        arena = self._arena()
        vec = np.arange(5000, dtype=np.int64)  # 40 KB, above threshold
        blob = encode_frame("receive_shares", 1, FULL_SPAN,
                            {"a": [vec], "k": {}}, arena=arena)
        # The socket frame carries a constant-size reference, not 40 KB.
        assert len(blob) < 256
        frame = decode_frame(blob, arena=arena)
        np.testing.assert_array_equal(frame.payload["a"][0], vec)
        arena.close()

    def test_matrix_rides_the_arena(self):
        arena = self._arena()
        matrix = np.arange(300 * 7, dtype=np.int64).reshape(300, 7)
        blob = encode_frame("m", 2, FULL_SPAN, matrix, arena=arena)
        assert len(blob) < 256
        out = decode_frame(blob, arena=arena).payload
        assert out.shape == (300, 7)
        np.testing.assert_array_equal(out, matrix)
        arena.close()

    def test_small_payload_stays_inline(self):
        arena = self._arena()
        vec = np.arange(16, dtype=np.int64)  # below _SHM_MIN_BYTES
        blob = encode_frame("m", 3, FULL_SPAN, vec, arena=arena)
        # Inline frames need no arena to decode.
        np.testing.assert_array_equal(decode_frame(blob).payload, vec)
        arena.close()

    def test_shm_frame_without_arena_is_a_typed_error(self):
        # An shm reference must never cross a host boundary: decoding
        # one without an arena is a protocol violation, not a crash.
        arena = self._arena()
        vec = np.arange(5000, dtype=np.int64)
        blob = encode_frame("m", 4, FULL_SPAN, vec, arena=arena)
        with pytest.raises(ProtocolError, match="arena"):
            decode_frame(blob)
        arena.close()

    def test_full_arena_falls_back_inline(self):
        arena = self._arena(size=4096)
        vec = np.arange(5000, dtype=np.int64)  # 40 KB > 4 KB arena
        blob = encode_frame("m", 5, FULL_SPAN, vec, arena=arena)
        # Fallback emitted the plain inline tag: decodes with no arena.
        np.testing.assert_array_equal(decode_frame(blob).payload, vec)
        arena.close()

    def test_out_of_bounds_reference_rejected(self):
        arena = self._arena(size=4096)
        with pytest.raises(ProtocolError, match="arena"):
            arena.read_array(offset=4000, count=100)
        with pytest.raises(ProtocolError, match="arena"):
            arena.read_array(offset=-8, count=1)
        arena.close()

    def test_reset_reuses_the_arena(self):
        arena = self._arena(size=1 << 16)
        vec = np.arange(4096, dtype=np.int64)  # 32 KB, half the arena
        first = arena.write_array(vec)
        assert arena.write_array(vec) != first  # bump allocation
        arena.reset()
        assert arena.write_array(vec) == first  # per-frame scratch
        arena.close()
