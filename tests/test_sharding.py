"""The sharded χ-table execution layer (repro.core.sharding).

The contract under test: for every batchable Table-4 query kind, the
sharded path — worker processes over contiguous χ shards — returns
results *bit-identical* to the unsharded thread sweep, for every shard
count, owner subset, and transport accounting; and the fallbacks
(threads, per-row kernels for overridden subclasses) keep malicious /
instrumented servers behaving exactly as they do unsharded.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BatchQuery, Domain, PrismSystem, Relation
from repro.core.sharding import (
    ShardPlan,
    ShardRuntime,
    attach_sharding,
    processes_available,
    shard_bounds,
)
from repro.entities.adversary import SkipCellsServer
from repro.entities.server import PrismServer
from repro.exceptions import VerificationError

pytestmark = pytest.mark.skipif(
    not processes_available(),
    reason="fork-based worker pools unsupported on this platform",
)


def build_fleet(num_shards: int = 1, num_values: int = 41, **kwargs):
    """A 3-owner deployment over a domain wide enough to span shards."""
    values = list(range(num_values))
    relations = [
        Relation("o0", {"A": values[::2], "cost": [v + 1 for v in values[::2]]}),
        Relation("o1", {"A": values[::3], "cost": [v + 2 for v in values[::3]]}),
        Relation("o2", {"A": values[::5], "cost": [v + 3 for v in values[::5]]}),
    ]
    domain = Domain("A", values)
    return PrismSystem.build(relations, domain, "A",
                             agg_attributes=("cost",),
                             with_verification=True, seed=13,
                             num_shards=num_shards, **kwargs)


#: One query per batchable Table-4 kind (the equivalence matrix).
TABLE4_QUERIES = [
    BatchQuery("psi", "A", verify=True),
    BatchQuery("psu", "A", verify=True),
    BatchQuery("psi_count", "A", verify=True),
    BatchQuery("psu_count", "A"),
    BatchQuery("psi_sum", "A", agg_attributes=("cost",), verify=True),
    BatchQuery("psi_average", "A", agg_attributes=("cost",)),
    BatchQuery("psu_sum", "A", agg_attributes=("cost",)),
    BatchQuery("psu_average", "A", agg_attributes=("cost",)),
]


def assert_identical(query, reference, sharded):
    if query.kind in ("psi", "psu"):
        assert sharded.values == reference.values
        assert np.array_equal(sharded.membership, reference.membership)
        assert sharded.verified == reference.verified
    elif query.kind.endswith("count"):
        assert sharded.count == reference.count
    else:
        for agg in query.agg_attributes:
            assert sharded[agg].per_value == reference[agg].per_value
            assert sharded[agg].verified == reference[agg].verified


# -- bit-identity across shard counts -----------------------------------------


@pytest.mark.parametrize("num_shards", [1, 2, 7])
def test_sharded_batch_bit_identical_for_every_kind(num_shards):
    """Acceptance: every Table-4 kind, num_shards in {1, 2, 7}."""
    reference = build_fleet().run_batch(TABLE4_QUERIES)
    with build_fleet(num_shards=num_shards) as system:
        sharded = system.run_batch(TABLE4_QUERIES)
        for query, ref, out in zip(TABLE4_QUERIES, reference, sharded):
            assert_identical(query, ref, out)
        if num_shards > 1:
            # The process path really ran (no silent thread fallback).
            assert system._shard_runtime.dispatches > 0


def test_per_call_num_shards_override():
    """run_batch(num_shards=...) shards an unsharded deployment per call."""
    reference = build_fleet().run_batch(TABLE4_QUERIES)
    with build_fleet() as system:
        sharded = system.run_batch(TABLE4_QUERIES, num_shards=3)
        for query, ref, out in zip(TABLE4_QUERIES, reference, sharded):
            assert_identical(query, ref, out)
        assert system._shard_runtime.dispatches > 0
        # And num_shards=1 on a sharded system forces the thread sweep.
    with build_fleet(num_shards=4) as system:
        before = system._shard_runtime.dispatches
        system.run_batch(TABLE4_QUERIES, num_shards=1)
        assert system._shard_runtime.dispatches == before


def test_shards_exceeding_chi_length():
    """More shards than χ cells degrades to one span per cell."""
    relations = [Relation("a", {"A": [0, 1]}), Relation("b", {"A": [1, 2]})]
    domain = Domain("A", [0, 1, 2])
    with PrismSystem.build(relations, domain, "A", seed=3,
                           num_shards=16) as system:
        assert system.psi("A").values == [1]


def test_sequential_queries_use_deployment_shard_plan():
    """system.psi() etc. inherit the deployment default plan."""
    reference = build_fleet()
    with build_fleet(num_shards=2) as system:
        assert system.psi("A", verify=True).values == \
            reference.psi("A", verify=True).values
        assert system._shard_runtime.dispatches > 0


# -- owner subsets through both paths (satellite) -----------------------------


SUBSET_QUERIES = [
    BatchQuery("psi", "A", owner_ids=(0, 1)),
    BatchQuery("psu", "A", owner_ids=(0, 2)),
    BatchQuery("psi_count", "A", owner_ids=(1, 2)),
    BatchQuery("psi_sum", "A", agg_attributes=("cost",), owner_ids=(0, 1)),
    BatchQuery("psu_count", "A", owner_ids=(0, 1)),
]


def test_owner_subsets_sharded_and_unsharded_identical():
    """Subset-owner queries: bit-identical results AND identical traffic."""
    base = build_fleet()
    unsharded = base.run_batch(SUBSET_QUERIES)
    with build_fleet(num_shards=5) as system:
        sharded = system.run_batch(SUBSET_QUERIES)
        for query, ref, out in zip(SUBSET_QUERIES, unsharded, sharded):
            assert_identical(query, ref, out)
        assert system._shard_runtime.dispatches > 0
        # Sharding is server-internal: the wire protocol must not change.
        assert (system.transport.stats.messages_by_kind
                == base.transport.stats.messages_by_kind)


def test_subset_and_full_owner_sets_agree_on_membership():
    """The full set as an explicit subset equals owner_ids=None, sharded."""
    with build_fleet(num_shards=3) as system:
        full = system.run_batch([BatchQuery("psi", "A")])[0]
        explicit = system.run_batch(
            [BatchQuery("psi", "A", owner_ids=(0, 1, 2))])[0]
        assert np.array_equal(full.membership, explicit.membership)


# -- fallbacks ----------------------------------------------------------------


def test_malicious_server_still_caught_under_sharding():
    """Overridden kernels fall back per row; tampering stays effective."""
    values = list(range(23))
    relations = [Relation("a", {"A": values[:12]}),
                 Relation("b", {"A": values[6:]})]
    domain = Domain("A", values)
    with PrismSystem.build(relations, domain, "A", with_verification=True,
                           seed=9, num_shards=4,
                           server_factories={0: SkipCellsServer}) as system:
        with pytest.raises(VerificationError):
            system.psi("A", verify=True)


def test_instrumented_fetch_keeps_thread_path():
    """A fetch-overriding subclass is never dispatched out of process."""
    from repro.analysis.access import RecordingServer
    values = list(range(17))
    relations = [Relation("a", {"A": values[:9]}),
                 Relation("b", {"A": values[4:]})]
    domain = Domain("A", values)
    with PrismSystem.build(
            relations, domain, "A", seed=9, num_shards=4,
            server_factories={i: RecordingServer for i in range(3)}) as system:
        result = system.psi("A")
        assert result.values
        # The recording servers saw their fetches (nothing ran out of
        # process, where the parent-side trace would stay empty) ...
        assert all(server.trace for server in system.servers[:2])
        # ... so the worker pool never dispatched for them.
        assert system._shard_runtime.dispatches == 0


def test_broken_runtime_falls_back_to_threads():
    reference = build_fleet().run_batch([BatchQuery("psi", "A")])
    with build_fleet(num_shards=3) as system:
        system._shard_runtime._broken = True
        out = system.run_batch([BatchQuery("psi", "A")])
        assert_identical(BatchQuery("psi", "A"), reference[0], out[0])
        assert system._shard_runtime.dispatches == 0


def test_store_mutation_refreshes_worker_snapshot():
    """Workers must re-fork after a put(); stale shares would be wrong."""
    with build_fleet(num_shards=2) as system:
        first = system.psi("A")
        assert system._shard_runtime.dispatches > 0
        server = system.servers[0]
        stored = server.store.get(0, "A")
        tampered = stored.values.copy()
        tampered[0] = (tampered[0] + 1) % system.initiator.delta
        server.store.put(0, "A", tampered, stored.kind)
        second = system.psi("A")
        # The tampered cell flows through the fused sharded sweep: the
        # result must differ from the honest run somewhere.
        assert not np.array_equal(first.membership, second.membership)


# -- decomposition / plumbing -------------------------------------------------


class TestShardBounds:
    def test_cover_range_contiguously(self):
        for n in (0, 1, 5, 64, 101):
            for shards in (1, 2, 7, 64, 200):
                bounds = shard_bounds(n, shards)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n or (n == 0 and bounds == [(0, 0)])
                for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                    assert hi == lo

    def test_never_more_shards_than_cells(self):
        assert len(shard_bounds(3, 10)) <= 3

    def test_plan_bounds(self):
        plan = ShardPlan(4)
        assert plan.bounds(8) == [(0, 2), (2, 4), (4, 6), (6, 8)]


def test_attach_sharding_wires_servers_and_store():
    with build_fleet() as system:
        plan = attach_sharding(system.servers, 3)
        try:
            assert all(s.shard_plan is plan for s in system.servers)
            assert all(s.store.num_shards == 3 for s in system.servers)
            store = system.servers[0].store
            whole = store.get(0, "A").values
            spans = [store.shard_slice(0, "A", lo, hi)
                     for lo, hi in plan.bounds(whole.shape[0])]
            assert len(spans) == 3
            assert np.array_equal(np.concatenate(spans), whole)
        finally:
            plan.runtime.close()


def test_concurrent_dispatches_do_not_cross_wires():
    """The deployment-shared scratch is locked: parallel callers on one
    sharded system must each get their own query's rows back."""
    import threading
    expected = build_fleet().run_batch(TABLE4_QUERIES)
    with build_fleet(num_shards=3) as system:
        results = [None] * 4
        errors = []
        barrier = threading.Barrier(len(results))

        def caller(slot):
            try:
                barrier.wait()
                results[slot] = system.run_batch(TABLE4_QUERIES)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=caller, args=(i,))
                   for i in range(len(results))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for outcome in results:
            for query, ref, out in zip(TABLE4_QUERIES, expected, outcome):
                assert_identical(query, ref, out)


def test_runtime_close_is_idempotent_and_reusable():
    with build_fleet(num_shards=2) as system:
        runtime = system._shard_runtime
        assert isinstance(runtime, ShardRuntime)
        first = system.psi("A")
        runtime.close()
        runtime.close()
        # A later query lazily re-forks the pool.
        again = system.psi("A")
        assert np.array_equal(first.membership, again.membership)
        assert runtime.dispatches >= 2


# -- satellite: persistent per-server thread pool -----------------------------


def test_server_reuses_one_thread_pool_across_calls():
    with build_fleet() as system:
        server: PrismServer = system.servers[0]
        assert server._pool is None
        server.psi_round("A", num_threads=2)
        pool = server._pool
        assert pool is not None
        server.psi_round("A", num_threads=2)
        assert server._pool is pool  # not rebuilt per call
        server.psi_round("A", num_threads=4)
        assert server._pool is not pool  # grown once, then persistent
        grown = server._pool
        server.psi_round("A", num_threads=3)
        assert server._pool is grown
        server.close()
        assert server._pool is None


# -- satellite: the store fetch memo ------------------------------------------


class TestFetchMemo:
    def test_full_set_and_explicit_full_tuple_share_one_entry(self):
        with build_fleet() as system:
            store = system.servers[0].store
            first = system.servers[0].fetch_additive("A")
            info = store.fetch_cache_info()
            second = system.servers[0].fetch_additive("A", owner_ids=[0, 1, 2])
            after = store.fetch_cache_info()
            assert after["entries"] == info["entries"]  # same resolved key
            assert after["hits"] > info["hits"]
            for a, b in zip(first, second):
                assert a is b  # the stored vectors, not copies

    def test_put_invalidates(self):
        with build_fleet() as system:
            store = system.servers[0].store
            system.servers[0].fetch_additive("A")
            version = store.version
            stored = store.get(0, "A")
            store.put(0, "A", stored.values.copy(), stored.kind)
            assert store.version == version + 1
            assert store.fetch_cache_info()["entries"] == 0

    def test_batch_fetches_each_column_once_per_owner_set(self):
        with build_fleet() as system:
            store = system.servers[0].store
            system.run_batch([
                BatchQuery("psi", "A", verify=True),
                BatchQuery("psi", "A"),
                BatchQuery("psi_count", "A"),
            ])
            info = store.fetch_cache_info()
            assert info["misses"] == info["entries"]


from tests.conftest import make_system  # noqa: E402  (auto-shard tests)


class TestAutoShards:
    """num_shards="auto": shard count and mode from rows and cores."""

    def test_tiny_sweeps_stay_unsharded(self):
        from repro.core.sharding import auto_shard_plan
        assert auto_shard_plan(100, cpu_count=8) == (1, False)
        assert auto_shard_plan(10**6, cpu_count=1) == (1, False)

    def test_scales_with_rows_then_caps_at_cores(self):
        from repro import kernels
        from repro.core.sharding import (
            AUTO_ROWS_PER_SHARD,
            auto_shard_plan,
        )
        kernels.configure("off")  # plain thresholds (REPRO_KERNELS=c scales them)
        try:
            shards, _ = auto_shard_plan(2 * AUTO_ROWS_PER_SHARD, cpu_count=8)
            assert shards == 2
            shards, _ = auto_shard_plan(100 * AUTO_ROWS_PER_SHARD, cpu_count=4)
            assert shards == 4
        finally:
            kernels.configure(None)

    def test_worker_mode_needs_large_sweeps(self):
        from repro.core.sharding import (
            AUTO_WORKER_MIN_ROWS,
            auto_shard_plan,
            processes_available,
        )
        _, workers = auto_shard_plan(AUTO_WORKER_MIN_ROWS // 2, cpu_count=8)
        assert workers is False
        _, workers = auto_shard_plan(4 * AUTO_WORKER_MIN_ROWS, cpu_count=8)
        assert workers is processes_available()

    def test_compiled_tier_pushes_the_crossover_out(self):
        from repro import kernels
        from repro.core.sharding import (
            AUTO_NATIVE_ROWS_FACTOR,
            AUTO_ROWS_PER_SHARD,
            auto_shard_plan,
        )
        if not kernels.available():
            pytest.skip("compiled kernel tier unavailable")
        rows = 2 * AUTO_ROWS_PER_SHARD  # shards under numpy costs ...
        try:
            kernels.configure("off")
            assert auto_shard_plan(rows, cpu_count=8)[0] == 2
            assert kernels.configure("c") == "c"
            # ... stays unsharded with the cheaper compiled rows.
            assert auto_shard_plan(rows, cpu_count=8) == (1, False)
            scaled = 2 * AUTO_NATIVE_ROWS_FACTOR * AUTO_ROWS_PER_SHARD
            assert auto_shard_plan(scaled, cpu_count=8)[0] == 2
        finally:
            kernels.configure(None)

    def test_system_accepts_auto(self):
        system = make_system([{1, 2, 3}, {2, 3, 4}], num_shards="auto")
        try:
            # A tiny domain resolves to 1 shard; queries run unchanged.
            assert system.num_shards >= 1
            assert sorted(system.psi("A").values) == [2, 3]
            # The per-call "auto" resolution must agree with the
            # construction-time one (same χ length, same heuristic).
            assert system.shard_plan_for("auto").num_shards == \
                system.num_shards
        finally:
            system.close()

    def test_client_accepts_auto(self):
        system = make_system([{1, 2}, {2, 3}])
        try:
            with system.client(num_shards="auto") as client:
                result = client.execute(
                    "SELECT A FROM o0 INTERSECT SELECT A FROM o1")
                assert sorted(result.values) == [2]
        finally:
            system.close()
