"""Self-healing matrix: kill a pool member, results stay bit-identical.

The acceptance bar of the self-healing layer: with a chaos fault
SIGKILLing one pool member *mid-sweep* (a batchable span frame in
flight) and another one *mid-interactive-round*, every batchable and
interactive kind still returns exactly the seed result — no
:class:`~repro.exceptions.QueryError` — for every ``num_shards ∈
{1, 2, 7}`` × pool size ``∈ {2, 3}``; the pool reports ``degraded``
instead of lying ``ok``.  On top of that, a
:class:`~repro.network.supervisor.HostSupervisor` respawns killed
members, replays the journal so the replacement rejoins *warm*, serves
traffic from the respawned seat, returns health to ``ok``, and leaves
no orphan processes after ``system.close()``; the serving gateway
surfaces all of it through ``healthz``.
"""

from __future__ import annotations

import os
import signal
import time

import pytest
from chaos import ChaosInjector, Fault
from test_multihost_matrix import (
    build,
    needs_fork,
    run_batchable,
    run_interactive,
)

from repro import GatewayClient, ProtocolError
from repro.exceptions import GatewayDisconnected
from repro.network.host import launch_forked_pools, pools_spec
from repro.network.supervisor import HostSupervisor
from repro.serving.gateway import Gateway

SHARD_COUNTS = [1, 2, 7]
POOL_SIZES = [2, 3]


@pytest.fixture(scope="module")
def expected():
    """The seed result: single shard, in-process."""
    with build() as system:
        return {"batch": run_batchable(system),
                "interactive": run_interactive(system)}


@pytest.fixture
def eager_spans(monkeypatch):
    """Span fan-out at toy sizes (the floor is tuned for real sweeps)."""
    from repro.entities import remote
    monkeypatch.setattr(remote, "SPAN_DISPATCH_MIN_CELLS", 1)


def _reap(processes):
    for process in processes:
        process.terminate()
    for process in processes:
        process.join(timeout=10)


# -- the kill matrix ----------------------------------------------------------


@needs_fork
class TestSelfHealMatrix:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("pool_size", POOL_SIZES)
    def test_single_member_kill_is_bit_identical(
            self, expected, eager_spans, pool_size, num_shards):
        """SIGKILL mid-sweep and mid-round → same bits, degraded health."""
        pools, processes = launch_forked_pools([pool_size] * 3)
        try:
            with build(pools_spec(pools), num_shards=num_shards,
                       rpc_timeout=60.0) as system:
                injector = ChaosInjector(system, pools, processes)
                # Kill the last member of role 0 the moment a PSI sweep
                # frame is about to reach it (mid-sweep crash), and the
                # last member of role 1 when an extrema round first
                # addresses it (mid-interactive-round crash).
                injector.arm(
                    Fault(role=0, member=pool_size - 1,
                          kind="psi_round_batch", action="sigkill"),
                    Fault(role=1, member=pool_size - 1,
                          kind="extrema_collect", action="sigkill"),
                )
                assert run_batchable(system) == expected["batch"]
                assert run_interactive(system) == expected["interactive"]
                assert injector.fired == 2
                health = system.pool_health()
                assert health["status"] == "degraded"
                for role in (0, 1):
                    pool = health["pools"][role]
                    assert pool["status"] == "degraded"
                    assert pool["ejections"] >= 1
                # At least one kill landed with a frame in flight: the
                # retransmit path, not just the lazy eject, ran.
                assert sum(pool["failovers"]
                           for pool in health["pools"]) >= 1
        finally:
            _reap(processes)

    def test_slow_member_times_out_then_rejoins(self, expected,
                                                eager_spans):
        """SIGSTOP + timed SIGCONT: timeout-eject, then probe rejoins."""
        pools, processes = launch_forked_pools([2, 1, 1])
        injector = None
        try:
            with build(pools_spec(pools), rpc_timeout=2.0) as system:
                injector = ChaosInjector(system, pools, processes)
                # The stall must outlast rpc_timeout: a member that
                # resumes sooner just replies late-but-in-time and is
                # never ejected.
                injector.arm(Fault(role=0, member=1, kind="psi_round*",
                                   action="slow", resume_after=4.0))
                channel = system._channels[0]
                # Round-robin eventually addresses the armed seat; the
                # stalled reply times out (rpc_timeout), ejects it, and
                # the frame retransmits to the survivor mid-query.
                deadline = time.monotonic() + 20
                while injector.fired == 0 and time.monotonic() < deadline:
                    assert system.psi("k", querier=0).membership.tolist() \
                        == expected["batch"]["psi"]
                assert injector.fired == 1
                assert channel.health()["ejections"] >= 1
                # The member resumes after ~4s; half-open probes (run
                # on query traffic) must return it to rotation.
                deadline = time.monotonic() + 20
                while (channel.health()["status"] != "ok"
                       and time.monotonic() < deadline):
                    assert system.psi("k", querier=0).membership.tolist() \
                        == expected["batch"]["psi"]
                    time.sleep(0.1)
                assert channel.health()["status"] == "ok"
                assert channel.health()["rejoins"] >= 1
        finally:
            if injector is not None:
                injector.resume_all()
            _reap(processes)

    def test_injected_disconnect_fails_over(self, expected, eager_spans):
        """A pure transport fault (no process touched) fails over too."""
        pools, processes = launch_forked_pools([2, 1, 1])
        try:
            with build(pools_spec(pools), rpc_timeout=60.0) as system:
                injector = ChaosInjector(system, pools, processes)
                injector.arm(Fault(role=0, member=0, kind="psi_round*",
                                   action="disconnect"))
                assert system.psi("k", querier=0).membership.tolist() == \
                    expected["batch"]["psi"]
                assert injector.fired == 1
                health = system._channels[0].health()
                assert health["failovers"] >= 1
                # The host process is alive, so the next probe rejoins
                # the seat over a fresh connection.
                deadline = time.monotonic() + 20
                while (system._channels[0].health()["status"] != "ok"
                       and time.monotonic() < deadline):
                    system.psi("k", querier=0)
                    time.sleep(0.1)
                assert system._channels[0].health()["status"] == "ok"
        finally:
            _reap(processes)


# -- supervised respawn -------------------------------------------------------


@needs_fork
class TestSupervisedRecovery:
    def test_respawn_replays_journal_and_serves(self, expected,
                                                eager_spans):
        """SIGKILL mid-benchmark → respawn, warm rejoin, same bits."""
        pools, processes = launch_forked_pools([2, 2, 2])
        supervisor = None
        all_processes = list(processes)
        try:
            with build(pools_spec(pools), rpc_timeout=60.0) as system:
                supervisor = HostSupervisor(
                    system, pools, processes,
                    poll_interval=0.05).start()
                assert run_batchable(system) == expected["batch"]
                victim = supervisor.process_for(0, 1)
                os.kill(victim.pid, signal.SIGKILL)
                victim.join(10)
                # Queries keep succeeding bit-identically while the
                # supervisor respawns the seat in the background.
                assert run_batchable(system) == expected["batch"]
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    stats = supervisor.stats
                    if (stats["respawns"] >= 1
                            and system.pool_health()["status"] == "ok"):
                        break
                    time.sleep(0.1)
                stats = supervisor.stats
                assert stats["respawns"] >= 1
                assert stats["last_recovery_seconds"] is not None
                assert system.pool_health()["status"] == "ok"
                channel = system._channels[0]
                assert channel.health()["rejoins"] >= 1
                # The respawned seat serves traffic: its request
                # counter grows across a further benchmark run.
                before = channel.stats["members"][1]["requests"]
                assert run_batchable(system) == expected["batch"]
                assert channel.stats["members"][1]["requests"] > before
                all_processes = supervisor.processes
            # system.close() (context exit) closed the supervisor too:
            # nothing it ever owned — original or respawned — survives.
            deadline = time.monotonic() + 10
            while (any(p.is_alive() for p in all_processes)
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert not any(p.is_alive() for p in all_processes)
        finally:
            if supervisor is not None:
                supervisor.close()
            _reap(all_processes)

    def test_interactive_program_resumes_after_failover(self, expected):
        """ConnectionLost mid-round → the program re-runs only that round."""
        from repro.core.interactive import ExtremaProgram
        from repro.network.dispatch import ConnectionLost

        with build() as system:
            baseline = ExtremaProgram(system, "k", "amt", kind="max").run()
        with build() as system:
            original = system.servers[0].extrema_collect
            state = {"calls": 0}

            def flaky(shares):
                state["calls"] += 1
                if state["calls"] == 2:
                    raise ConnectionLost("chaos: mid-round loss")
                return original(shares)

            system.servers[0].extrema_collect = flaky
            program = ExtremaProgram(system, "k", "amt", kind="max")
            result = program.run()
            assert result.per_value == baseline.per_value
            assert result.holders == baseline.holders
            assert program.rounds_resumed == 1

    def test_interactive_resume_is_bounded(self):
        """A pool that never heals surfaces the failure, not a spin."""
        from repro.core.interactive import ExtremaProgram
        from repro.network.dispatch import ConnectionLost

        with build() as system:
            def always_dead(shares):
                raise ConnectionLost("chaos: permanent loss")

            system.servers[0].extrema_collect = always_dead
            program = ExtremaProgram(system, "k", "amt", kind="max")
            with pytest.raises(ConnectionLost):
                program.run()
            assert program.rounds_resumed == program.max_resumes


# -- gateway surface ----------------------------------------------------------


TENANTS = {"tok-heal": "heal"}


@needs_fork
class TestGatewaySelfHealing:
    def _register(self, gw):
        from repro import Domain
        from test_multihost_matrix import relations
        return gw.register_dataset(
            "heal", "kv", relations(), Domain.integer_range("k", 16),
            "k", agg_attributes=("amt",), with_verification=True, seed=3)

    def test_healthz_degraded_then_ok_after_rejoin(self):
        """healthz: ok → degraded while ejected → ok after respawn."""
        gw = Gateway(TENANTS, deployment="forked-tcp:2").start()
        try:
            dataset = self._register(gw)
            supervisor = dataset.system.supervisor
            assert supervisor is not None
            with GatewayClient("127.0.0.1", gw.port, "tok-heal",
                               dataset="kv",
                               request_timeout=60.0) as client:
                assert client.healthz()["status"] == "ok"
                supervisor.pause()
                victim = supervisor.process_for(0, 0)
                os.kill(victim.pid, signal.SIGKILL)
                victim.join(10)
                # Queries succeed via failover; the traffic is what
                # surfaces the ejection in the health report.
                for _ in range(3):
                    client.execute(
                        "SELECT k FROM a INTERSECT SELECT k FROM b "
                        "INTERSECT SELECT k FROM c")
                report = client.healthz()
                assert report["status"] == "degraded"
                assert report["pools"]["heal/kv"]["status"] == "degraded"
                assert dataset.stats["pool_health"] == "degraded"
                supervisor.resume()
                deadline = time.monotonic() + 30
                while (client.healthz()["status"] != "ok"
                       and time.monotonic() < deadline):
                    time.sleep(0.2)
                assert client.healthz()["status"] == "ok"
                assert supervisor.stats["respawns"] >= 1
        finally:
            gw.shutdown()

    def test_gateway_death_raises_typed_disconnect(self):
        """The gateway dying mid-session raises GatewayDisconnected."""
        gw = Gateway(TENANTS).start()
        port = gw.port
        self._register(gw)
        client = GatewayClient("127.0.0.1", port, "tok-heal", dataset="kv",
                               request_timeout=10.0)
        try:
            assert client.ping()
            gw.shutdown()
            with pytest.raises(GatewayDisconnected) as excinfo:
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    client.healthz()
                    time.sleep(0.05)
            assert excinfo.value.address == f"127.0.0.1:{port}"
            assert isinstance(excinfo.value, ProtocolError)
        finally:
            client.close()
